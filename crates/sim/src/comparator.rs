//! Attribute comparison configuration: which similarity function to apply to
//! which attribute, and how to handle missing values.
//!
//! A [`ComparisonScheme`] is an ordered list of [`AttributeComparator`]s; it
//! maps a pair of records (seen here as slices of optional attribute values)
//! to a similarity feature vector `w ∈ [0,1]^t` — the unit of data the whole
//! MoRER pipeline operates on.

use crate::numeric::{date_sim, normalized_diff_sim, parse_numeric, tolerance_sim, year_sim};
use crate::profile::{AttrRef, ProfileSpec, RecordRef};
use crate::string_sim::{
    cosine_counts, cosine_tokens, dice_counts, dice_tokens, exact, jaccard_counts,
    jaccard_qgrams, jaccard_tokens, jaro_winkler, jaro_winkler_chars, lcs_substring_chars,
    lcs_substring_sim, levenshtein_sim, levenshtein_sim_with, monge_elkan, monge_elkan_tokens,
    overlap_counts, overlap_tokens, smith_waterman, smith_waterman_chars,
};
use crate::tokenize::sorted_intersection_len;

/// The similarity functions available to attribute comparators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimilarityFunction {
    /// Word-token Jaccard coefficient.
    JaccardTokens,
    /// Character q-gram Jaccard with the given `q`.
    JaccardQgrams(usize),
    /// Word-token Sørensen–Dice coefficient.
    DiceTokens,
    /// Word-token overlap coefficient.
    OverlapTokens,
    /// Word-token cosine similarity.
    CosineTokens,
    /// Normalized Levenshtein similarity.
    Levenshtein,
    /// Jaro-Winkler similarity.
    JaroWinkler,
    /// Longest-common-substring similarity.
    LcsSubstring,
    /// Monge-Elkan hybrid similarity (Jaro-Winkler inner).
    MongeElkan,
    /// Exact match on normalized strings.
    Exact,
    /// Numeric similarity with difference normalized by magnitude; values are
    /// parsed out of the strings (currency symbols etc. stripped).
    NumericDiff,
    /// Step-wise year similarity (exact 1.0, ±1 → 0.5, ±2 → 0.25).
    Year,
    /// Smith-Waterman local-alignment similarity.
    SmithWaterman,
    /// Date similarity with a tolerance window in days.
    Date {
        /// Absolute day difference at which similarity reaches 0.
        tolerance_days: u32,
    },
}

impl SimilarityFunction {
    /// Apply the function to two attribute value strings.
    pub fn apply(self, a: &str, b: &str) -> f64 {
        match self {
            Self::JaccardTokens => jaccard_tokens(a, b),
            Self::JaccardQgrams(q) => jaccard_qgrams(a, b, q),
            Self::DiceTokens => dice_tokens(a, b),
            Self::OverlapTokens => overlap_tokens(a, b),
            Self::CosineTokens => cosine_tokens(a, b),
            Self::Levenshtein => levenshtein_sim(a, b),
            Self::JaroWinkler => jaro_winkler(a, b),
            Self::LcsSubstring => lcs_substring_sim(a, b),
            Self::MongeElkan => monge_elkan(a, b),
            Self::Exact => exact(a, b),
            Self::NumericDiff => match (parse_numeric(a), parse_numeric(b)) {
                (Some(x), Some(y)) => normalized_diff_sim(x, y),
                _ => 0.0,
            },
            Self::Year => match (parse_numeric(a), parse_numeric(b)) {
                (Some(x), Some(y)) => year_sim(x as i32, y as i32),
                _ => 0.0,
            },
            Self::SmithWaterman => smith_waterman(a, b),
            Self::Date { tolerance_days } => date_sim(a, b, f64::from(tolerance_days)),
        }
    }

    /// Apply the function to two cached attribute profiles — the fast path.
    ///
    /// Produces bit-identical results to [`Self::apply`] on the profiled
    /// strings: both paths share the same similarity cores, this one merely
    /// skips the per-pair normalization/tokenization/parsing.
    ///
    /// # Panics
    /// Panics when the profiles were built under a [`ProfileSpec`] that does
    /// not cover this function (e.g. a missing q-gram size).
    pub fn apply_profiled(self, a: AttrRef<'_>, b: AttrRef<'_>) -> f64 {
        match self {
            Self::JaccardTokens => {
                let (sa, sb) = (a.token_ids(), b.token_ids());
                jaccard_counts(sorted_intersection_len(sa, sb), sa.len(), sb.len())
            }
            Self::JaccardQgrams(q) => {
                let (sa, sb) = (a.qgram_set(q), b.qgram_set(q));
                jaccard_counts(sorted_intersection_len(sa, sb), sa.len(), sb.len())
            }
            Self::DiceTokens => {
                let (sa, sb) = (a.token_ids(), b.token_ids());
                dice_counts(sorted_intersection_len(sa, sb), sa.len(), sb.len())
            }
            Self::OverlapTokens => {
                let (sa, sb) = (a.token_ids(), b.token_ids());
                overlap_counts(sorted_intersection_len(sa, sb), sa.len(), sb.len())
            }
            Self::CosineTokens => {
                let (sa, sb) = (a.token_ids(), b.token_ids());
                cosine_counts(sorted_intersection_len(sa, sb), sa.len(), sb.len())
            }
            Self::Levenshtein => levenshtein_sim_with(
                a.norm(),
                b.norm(),
                a.char_count().max(b.char_count()),
                a.small_ascii() && b.small_ascii(),
            ),
            Self::JaroWinkler => jaro_winkler_chars(a.chars(), b.chars()),
            Self::LcsSubstring => lcs_substring_chars(a.chars(), b.chars()),
            Self::MongeElkan => monge_elkan_tokens(a.token_chars(), b.token_chars()),
            Self::Exact => {
                if a.norm() == b.norm() {
                    1.0
                } else {
                    0.0
                }
            }
            Self::NumericDiff => match (a.numeric(), b.numeric()) {
                (Some(x), Some(y)) => normalized_diff_sim(x, y),
                _ => 0.0,
            },
            Self::Year => match (a.numeric(), b.numeric()) {
                (Some(x), Some(y)) => year_sim(x as i32, y as i32),
                _ => 0.0,
            },
            Self::SmithWaterman => smith_waterman_chars(a.chars(), b.chars()),
            Self::Date { tolerance_days } => match (a.date_days(), b.date_days()) {
                (Some(x), Some(y)) => {
                    tolerance_sim(x as f64, y as f64, f64::from(tolerance_days))
                }
                _ => 0.0,
            },
        }
    }

    /// Short identifier used in feature names (`jaccard(title)` etc.).
    pub fn name(self) -> &'static str {
        match self {
            Self::JaccardTokens => "jaccard",
            Self::JaccardQgrams(_) => "jaccard_qgram",
            Self::DiceTokens => "dice",
            Self::OverlapTokens => "overlap",
            Self::CosineTokens => "cosine",
            Self::Levenshtein => "levenshtein",
            Self::JaroWinkler => "jaro_winkler",
            Self::LcsSubstring => "lcs",
            Self::MongeElkan => "monge_elkan",
            Self::Exact => "exact",
            Self::NumericDiff => "numeric",
            Self::Year => "year",
            Self::SmithWaterman => "smith_waterman",
            Self::Date { .. } => "date",
        }
    }
}

/// Policy for feature values when one or both attribute values are missing.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(Default)]
pub enum MissingValuePolicy {
    /// Emit 0.0 (treat as maximally dissimilar) — the conservative default.
    #[default]
    Zero,
    /// Emit the given constant (e.g. 0.5 for "unknown").
    Constant(f64),
}


/// One feature definition: an attribute index plus the similarity function to
/// apply to it.
#[derive(Debug, Clone)]
pub struct AttributeComparator {
    /// Index of the attribute within the record's value slice.
    pub attribute: usize,
    /// Human-readable attribute name (for feature labels).
    pub attribute_name: String,
    /// Similarity function applied to the attribute values.
    pub function: SimilarityFunction,
    /// How a missing value on either side is scored.
    pub missing: MissingValuePolicy,
}

impl AttributeComparator {
    /// Create a comparator with the default missing-value policy.
    pub fn new(attribute: usize, attribute_name: impl Into<String>, function: SimilarityFunction) -> Self {
        Self {
            attribute,
            attribute_name: attribute_name.into(),
            function,
            missing: MissingValuePolicy::default(),
        }
    }

    /// Feature label in the paper's `function(attribute)` notation.
    pub fn feature_name(&self) -> String {
        format!("{}({})", self.function.name(), self.attribute_name)
    }

    /// Compare two optional attribute values.
    pub fn compare(&self, a: Option<&str>, b: Option<&str>) -> f64 {
        match (a, b) {
            (Some(x), Some(y)) => self.function.apply(x, y),
            _ => self.missing_value(),
        }
    }

    /// Compare two records through their cached profiles — the fast path.
    pub fn compare_profiled(&self, a: RecordRef<'_>, b: RecordRef<'_>) -> f64 {
        match (a.attr(self.attribute), b.attr(self.attribute)) {
            (Some(pa), Some(pb)) => self.function.apply_profiled(pa, pb),
            _ => self.missing_value(),
        }
    }

    fn missing_value(&self) -> f64 {
        match self.missing {
            MissingValuePolicy::Zero => 0.0,
            MissingValuePolicy::Constant(c) => c.clamp(0.0, 1.0),
        }
    }
}

/// An ordered set of attribute comparators defining the similarity feature
/// space of an ER problem family.
#[derive(Debug, Clone, Default)]
pub struct ComparisonScheme {
    comparators: Vec<AttributeComparator>,
}

impl ComparisonScheme {
    /// Create an empty scheme.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a comparator; builder-style.
    pub fn with(mut self, comparator: AttributeComparator) -> Self {
        self.comparators.push(comparator);
        self
    }

    /// Append a comparator in place.
    pub fn push(&mut self, comparator: AttributeComparator) {
        self.comparators.push(comparator);
    }

    /// Number of features `t` this scheme produces.
    pub fn num_features(&self) -> usize {
        self.comparators.len()
    }

    /// The configured comparators, in feature order.
    pub fn comparators(&self) -> &[AttributeComparator] {
        &self.comparators
    }

    /// Feature labels, in order.
    pub fn feature_names(&self) -> Vec<String> {
        self.comparators.iter().map(AttributeComparator::feature_name).collect()
    }

    /// Compute the similarity feature vector for a pair of records given as
    /// attribute value slices (indexed by each comparator's `attribute`).
    ///
    /// # Panics
    /// Panics if a comparator's attribute index is out of bounds for either
    /// record — schemes must be constructed against the dataset schema.
    pub fn compare(&self, a: &[Option<String>], b: &[Option<String>]) -> Vec<f64> {
        self.comparators
            .iter()
            .map(|c| c.compare(a[c.attribute].as_deref(), b[c.attribute].as_deref()))
            .collect()
    }

    /// The per-attribute cache requirements of this scheme (what a
    /// [`crate::profile::Profiler`] must fill for [`Self::compare_profiled`]).
    pub fn profile_spec(&self) -> ProfileSpec {
        ProfileSpec::from_scheme(self)
    }

    /// Compute the similarity feature vector for a pair of *profiled*
    /// records — the O(records)-preprocessed fast path. Bit-identical to
    /// [`Self::compare`] on the profiled values.
    pub fn compare_profiled(&self, a: RecordRef<'_>, b: RecordRef<'_>) -> Vec<f64> {
        self.comparators.iter().map(|c| c.compare_profiled(a, b)).collect()
    }

    /// [`Self::compare_profiled`] writing into a caller-provided row buffer
    /// (used by the parallel featurizer to avoid per-pair allocation).
    ///
    /// # Panics
    /// Panics if `out.len() != self.num_features()`.
    pub fn compare_profiled_into(&self, a: RecordRef<'_>, b: RecordRef<'_>, out: &mut [f64]) {
        assert_eq!(out.len(), self.num_features(), "feature row length mismatch");
        for (cell, c) in out.iter_mut().zip(&self.comparators) {
            *cell = c.compare_profiled(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(values: &[Option<&str>]) -> Vec<Option<String>> {
        values.iter().map(|v| v.map(str::to_owned)).collect()
    }

    #[test]
    fn scheme_produces_feature_vector_in_order() {
        let scheme = ComparisonScheme::new()
            .with(AttributeComparator::new(0, "title", SimilarityFunction::JaccardTokens))
            .with(AttributeComparator::new(1, "brand", SimilarityFunction::JaroWinkler))
            .with(AttributeComparator::new(2, "price", SimilarityFunction::NumericDiff));
        let a = rec(&[Some("Ultra HD Smart TV"), Some("Samsung"), Some("699.99")]);
        let b = rec(&[Some("Ultra HD Smart TV 55"), Some("Samsung"), Some("699.99")]);
        let w = scheme.compare(&a, &b);
        assert_eq!(w.len(), 3);
        assert!(w[0] > 0.7 && w[0] < 1.0);
        assert_eq!(w[1], 1.0);
        assert_eq!(w[2], 1.0);
        assert!(w.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn missing_value_policies() {
        let zero = AttributeComparator::new(0, "x", SimilarityFunction::Exact);
        assert_eq!(zero.compare(None, Some("a")), 0.0);
        assert_eq!(zero.compare(None, None), 0.0);
        let mut half = AttributeComparator::new(0, "x", SimilarityFunction::Exact);
        half.missing = MissingValuePolicy::Constant(0.5);
        assert_eq!(half.compare(Some("a"), None), 0.5);
        let mut clamped = AttributeComparator::new(0, "x", SimilarityFunction::Exact);
        clamped.missing = MissingValuePolicy::Constant(7.0);
        assert_eq!(clamped.compare(None, None), 1.0);
    }

    #[test]
    fn feature_names_follow_paper_notation() {
        let scheme = ComparisonScheme::new()
            .with(AttributeComparator::new(0, "title", SimilarityFunction::JaccardTokens));
        assert_eq!(scheme.feature_names(), vec!["jaccard(title)".to_owned()]);
    }

    #[test]
    fn every_function_is_exercised_through_apply() {
        let fns = [
            SimilarityFunction::JaccardTokens,
            SimilarityFunction::JaccardQgrams(2),
            SimilarityFunction::DiceTokens,
            SimilarityFunction::OverlapTokens,
            SimilarityFunction::CosineTokens,
            SimilarityFunction::Levenshtein,
            SimilarityFunction::JaroWinkler,
            SimilarityFunction::LcsSubstring,
            SimilarityFunction::MongeElkan,
            SimilarityFunction::Exact,
            SimilarityFunction::NumericDiff,
            SimilarityFunction::Year,
            SimilarityFunction::SmithWaterman,
        ];
        for f in fns {
            let same = f.apply("2020", "2020");
            assert!((same - 1.0).abs() < 1e-12, "{:?} self-sim = {same}", f);
            let v = f.apply("abc 1999", "xyz 2042");
            assert!((0.0..=1.0).contains(&v), "{:?} out of range: {v}", f);
        }
    }

    #[test]
    fn numeric_diff_handles_unparseable() {
        let f = SimilarityFunction::NumericDiff;
        assert_eq!(f.apply("n/a", "100"), 0.0);
        assert!(f.apply("$100", "100.00") > 0.999);
    }
}
