//! Per-record comparison profiles: the featurization fast path.
//!
//! # Why
//!
//! Feature-vector generation (`w ∈ [0,1]^t` per candidate pair, paper §2) is
//! the innermost loop of the entire MoRER pipeline. The string-based
//! similarity functions re-normalize, re-tokenize and re-allocate token sets
//! for *both* records on *every* pair — but blocking guarantees each record
//! participates in many candidate pairs, so all of that per-record work can
//! be hoisted out of the pair loop: **O(records) preprocessing instead of
//! O(pairs)**.
//!
//! # What a profile caches
//!
//! For each attribute a [`ComparisonScheme`] (or blocking) actually touches,
//! a [`ProfileSet`] stores, computed exactly once per record:
//!
//! * the normalized string (every similarity function's starting point),
//! * the normalized char buffer (Jaro/Jaro-Winkler/LCS/Smith-Waterman),
//! * the sorted, deduplicated **interned token-id set** (`u32` ids from a
//!   shared [`TokenInterner`]) — token coefficients become sorted-`u32`
//!   intersections with no string comparisons at all,
//! * padded q-gram id sets per configured `q`,
//! * per-token char vectors (Monge-Elkan),
//! * parsed numeric / date values and cached char counts.
//!
//! [`ProfileSpec::from_scheme`] records which of these each attribute needs,
//! so profiling does no unnecessary work.
//!
//! # Storage layout
//!
//! Candidate pairs visit records in effectively random order, so the
//! featurization loop is bound by memory latency, not arithmetic. The cache
//! therefore lives in **flat arenas** — one contiguous buffer each for
//! normalized bytes, chars, token ids and q-gram ids — with a compact
//! fixed-size range table per *(record, attribute)* slot. A pair comparison
//! touches a handful of dense arrays instead of chasing per-record heap
//! allocations, which roughly halves the cache misses per pair.
//! [`RecordRef`]/[`AttrRef`] are copyable views into the arenas.
//!
//! # Equivalence guarantee
//!
//! The profiled path calls the *same* similarity cores
//! (`string_sim::*_chars`, `*_counts`, `levenshtein_*_norm`) the public
//! string functions delegate to, on identical normalized inputs, so results
//! are **bit-identical** to [`SimilarityFunction::apply`] — enforced by
//! property tests in `crates/sim/tests/properties.rs`.
//!
//! # Typical use
//!
//! ```
//! use morer_sim::{AttributeComparator, ComparisonScheme, SimilarityFunction};
//! use morer_sim::profile::ProfileSet;
//!
//! let scheme = ComparisonScheme::new()
//!     .with(AttributeComparator::new(0, "title", SimilarityFunction::JaccardTokens));
//! let mut profiles = ProfileSet::for_scheme(&scheme);
//! let a = profiles.add(&[Some("Ultra HD Smart TV".to_owned())]);
//! let b = profiles.add(&[Some("ultra hd smart tv 55".to_owned())]);
//! let w = scheme.compare_profiled(profiles.record(a), profiles.record(b));
//! assert_eq!(w, scheme.compare(&[Some("Ultra HD Smart TV".to_owned())],
//!                              &[Some("ultra hd smart tv 55".to_owned())]));
//! ```

use std::collections::HashMap;

use crate::comparator::{ComparisonScheme, SimilarityFunction};
use crate::numeric::{parse_date_days, parse_numeric};
use crate::string_sim::token_char_vecs;
use crate::tokenize::{normalize, norm_words, qgrams_norm};

/// Interns token strings to dense `u32` ids shared across records.
///
/// Ids are assigned in first-seen order; set operations only require id
/// *equality*, so the arbitrary order is harmless and keeps interning O(1)
/// amortized per token.
#[derive(Debug, Clone, Default)]
pub struct TokenInterner {
    map: HashMap<String, u32>,
}

impl TokenInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Id of `token`, allocating the next dense id on first sight.
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.map.get(token) {
            return id;
        }
        let id = u32::try_from(self.map.len()).expect("token interner overflow");
        self.map.insert(token.to_owned(), id);
        id
    }

    /// Id of `token` if it has been interned.
    pub fn lookup(&self, token: &str) -> Option<u32> {
        self.map.get(token).copied()
    }

    /// Number of distinct interned tokens.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Which cached artifacts one attribute needs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttrNeeds {
    /// Attribute is referenced at all (unreferenced attributes are skipped).
    pub used: bool,
    /// Sorted interned word-token id set (token coefficients, blocking).
    pub tokens: bool,
    /// Per-token char vectors in token order (Monge-Elkan).
    pub token_chars: bool,
    /// Normalized char buffer (Jaro, Jaro-Winkler, LCS, Smith-Waterman).
    pub chars: bool,
    /// Char count cache (Levenshtein).
    pub lev: bool,
    /// Padded q-gram id sets for these `q` values.
    pub qgram_sizes: Vec<usize>,
    /// Parsed numeric value (NumericDiff, Year).
    pub numeric: bool,
    /// Parsed date value (Date).
    pub date: bool,
}

/// Per-attribute cache requirements derived from a comparison scheme.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSpec {
    attrs: Vec<AttrNeeds>,
}

impl ProfileSpec {
    /// Requirements of `scheme`: one [`AttrNeeds`] per referenced attribute.
    pub fn from_scheme(scheme: &ComparisonScheme) -> Self {
        let mut spec = Self::default();
        for c in scheme.comparators() {
            let needs = spec.entry(c.attribute);
            match c.function {
                SimilarityFunction::JaccardTokens
                | SimilarityFunction::DiceTokens
                | SimilarityFunction::OverlapTokens
                | SimilarityFunction::CosineTokens => needs.tokens = true,
                SimilarityFunction::JaccardQgrams(q) => {
                    if !needs.qgram_sizes.contains(&q) {
                        needs.qgram_sizes.push(q);
                    }
                }
                SimilarityFunction::JaroWinkler
                | SimilarityFunction::LcsSubstring
                | SimilarityFunction::SmithWaterman => needs.chars = true,
                SimilarityFunction::MongeElkan => needs.token_chars = true,
                SimilarityFunction::Levenshtein => needs.lev = true,
                // Exact runs on the normalized string, which every used
                // attribute caches anyway.
                SimilarityFunction::Exact => {}
                SimilarityFunction::NumericDiff | SimilarityFunction::Year => {
                    needs.numeric = true;
                }
                SimilarityFunction::Date { .. } => needs.date = true,
            }
        }
        spec
    }

    /// Additionally cache word-token ids for `attribute` (used to share
    /// profiles with token blocking).
    pub fn require_tokens(mut self, attribute: usize) -> Self {
        self.entry(attribute).tokens = true;
        self
    }

    fn entry(&mut self, attribute: usize) -> &mut AttrNeeds {
        if self.attrs.len() <= attribute {
            self.attrs.resize(attribute + 1, AttrNeeds::default());
        }
        let needs = &mut self.attrs[attribute];
        needs.used = true;
        needs
    }

    /// Needs of `attribute` (unreferenced attributes report `used: false`).
    pub fn needs(&self, attribute: usize) -> Option<&AttrNeeds> {
        self.attrs.get(attribute).filter(|n| n.used)
    }

    /// Number of attribute slots (highest referenced attribute + 1).
    pub fn num_attrs(&self) -> usize {
        self.attrs.len()
    }
}

/// Sentinel arena range meaning "attribute missing on this record".
const MISSING: (u32, u32) = (u32::MAX, u32::MAX);

/// Per-attribute spec bits (one byte per attribute, checked by the
/// [`AttrRef`] accessors so a profile/scheme mismatch panics instead of
/// silently returning wrong similarities).
const NEED_TOKENS: u8 = 1;
const NEED_TOKEN_CHARS: u8 = 2;
const NEED_CHARS: u8 = 4;
const NEED_LEV: u8 = 8;
const NEED_NUMERIC: u8 = 16;
const NEED_DATE: u8 = 32;

/// Per-slot flag bits.
const FLAG_PRESENT: u8 = 1;
const FLAG_SMALL_ASCII: u8 = 2;
const FLAG_NUMERIC: u8 = 4;
const FLAG_DATE: u8 = 8;

/// Arena-flattened per-record comparison caches (see the module docs for the
/// layout rationale). Build with [`ProfileSet::add`], read through
/// [`ProfileSet::record`].
#[derive(Debug, Clone, Default)]
pub struct ProfileSet {
    spec: ProfileSpec,
    n_attrs: usize,
    q_stride: usize,
    /// One `NEED_*` bit set per attribute, for cheap accessor checks.
    needs_bits: Vec<u8>,
    records: usize,
    tokens: TokenInterner,
    qgrams: TokenInterner,
    // arenas
    norm_bytes: Vec<u8>,
    chars_data: Vec<char>,
    token_id_data: Vec<u32>,
    qgram_id_data: Vec<u32>,
    // per (record, attribute) slot, record-major
    norm_range: Vec<(u32, u32)>,
    chars_range: Vec<(u32, u32)>,
    token_range: Vec<(u32, u32)>,
    /// `q_stride` entries per slot, one per configured q of the attribute.
    qgram_range: Vec<(u32, u32)>,
    flags: Vec<u8>,
    char_count: Vec<u32>,
    numeric: Vec<f64>,
    date_days: Vec<i64>,
    /// Per-slot token char vectors (Monge-Elkan attributes only).
    token_chars: Vec<Vec<Vec<char>>>,
}

impl ProfileSet {
    /// Empty set for an explicit spec.
    pub fn new(spec: ProfileSpec) -> Self {
        let n_attrs = spec.num_attrs();
        let q_stride = spec
            .attrs
            .iter()
            .map(|n| n.qgram_sizes.len())
            .max()
            .unwrap_or(0);
        let needs_bits = spec
            .attrs
            .iter()
            .map(|n| {
                u8::from(n.tokens) * NEED_TOKENS
                    | u8::from(n.token_chars) * NEED_TOKEN_CHARS
                    | u8::from(n.chars) * NEED_CHARS
                    | u8::from(n.lev) * NEED_LEV
                    | u8::from(n.numeric) * NEED_NUMERIC
                    | u8::from(n.date) * NEED_DATE
            })
            .collect();
        Self { spec, n_attrs, q_stride, needs_bits, ..Self::default() }
    }

    /// Empty set covering exactly what `scheme` compares.
    pub fn for_scheme(scheme: &ComparisonScheme) -> Self {
        Self::new(ProfileSpec::from_scheme(scheme))
    }

    /// The spec this set caches for.
    pub fn spec(&self) -> &ProfileSpec {
        &self.spec
    }

    /// Number of profiled records.
    pub fn len(&self) -> usize {
        self.records
    }

    /// True when no records have been profiled.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// The shared word-token interner (exposed for blocking).
    pub fn token_interner(&self) -> &TokenInterner {
        &self.tokens
    }

    /// Profile one record from its attribute value slice; returns its index.
    pub fn add(&mut self, values: &[Option<String>]) -> usize {
        // take the spec out so arena mutation doesn't fight the borrow
        let spec = std::mem::take(&mut self.spec);
        for attribute in 0..self.n_attrs {
            match (spec.needs(attribute), values.get(attribute).and_then(Option::as_ref)) {
                (Some(needs), Some(raw)) => self.add_attr(raw, needs),
                _ => self.add_missing_attr(),
            }
        }
        self.spec = spec;
        self.records += 1;
        self.records - 1
    }

    fn add_missing_attr(&mut self) {
        self.norm_range.push(MISSING);
        self.chars_range.push(MISSING);
        self.token_range.push(MISSING);
        for _ in 0..self.q_stride {
            self.qgram_range.push(MISSING);
        }
        self.flags.push(0);
        self.char_count.push(0);
        self.numeric.push(0.0);
        self.date_days.push(0);
        self.token_chars.push(Vec::new());
    }

    fn add_attr(&mut self, raw: &str, needs: &AttrNeeds) {
        let norm = normalize(raw);
        let mut flags = FLAG_PRESENT;

        let norm_start = self.norm_bytes.len() as u32;
        self.norm_bytes.extend_from_slice(norm.as_bytes());
        self.norm_range.push((norm_start, norm.len() as u32));

        if needs.chars {
            let start = self.chars_data.len() as u32;
            self.chars_data.extend(norm.chars());
            self.chars_range.push((start, self.chars_data.len() as u32 - start));
        } else {
            self.chars_range.push(MISSING);
        }

        if needs.tokens {
            let mut ids: Vec<u32> = norm_words(&norm).map(|t| self.tokens.intern(t)).collect();
            ids.sort_unstable();
            ids.dedup();
            let start = self.token_id_data.len() as u32;
            self.token_id_data.extend_from_slice(&ids);
            self.token_range.push((start, ids.len() as u32));
        } else {
            self.token_range.push(MISSING);
        }

        for qi in 0..self.q_stride {
            match needs.qgram_sizes.get(qi) {
                Some(&q) => {
                    let mut ids: Vec<u32> = qgrams_norm(&norm, q, true)
                        .iter()
                        .map(|g| self.qgrams.intern(g))
                        .collect();
                    ids.sort_unstable();
                    ids.dedup();
                    let start = self.qgram_id_data.len() as u32;
                    self.qgram_id_data.extend_from_slice(&ids);
                    self.qgram_range.push((start, ids.len() as u32));
                }
                None => self.qgram_range.push(MISSING),
            }
        }

        if needs.lev {
            self.char_count.push(norm.chars().count() as u32);
            if norm.is_ascii() && norm.len() <= crate::string_sim::MYERS_MAX_LEN {
                flags |= FLAG_SMALL_ASCII;
            }
        } else {
            self.char_count.push(0);
        }

        if needs.numeric {
            match parse_numeric(raw) {
                Some(x) => {
                    flags |= FLAG_NUMERIC;
                    self.numeric.push(x);
                }
                None => self.numeric.push(0.0),
            }
        } else {
            self.numeric.push(0.0);
        }

        if needs.date {
            match parse_date_days(raw) {
                Some(d) => {
                    flags |= FLAG_DATE;
                    self.date_days.push(d);
                }
                None => self.date_days.push(0),
            }
        } else {
            self.date_days.push(0);
        }

        if needs.token_chars {
            self.token_chars.push(token_char_vecs(&norm));
        } else {
            self.token_chars.push(Vec::new());
        }

        self.flags.push(flags);
    }

    /// View of record `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn record(&self, index: usize) -> RecordRef<'_> {
        assert!(index < self.records, "record index out of bounds");
        RecordRef { set: self, record: index }
    }
}

/// Copyable view of one profiled record.
#[derive(Debug, Clone, Copy)]
pub struct RecordRef<'a> {
    set: &'a ProfileSet,
    record: usize,
}

impl<'a> RecordRef<'a> {
    /// View of `attribute`, `None` when the value is missing on the record
    /// (or the attribute is outside the profile spec).
    #[inline]
    pub fn attr(&self, attribute: usize) -> Option<AttrRef<'a>> {
        if attribute >= self.set.n_attrs {
            return None;
        }
        let slot = self.record * self.set.n_attrs + attribute;
        if self.set.flags[slot] & FLAG_PRESENT == 0 {
            return None;
        }
        Some(AttrRef { set: self.set, slot, attribute })
    }
}

/// Copyable view of one profiled attribute value.
#[derive(Debug, Clone, Copy)]
pub struct AttrRef<'a> {
    set: &'a ProfileSet,
    slot: usize,
    attribute: usize,
}

impl<'a> AttrRef<'a> {
    /// Panic unless the profile spec requested the artifact being read —
    /// reading unrequested artifacts would silently return wrong
    /// similarities (empty sets, zero counts).
    #[inline]
    fn require(&self, bit: u8, what: &str) {
        assert!(
            self.set.needs_bits[self.attribute] & bit != 0,
            "{what} not in the profile spec for attribute {}; \
             profile the records with the scheme that compares them",
            self.attribute
        );
    }

    /// The normalized string.
    #[inline]
    pub fn norm(&self) -> &'a str {
        let (start, len) = self.set.norm_range[self.slot];
        // arena bytes are concatenated normalized strings — valid UTF-8
        unsafe {
            std::str::from_utf8_unchecked(
                &self.set.norm_bytes[start as usize..(start + len) as usize],
            )
        }
    }

    /// Chars of the normalized string (requires `chars` in the spec).
    #[inline]
    pub fn chars(&self) -> &'a [char] {
        self.require(NEED_CHARS, "chars");
        let (start, len) = self.set.chars_range[self.slot];
        &self.set.chars_data[start as usize..(start + len) as usize]
    }

    /// Sorted deduplicated interned token ids (requires `tokens`).
    #[inline]
    pub fn token_ids(&self) -> &'a [u32] {
        self.require(NEED_TOKENS, "tokens");
        let (start, len) = self.set.token_range[self.slot];
        &self.set.token_id_data[start as usize..(start + len) as usize]
    }

    /// Sorted deduplicated q-gram ids for `q`.
    ///
    /// # Panics
    /// Panics if `q` was not in the profile spec for this attribute.
    #[inline]
    pub fn qgram_set(&self, q: usize) -> &'a [u32] {
        let qi = self
            .set
            .spec
            .needs(self.attribute)
            .and_then(|n| n.qgram_sizes.iter().position(|&s| s == q))
            .expect("q-gram size missing from profile spec");
        let (start, len) = self.set.qgram_range[self.slot * self.set.q_stride + qi];
        &self.set.qgram_id_data[start as usize..(start + len) as usize]
    }

    /// Per-token char vectors in token order (requires `token_chars`).
    #[inline]
    pub fn token_chars(&self) -> &'a [Vec<char>] {
        self.require(NEED_TOKEN_CHARS, "token_chars");
        &self.set.token_chars[self.slot]
    }

    /// Cached `norm().chars().count()` (requires `lev`).
    #[inline]
    pub fn char_count(&self) -> usize {
        self.require(NEED_LEV, "Levenshtein artifacts");
        self.set.char_count[self.slot] as usize
    }

    /// Whether the normalized form is ASCII and short enough for the Myers
    /// Levenshtein kernel (requires `lev`).
    #[inline]
    pub fn small_ascii(&self) -> bool {
        self.require(NEED_LEV, "Levenshtein artifacts");
        self.set.flags[self.slot] & FLAG_SMALL_ASCII != 0
    }

    /// Cached parsed numeric value (requires `numeric`).
    #[inline]
    pub fn numeric(&self) -> Option<f64> {
        self.require(NEED_NUMERIC, "numeric parse");
        (self.set.flags[self.slot] & FLAG_NUMERIC != 0).then(|| self.set.numeric[self.slot])
    }

    /// Cached parsed date (requires `date`).
    #[inline]
    pub fn date_days(&self) -> Option<i64> {
        self.require(NEED_DATE, "date parse");
        (self.set.flags[self.slot] & FLAG_DATE != 0).then(|| self.set.date_days[self.slot])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::AttributeComparator;

    fn rec(values: &[Option<&str>]) -> Vec<Option<String>> {
        values.iter().map(|v| v.map(str::to_owned)).collect()
    }

    fn full_scheme() -> ComparisonScheme {
        ComparisonScheme::new()
            .with(AttributeComparator::new(0, "title", SimilarityFunction::JaccardTokens))
            .with(AttributeComparator::new(0, "title", SimilarityFunction::MongeElkan))
            .with(AttributeComparator::new(0, "title", SimilarityFunction::JaccardQgrams(2)))
            .with(AttributeComparator::new(1, "brand", SimilarityFunction::JaroWinkler))
            .with(AttributeComparator::new(2, "price", SimilarityFunction::NumericDiff))
            .with(AttributeComparator::new(3, "date", SimilarityFunction::Date { tolerance_days: 30 }))
    }

    #[test]
    fn spec_collects_needs_per_attribute() {
        let spec = ProfileSpec::from_scheme(&full_scheme());
        let title = spec.needs(0).unwrap();
        assert!(title.tokens && title.token_chars);
        assert_eq!(title.qgram_sizes, vec![2]);
        let brand = spec.needs(1).unwrap();
        assert!(brand.chars && !brand.tokens);
        assert!(spec.needs(2).unwrap().numeric);
        assert!(spec.needs(3).unwrap().date);
        assert!(spec.needs(4).is_none());
    }

    #[test]
    fn interner_assigns_dense_stable_ids() {
        let mut interner = TokenInterner::new();
        let a = interner.intern("canon");
        let b = interner.intern("eos");
        assert_ne!(a, b);
        assert_eq!(interner.intern("canon"), a);
        assert_eq!(interner.lookup("eos"), Some(b));
        assert_eq!(interner.lookup("nope"), None);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn profiles_cache_token_ids_sorted_and_deduped() {
        let scheme = full_scheme();
        let mut set = ProfileSet::for_scheme(&scheme);
        let idx = set.add(&rec(&[
            Some("Canon EOS canon KIT"),
            Some("Canon"),
            Some("$499"),
            Some("2021-05-01"),
        ]));
        let record = set.record(idx);
        let title = record.attr(0).unwrap();
        assert_eq!(title.norm(), "canon eos canon kit");
        // 3 distinct tokens out of 4
        assert_eq!(title.token_ids().len(), 3);
        assert!(title.token_ids().windows(2).all(|w| w[0] < w[1]));
        // token order is preserved for monge-elkan (not deduped)
        assert_eq!(title.token_chars().len(), 4);
        assert!(!title.qgram_set(2).is_empty());
        assert_eq!(record.attr(1).unwrap().chars(), &['c', 'a', 'n', 'o', 'n']);
        assert_eq!(record.attr(2).unwrap().numeric(), Some(499.0));
        assert!(record.attr(3).unwrap().date_days().is_some());
    }

    #[test]
    fn missing_and_unreferenced_attributes_are_none() {
        let scheme = full_scheme();
        let mut set = ProfileSet::for_scheme(&scheme);
        let idx = set.add(&rec(&[None, Some("Sony")]));
        let record = set.record(idx);
        assert!(record.attr(0).is_none());
        assert!(record.attr(1).is_some());
        assert!(record.attr(2).is_none());
        assert!(record.attr(9).is_none());
    }

    #[test]
    fn shared_interner_gives_equal_ids_across_records() {
        let scheme = ComparisonScheme::new()
            .with(AttributeComparator::new(0, "t", SimilarityFunction::JaccardTokens));
        let mut set = ProfileSet::for_scheme(&scheme);
        let a = set.add(&rec(&[Some("alpha beta")]));
        let b = set.add(&rec(&[Some("beta gamma")]));
        let ids_a = set.record(a).attr(0).unwrap().token_ids();
        let ids_b = set.record(b).attr(0).unwrap().token_ids();
        let shared: Vec<u32> =
            ids_a.iter().filter(|id| ids_b.contains(id)).copied().collect();
        assert_eq!(shared.len(), 1, "beta must intern to the same id");
    }

    #[test]
    #[should_panic(expected = "not in the profile spec")]
    fn mismatched_spec_panics_instead_of_lying() {
        // profiled for blocking only (tokens), then read as if Levenshtein
        // had been profiled — must panic, not return a fake similarity
        let narrow = ProfileSpec::default().require_tokens(0);
        let mut set = ProfileSet::new(narrow);
        let idx = set.add(&rec(&[Some("canon eos")]));
        let _ = set.record(idx).attr(0).unwrap().char_count();
    }

    #[test]
    fn unicode_norms_survive_the_byte_arena() {
        let scheme = ComparisonScheme::new()
            .with(AttributeComparator::new(0, "t", SimilarityFunction::Exact));
        let mut set = ProfileSet::for_scheme(&scheme);
        let a = set.add(&rec(&[Some("Ünïcode — 日本語!")]));
        let b = set.add(&rec(&[Some("plain ascii")]));
        assert_eq!(set.record(a).attr(0).unwrap().norm(), "ünïcode 日本語");
        assert_eq!(set.record(b).attr(0).unwrap().norm(), "plain ascii");
    }
}
