//! Tokenization utilities shared by token-based similarity functions and the
//! embedding substrate.
//!
//! The tokenizers are intentionally simple and deterministic: Unicode
//! alphanumeric runs for words, sliding windows for q-grams. They mirror the
//! preprocessing typically applied before Jaccard/Dice comparison in classic
//! record-linkage toolkits.

use std::borrow::Cow;

/// Normalize a raw attribute value: lowercase and collapse every
/// non-alphanumeric run into a single space.
///
/// This is the canonical preprocessing applied before word tokenization so
/// that `"Ultra-HD  Smart TV!"` and `"ultra hd smart tv"` compare equal.
///
/// Inputs that are already in normalized form (ASCII lowercase alphanumerics
/// separated by single spaces) are borrowed rather than copied — the common
/// case on pre-cleaned data and on re-normalization of cached
/// [`crate::profile::AttrProfile`] strings.
pub fn normalize(s: &str) -> Cow<'_, str> {
    if is_normalized_ascii(s) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            if ch.is_ascii() {
                out.push(ch.to_ascii_lowercase());
            } else {
                for lc in ch.to_lowercase() {
                    out.push(lc);
                }
            }
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    Cow::Owned(out)
}

/// True when `normalize` would return the input unchanged: non-empty-safe
/// check for ASCII lowercase alphanumerics with single interior spaces and
/// no leading/trailing space.
fn is_normalized_ascii(s: &str) -> bool {
    let bytes = s.as_bytes();
    if bytes.is_empty() {
        return true;
    }
    if bytes[0] == b' ' || bytes[bytes.len() - 1] == b' ' {
        return false;
    }
    let mut prev_space = false;
    for &b in bytes {
        match b {
            b'a'..=b'z' | b'0'..=b'9' => prev_space = false,
            b' ' => {
                if prev_space {
                    return false;
                }
                prev_space = true;
            }
            _ => return false,
        }
    }
    true
}

/// Split a string into lowercase word tokens (alphanumeric runs).
pub fn words(s: &str) -> Vec<String> {
    norm_words(&normalize(s)).map(str::to_owned).collect()
}

/// Iterate the word tokens of an *already normalized* string without
/// allocating.
pub fn norm_words(norm: &str) -> impl Iterator<Item = &str> {
    norm.split(' ').filter(|t| !t.is_empty())
}

/// Sorted, deduplicated word-token set of an *already normalized* string,
/// borrowing the tokens. One pass: tokenize, sort, dedup.
pub fn sorted_token_refs(norm: &str) -> Vec<&str> {
    let mut set: Vec<&str> = norm_words(norm).collect();
    set.sort_unstable();
    set.dedup();
    set
}

/// Produce the multiset of character q-grams of `s` (as byte-window strings
/// over the normalized form).
///
/// When `padded` is true the string is framed with `q - 1` leading `#` and
/// trailing `$` sentinel characters, which gives extra weight to matching
/// prefixes/suffixes — the classic Febrl behaviour.
pub fn qgrams(s: &str, q: usize, padded: bool) -> Vec<String> {
    qgrams_norm(&normalize(s), q, padded)
}

/// q-grams of an *already normalized* string (the cache-friendly entry point
/// used by record profiling).
pub fn qgrams_norm(norm: &str, q: usize, padded: bool) -> Vec<String> {
    assert!(q >= 1, "q-gram size must be at least 1");
    let mut chars: Vec<char> = Vec::with_capacity(norm.len() + 2 * (q - 1));
    if padded {
        chars.extend(std::iter::repeat_n('#', q - 1));
    }
    chars.extend(norm.chars());
    if padded {
        chars.extend(std::iter::repeat_n('$', q - 1));
    }
    if chars.len() < q {
        if chars.is_empty() {
            return Vec::new();
        }
        return vec![chars.iter().collect()];
    }
    chars.windows(q).map(|w| w.iter().collect()).collect()
}

/// Sorted, deduplicated token set — the representation used by the set-based
/// similarity coefficients.
pub fn token_set(tokens: &[String]) -> Vec<&str> {
    let mut set: Vec<&str> = tokens.iter().map(String::as_str).collect();
    set.sort_unstable();
    set.dedup();
    set
}

/// Size of the intersection of two *sorted deduplicated* slices.
pub(crate) fn sorted_intersection_len<T: Ord>(a: &[T], b: &[T]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses_punctuation_and_case() {
        assert_eq!(normalize("Ultra-HD  Smart TV!"), "ultra hd smart tv");
        assert_eq!(normalize("  "), "");
        assert_eq!(normalize("a"), "a");
        assert_eq!(normalize("A--B"), "a b");
    }

    #[test]
    fn normalize_borrows_already_normalized_input() {
        for s in ["ultra hd smart tv", "", "a", "canon eos 750d"] {
            assert!(matches!(normalize(s), Cow::Borrowed(_)), "{s:?}");
        }
        for s in ["Ultra HD", "a  b", " a", "a ", "a-b", "é"] {
            assert!(matches!(normalize(s), Cow::Owned(_)), "{s:?}");
        }
    }

    #[test]
    fn words_splits_on_non_alphanumeric() {
        assert_eq!(words("Bose QC35 II"), vec!["bose", "qc35", "ii"]);
        assert!(words("!!!").is_empty());
    }

    #[test]
    fn sorted_token_refs_matches_token_set() {
        let norm = normalize("beta alpha beta gamma");
        assert_eq!(sorted_token_refs(&norm), vec!["alpha", "beta", "gamma"]);
        assert!(sorted_token_refs("").is_empty());
    }

    #[test]
    fn qgrams_unpadded_basic() {
        assert_eq!(qgrams("abcd", 2, false), vec!["ab", "bc", "cd"]);
    }

    #[test]
    fn qgrams_padded_adds_sentinels() {
        let grams = qgrams("ab", 2, true);
        assert_eq!(grams, vec!["#a", "ab", "b$"]);
    }

    #[test]
    fn qgrams_short_string_returns_whole() {
        assert_eq!(qgrams("a", 3, false), vec!["a"]);
        assert!(qgrams("", 3, false).is_empty());
    }

    #[test]
    fn qgrams_normalizes_input() {
        assert_eq!(qgrams("A B", 2, false), qgrams("a b", 2, false));
    }

    #[test]
    fn token_set_sorts_and_dedups() {
        let toks = vec!["b".to_owned(), "a".to_owned(), "b".to_owned()];
        assert_eq!(token_set(&toks), vec!["a", "b"]);
    }

    #[test]
    fn intersection_len_counts_common() {
        let a = vec!["a", "b", "c"];
        let b = vec!["b", "c", "d"];
        assert_eq!(sorted_intersection_len(&a, &b), 2);
        assert_eq!(sorted_intersection_len(&a, &[]), 0);
        assert_eq!(sorted_intersection_len(&[1u32, 5, 9], &[5, 9, 11]), 2);
    }
}
