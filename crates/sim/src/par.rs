//! Minimal data-parallel helpers built on scoped `std::thread`.
//!
//! The vendored `rayon` stand-in is sequential (see `crates/vendor/README.md`),
//! so the featurization hot path uses these helpers directly: they give real
//! multi-core speedups on machines that have the cores, degrade to plain
//! loops on single-core machines, and keep the speed-critical code
//! independent of which rayon is linked.

use std::num::NonZeroUsize;

/// Number of worker threads to use for `n_items` work items, given a
/// minimum profitable chunk size.
pub fn thread_count(n_items: usize, min_chunk: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(n_items / min_chunk.max(1)).max(1)
}

/// Fill a row-major `rows × cols` buffer in parallel: `fill(i, row)` is
/// called exactly once per row index `i`, in unspecified thread order, with
/// rows handed out as contiguous per-thread chunks.
///
/// Falls back to a sequential loop when only one thread is profitable.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `cols` (for `cols > 0`).
pub fn fill_rows<F>(data: &mut [f64], cols: usize, fill: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if cols == 0 || data.is_empty() {
        return;
    }
    assert_eq!(data.len() % cols, 0, "buffer length must be rows * cols");
    let rows = data.len() / cols;
    // below ~4k rows thread spawn overhead beats the win
    let threads = thread_count(rows, 4096);
    if threads <= 1 {
        for (i, row) in data.chunks_mut(cols).enumerate() {
            fill(i, row);
        }
        return;
    }
    let rows_per_thread = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, chunk) in data.chunks_mut(rows_per_thread * cols).enumerate() {
            let fill = &fill;
            scope.spawn(move || {
                let base = chunk_idx * rows_per_thread;
                for (i, row) in chunk.chunks_mut(cols).enumerate() {
                    fill(base + i, row);
                }
            });
        }
    });
}

/// Map `f` over `0..n` with scoped worker threads, collecting the results
/// in index order. Indices are handed out as contiguous per-thread chunks;
/// `min_chunk` is the smallest per-thread chunk worth a thread spawn.
///
/// Falls back to a plain sequential map when only one thread is profitable,
/// so single-core machines pay no overhead. Used by the distribution
/// analysis to fan the O(P²) problem-pair loop out over cores (the vendored
/// rayon stand-in is sequential — see `crates/vendor/README.md`).
pub fn map_indexed<T, F>(n: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = thread_count(n, min_chunk);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let per_thread = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                scope.spawn(move || {
                    let lo = t * per_thread;
                    let hi = ((t + 1) * per_thread).min(n);
                    (lo..hi).map(f).collect::<Vec<T>>()
                })
            })
            .collect();
        for h in handles {
            chunks.push(h.join().expect("map_indexed worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for c in chunks {
        out.extend(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_rows_visits_every_row_once() {
        let cols = 3;
        let rows = 1000;
        let mut data = vec![0.0; rows * cols];
        fill_rows(&mut data, cols, |i, row| {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (i * cols + j) as f64;
            }
        });
        for (k, v) in data.iter().enumerate() {
            assert_eq!(*v, k as f64);
        }
    }

    #[test]
    fn fill_rows_handles_degenerate_shapes() {
        let mut empty: Vec<f64> = Vec::new();
        fill_rows(&mut empty, 4, |_, _| panic!("no rows to fill"));
        fill_rows(&mut empty, 0, |_, _| panic!("no rows to fill"));
        let mut one = vec![0.0; 2];
        fill_rows(&mut one, 2, |i, row| row.fill(i as f64 + 7.0));
        assert_eq!(one, vec![7.0, 7.0]);
    }

    #[test]
    fn map_indexed_preserves_index_order() {
        let out = map_indexed(10_000, 1, |i| i * 3);
        assert_eq!(out.len(), 10_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn map_indexed_handles_degenerate_sizes() {
        assert_eq!(map_indexed(0, 1, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 1024, |i| i + 5), vec![5]);
        // n smaller than a profitable chunk stays sequential but complete
        assert_eq!(map_indexed(3, 1_000_000, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn thread_count_is_bounded() {
        assert_eq!(thread_count(0, 1024), 1);
        assert_eq!(thread_count(100, 1024), 1);
        assert!(thread_count(1 << 20, 1024) >= 1);
    }
}
