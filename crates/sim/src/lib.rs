//! # morer-sim — similarity functions for entity resolution
//!
//! This crate is the comparison substrate of the MoRER reproduction. It
//! provides the string and numeric similarity functions used to turn a pair of
//! attribute values into a similarity in `[0, 1]`, together with the
//! tokenizers they rely on and a small configuration layer
//! ([`comparator::AttributeComparator`]) that maps optional attribute values
//! to feature values.
//!
//! All functions are pure, allocation-conscious, and return values clamped to
//! `[0, 1]` where `1.0` means identical and `0.0` means maximally dissimilar.
//!
//! ## Example
//!
//! ```
//! use morer_sim::string_sim::{jaccard_tokens, jaro_winkler, levenshtein_sim};
//!
//! assert_eq!(jaccard_tokens("ultra hd smart tv", "ultra hd smart tv"), 1.0);
//! assert!(jaro_winkler("samsung", "samsnug") > 0.9);
//! assert!(levenshtein_sim("qc35", "qc35 ii") > 0.5);
//! ```

pub mod comparator;
pub mod numeric;
pub mod par;
pub mod profile;
pub mod string_sim;
pub mod tokenize;

pub use comparator::{AttributeComparator, ComparisonScheme, MissingValuePolicy, SimilarityFunction};
pub use profile::{AttrRef, ProfileSet, ProfileSpec, RecordRef, TokenInterner};

/// Clamp a floating point similarity into the canonical `[0, 1]` interval.
///
/// NaN inputs (possible when both operands are empty for some ratios) are
/// mapped to `0.0` so downstream statistics never observe NaN.
#[inline]
pub fn clamp_unit(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_unit_handles_nan_and_range() {
        assert_eq!(clamp_unit(f64::NAN), 0.0);
        assert_eq!(clamp_unit(-0.5), 0.0);
        assert_eq!(clamp_unit(1.5), 1.0);
        assert_eq!(clamp_unit(0.25), 0.25);
    }
}
