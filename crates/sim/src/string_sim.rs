//! String similarity functions.
//!
//! Every function returns a similarity in `[0, 1]`. Token-based coefficients
//! (Jaccard, Dice, overlap, cosine) operate on word token sets; q-gram
//! variants operate on character q-gram sets. Edit-based functions
//! (Levenshtein, Jaro, Jaro-Winkler) operate on the normalized character
//! sequence. Hybrid Monge-Elkan combines the two levels.
//!
//! Each public `&str` function normalizes its inputs **once** and delegates
//! to a core that operates on the normalized form (`*_chars` for
//! character-level functions, `*_counts` for set coefficients). The record
//! profiling fast path ([`crate::profile`]) calls the *same* cores on cached
//! normalized data, which is what guarantees bit-identical results between
//! the cold string path and the profiled path.

use crate::clamp_unit;
use crate::tokenize::{normalize, norm_words, qgrams, sorted_intersection_len, sorted_token_refs, token_set};

// ---------------------------------------------------------------------------
// Set-coefficient cores
// ---------------------------------------------------------------------------

/// Jaccard coefficient from set cardinalities: `inter / (la + lb − inter)`.
#[inline]
pub(crate) fn jaccard_counts(inter: usize, la: usize, lb: usize) -> f64 {
    if la == 0 && lb == 0 {
        return 1.0;
    }
    if la == 0 || lb == 0 {
        return 0.0;
    }
    let union = la + lb - inter;
    clamp_unit(inter as f64 / union as f64)
}

/// Sørensen–Dice coefficient from set cardinalities.
#[inline]
pub(crate) fn dice_counts(inter: usize, la: usize, lb: usize) -> f64 {
    if la == 0 && lb == 0 {
        return 1.0;
    }
    if la == 0 || lb == 0 {
        return 0.0;
    }
    clamp_unit(2.0 * inter as f64 / (la + lb) as f64)
}

/// Overlap coefficient from set cardinalities.
#[inline]
pub(crate) fn overlap_counts(inter: usize, la: usize, lb: usize) -> f64 {
    if la == 0 && lb == 0 {
        return 1.0;
    }
    if la == 0 || lb == 0 {
        return 0.0;
    }
    clamp_unit(inter as f64 / la.min(lb) as f64)
}

/// Cosine similarity (binary vectors) from set cardinalities.
#[inline]
pub(crate) fn cosine_counts(inter: usize, la: usize, lb: usize) -> f64 {
    if la == 0 && lb == 0 {
        return 1.0;
    }
    if la == 0 || lb == 0 {
        return 0.0;
    }
    clamp_unit(inter as f64 / ((la as f64) * (lb as f64)).sqrt())
}

/// Normalize both inputs once and build their sorted word-token sets.
macro_rules! token_coefficient {
    ($a:expr, $b:expr, $counts:ident) => {{
        let (na, nb) = (normalize($a), normalize($b));
        let (sa, sb) = (sorted_token_refs(&na), sorted_token_refs(&nb));
        $counts(sorted_intersection_len(&sa, &sb), sa.len(), sb.len())
    }};
}

/// Jaccard coefficient over word token sets: `|A ∩ B| / |A ∪ B|`.
///
/// This is the function the paper illustrates in Fig. 2 (`jaccard(title)`).
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    token_coefficient!(a, b, jaccard_counts)
}

/// Jaccard coefficient over character q-gram sets.
pub fn jaccard_qgrams(a: &str, b: &str, q: usize) -> f64 {
    let (ga, gb) = (qgrams(a, q, true), qgrams(b, q, true));
    let (sa, sb) = (token_set(&ga), token_set(&gb));
    jaccard_counts(sorted_intersection_len(&sa, &sb), sa.len(), sb.len())
}

/// Sørensen–Dice coefficient over word token sets: `2|A ∩ B| / (|A| + |B|)`.
pub fn dice_tokens(a: &str, b: &str) -> f64 {
    token_coefficient!(a, b, dice_counts)
}

/// Overlap coefficient over word token sets: `|A ∩ B| / min(|A|, |B|)`.
pub fn overlap_tokens(a: &str, b: &str) -> f64 {
    token_coefficient!(a, b, overlap_counts)
}

/// Cosine similarity over binary word token vectors:
/// `|A ∩ B| / sqrt(|A| · |B|)`.
pub fn cosine_tokens(a: &str, b: &str) -> f64 {
    token_coefficient!(a, b, cosine_counts)
}

// ---------------------------------------------------------------------------
// Levenshtein
// ---------------------------------------------------------------------------

/// Longest normalized string (in bytes) still eligible for the Myers
/// bit-parallel Levenshtein kernel: the pattern bitmask must fit one `u64`.
pub(crate) const MYERS_MAX_LEN: usize = 64;

/// Compact Myers alphabet: normalized strings only contain `[a-z0-9 ]`, so
/// the per-pattern match-mask table needs 37 classes plus a catch-all. Bytes
/// mapping to the catch-all class (37) force the general 128-entry table —
/// two distinct catch-all bytes must not share an `eq` mask.
const MYERS_CATCH_ALL: u8 = 37;
static MYERS_CLASS: [u8; 128] = build_myers_classes();

const fn build_myers_classes() -> [u8; 128] {
    let mut table = [MYERS_CATCH_ALL; 128];
    let mut c = 0usize;
    while c < 26 {
        table[b'a' as usize + c] = c as u8;
        c += 1;
    }
    let mut d = 0usize;
    while d < 10 {
        table[b'0' as usize + d] = 26 + d as u8;
        d += 1;
    }
    table[b' ' as usize] = 36;
    table
}

macro_rules! myers_loop {
    ($peq:expr, $class:expr, $a_len:expr, $b:expr) => {{
        let mut pv = !0u64;
        let mut mv = 0u64;
        let mut score = $a_len;
        let high = 1u64 << ($a_len - 1);
        for &c in $b {
            let eq = $peq[$class(c)];
            let xv = eq | mv;
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let mut ph = mv | !(xh | pv);
            let mut mh = pv & xh;
            if ph & high != 0 {
                score += 1;
            }
            if mh & high != 0 {
                score -= 1;
            }
            ph = (ph << 1) | 1;
            mh <<= 1;
            pv = mh | !(xv | ph);
            mv = ph & xv;
        }
        score
    }};
}

/// Myers (1999) bit-parallel Levenshtein distance for ASCII byte strings.
///
/// `a` is the pattern (`1 ≤ |a| ≤ 64`); `b` may be any non-empty length.
/// Runs in O(|b|) words instead of the O(|a|·|b|) cell updates of the
/// dynamic program, an ~20× kernel speedup on typical attribute values.
/// Patterns over the normalized alphabet `[a-z0-9 ]` use a compact 38-entry
/// mask table (cheap to zero per call); anything else falls back to the full
/// 128-entry table.
pub(crate) fn levenshtein_myers_ascii(a: &[u8], b: &[u8]) -> usize {
    debug_assert!(!a.is_empty() && a.len() <= MYERS_MAX_LEN);
    debug_assert!(!b.is_empty());
    let mut peq = [0u64; 38];
    let mut compact = true;
    for (i, &c) in a.iter().enumerate() {
        let class = MYERS_CLASS[(c & 0x7f) as usize];
        if class == MYERS_CATCH_ALL {
            compact = false;
            break;
        }
        peq[class as usize] |= 1 << i;
    }
    if compact {
        // text bytes outside the compact alphabet read the catch-all class,
        // whose mask is 0 (the pattern has no such byte) — a correct mismatch
        myers_loop!(peq, |c: u8| MYERS_CLASS[(c & 0x7f) as usize] as usize, a.len(), b)
    } else {
        let mut peq = [0u64; 128];
        for (i, &c) in a.iter().enumerate() {
            peq[(c & 0x7f) as usize] |= 1 << i;
        }
        myers_loop!(peq, |c: u8| (c & 0x7f) as usize, a.len(), b)
    }
}

/// Two-row dynamic-program Levenshtein over char slices (the general-case
/// fallback for non-ASCII or > 64-char inputs).
pub(crate) fn levenshtein_dp(a: &[char], b: &[char]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Levenshtein distance between two *already normalized* strings, choosing
/// the Myers bit-parallel kernel when both sides are short ASCII.
pub(crate) fn levenshtein_distance_norm(na: &str, nb: &str) -> usize {
    if na.is_ascii() && nb.is_ascii() && na.len() <= MYERS_MAX_LEN && nb.len() <= MYERS_MAX_LEN {
        if na.is_empty() {
            return nb.len();
        }
        if nb.is_empty() {
            return na.len();
        }
        return levenshtein_myers_ascii(na.as_bytes(), nb.as_bytes());
    }
    let a: Vec<char> = na.chars().collect();
    let b: Vec<char> = nb.chars().collect();
    levenshtein_dp(&a, &b)
}

/// Raw Levenshtein edit distance between the normalized forms of `a` and `b`.
pub fn levenshtein_distance(a: &str, b: &str) -> usize {
    levenshtein_distance_norm(&normalize(a), &normalize(b))
}

/// Shared Levenshtein-similarity core over *already normalized* strings,
/// with the char counts and Myers eligibility supplied by the caller (the
/// string path computes them on the fly, the profile path reads its cache).
/// Keeping one core is what makes the two paths bit-identical by
/// construction.
pub(crate) fn levenshtein_sim_with(na: &str, nb: &str, max_len: usize, small_ascii: bool) -> f64 {
    if max_len == 0 {
        return 1.0;
    }
    let dist = if small_ascii {
        if na.is_empty() {
            nb.len()
        } else if nb.is_empty() {
            na.len()
        } else {
            levenshtein_myers_ascii(na.as_bytes(), nb.as_bytes())
        }
    } else {
        levenshtein_distance_norm(na, nb)
    };
    clamp_unit(1.0 - dist as f64 / max_len as f64)
}

/// Normalized Levenshtein similarity of two *already normalized* strings:
/// `1 − dist / max(|a|, |b|)`.
pub(crate) fn levenshtein_sim_norm(na: &str, nb: &str) -> f64 {
    let max_len = na.chars().count().max(nb.chars().count());
    let small_ascii = na.is_ascii()
        && nb.is_ascii()
        && na.len() <= MYERS_MAX_LEN
        && nb.len() <= MYERS_MAX_LEN;
    levenshtein_sim_with(na, nb, max_len, small_ascii)
}

/// Normalized Levenshtein similarity: `1 − dist / max(|a|, |b|)`.
///
/// The inputs are normalized exactly once (the seed implementation
/// re-normalized inside `levenshtein_distance` after normalizing here).
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    levenshtein_sim_norm(&normalize(a), &normalize(b))
}

// ---------------------------------------------------------------------------
// Jaro / Jaro-Winkler
// ---------------------------------------------------------------------------

/// Jaro similarity over pre-normalized char slices.
///
/// For `|b| ≤ 64` (virtually all attribute values) the used-marks live in a
/// `u64` bitmask and the match buffer on the stack — no heap allocation in
/// the per-pair hot path. Both branches compute the identical match count
/// and transposition count, so results are bit-identical.
pub(crate) fn jaro_chars(a: &[char], b: &[char]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let (m, transpositions) = if b.len() <= 64 {
        let mut used: u64 = 0;
        let mut matches_a = ['\0'; 64];
        let mut m = 0usize;
        for (i, ca) in a.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(b.len());
            for j in lo..hi {
                if used & (1 << j) == 0 && b[j] == *ca {
                    used |= 1 << j;
                    matches_a[m] = *ca;
                    m += 1;
                    break;
                }
            }
        }
        let mut mismatches = 0usize;
        let mut k = 0usize;
        for (j, cb) in b.iter().enumerate() {
            if used & (1 << j) != 0 {
                if matches_a[k] != *cb {
                    mismatches += 1;
                }
                k += 1;
            }
        }
        (m, mismatches / 2)
    } else {
        let mut b_used = vec![false; b.len()];
        let mut matches_a: Vec<char> = Vec::new();
        for (i, ca) in a.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(b.len());
            for j in lo..hi {
                if !b_used[j] && b[j] == *ca {
                    b_used[j] = true;
                    matches_a.push(*ca);
                    break;
                }
            }
        }
        let mismatches = b
            .iter()
            .zip(b_used.iter())
            .filter_map(|(c, used)| used.then_some(*c))
            .zip(matches_a.iter())
            .filter(|(x, y)| x != *y)
            .count();
        (matches_a.len(), mismatches / 2)
    };
    if m == 0 {
        return 0.0;
    }
    let m = m as f64;
    let t = transpositions as f64;
    clamp_unit((m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0)
}

/// Jaro similarity between the normalized forms of `a` and `b`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = normalize(a).chars().collect();
    let b: Vec<char> = normalize(b).chars().collect();
    jaro_chars(&a, &b)
}

/// Jaro-Winkler over pre-normalized char slices: standard prefix scale 0.1,
/// maximum common-prefix credit of 4 characters.
pub(crate) fn jaro_winkler_chars(a: &[char], b: &[char]) -> f64 {
    let base = jaro_chars(a, b);
    let prefix = a
        .iter()
        .zip(b.iter())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    clamp_unit(base + prefix * 0.1 * (1.0 - base))
}

/// Jaro-Winkler similarity with the standard prefix scale of 0.1 and a
/// maximum common-prefix credit of 4 characters.
///
/// Normalizes each input exactly once (the seed implementation normalized a
/// second time to compute the common prefix).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let a: Vec<char> = normalize(a).chars().collect();
    let b: Vec<char> = normalize(b).chars().collect();
    jaro_winkler_chars(&a, &b)
}

// ---------------------------------------------------------------------------
// Substring / alignment
// ---------------------------------------------------------------------------

/// Longest common substring similarity over pre-normalized char slices.
pub(crate) fn lcs_substring_chars(a: &[char], b: &[char]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut best = 0usize;
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for ca in a {
        for (j, cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb { prev[j] + 1 } else { 0 };
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    clamp_unit(best as f64 / a.len().min(b.len()) as f64)
}

/// Longest common substring similarity: `|lcs| / min(|a|, |b|)` on the
/// normalized forms.
pub fn lcs_substring_sim(a: &str, b: &str) -> f64 {
    let a: Vec<char> = normalize(a).chars().collect();
    let b: Vec<char> = normalize(b).chars().collect();
    lcs_substring_chars(&a, &b)
}

/// Smith-Waterman local alignment over pre-normalized char slices.
pub(crate) fn smith_waterman_chars(a: &[char], b: &[char]) -> f64 {
    const MATCH: i32 = 2;
    const MISMATCH: i32 = -1;
    const GAP: i32 = -1;
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut prev = vec![0i32; b.len() + 1];
    let mut cur = vec![0i32; b.len() + 1];
    let mut best = 0i32;
    for ca in a {
        for (j, cb) in b.iter().enumerate() {
            let diag = prev[j] + if ca == cb { MATCH } else { MISMATCH };
            let up = prev[j + 1] + GAP;
            let left = cur[j] + GAP;
            cur[j + 1] = diag.max(up).max(left).max(0);
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0;
    }
    let denom = (MATCH as f64) * a.len().min(b.len()) as f64;
    clamp_unit(best as f64 / denom)
}

/// Smith-Waterman local-alignment similarity with the classic record-linkage
/// scoring (match +2, mismatch −1, gap −1), normalized by the best possible
/// score of the shorter string: `best_local_score / (2 · min(|a|, |b|))`.
///
/// Rewards long shared substrings even when embedded in unrelated context —
/// useful for titles that wrap a common product name in vendor boilerplate.
pub fn smith_waterman(a: &str, b: &str) -> f64 {
    let a: Vec<char> = normalize(a).chars().collect();
    let b: Vec<char> = normalize(b).chars().collect();
    smith_waterman_chars(&a, &b)
}

// ---------------------------------------------------------------------------
// Monge-Elkan / exact
// ---------------------------------------------------------------------------

/// Monge-Elkan over pre-tokenized, pre-normalized token char slices.
pub(crate) fn monge_elkan_tokens(ta: &[Vec<char>], tb: &[Vec<char>]) -> f64 {
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let dir = |xs: &[Vec<char>], ys: &[Vec<char>]| -> f64 {
        xs.iter()
            .map(|x| {
                ys.iter()
                    .map(|y| jaro_winkler_chars(x, y))
                    .fold(0.0f64, f64::max)
            })
            .sum::<f64>()
            / xs.len() as f64
    };
    clamp_unit((dir(ta, tb) + dir(tb, ta)) / 2.0)
}

/// Token char vectors of an *already normalized* string, in token order.
pub(crate) fn token_char_vecs(norm: &str) -> Vec<Vec<char>> {
    norm_words(norm).map(|t| t.chars().collect()).collect()
}

/// Monge-Elkan similarity: for each token of `a`, the best Jaro-Winkler match
/// among the tokens of `b`, averaged; symmetrized by taking the mean of both
/// directions.
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let ta = token_char_vecs(&normalize(a));
    let tb = token_char_vecs(&normalize(b));
    monge_elkan_tokens(&ta, &tb)
}

/// Exact-match similarity on normalized forms: `1.0` if equal, else `0.0`.
pub fn exact(a: &str, b: &str) -> f64 {
    if normalize(a) == normalize(b) {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_identical_and_disjoint() {
        assert_eq!(jaccard_tokens("smart tv", "Smart TV"), 1.0);
        assert_eq!(jaccard_tokens("alpha beta", "gamma delta"), 0.0);
        assert_eq!(jaccard_tokens("", ""), 1.0);
        assert_eq!(jaccard_tokens("a", ""), 0.0);
    }

    #[test]
    fn jaccard_partial_overlap() {
        // {ultra, hd, tv} vs {ultra, hd, smart, tv}: 3/4
        let s = jaccard_tokens("ultra hd tv", "ultra hd smart tv");
        assert!((s - 0.75).abs() < 1e-12);
    }

    #[test]
    fn dice_and_overlap_and_cosine_relationships() {
        let a = "ultra hd tv";
        let b = "ultra hd smart tv";
        let j = jaccard_tokens(a, b);
        let d = dice_tokens(a, b);
        let o = overlap_tokens(a, b);
        let c = cosine_tokens(a, b);
        // dice >= jaccard, overlap >= dice, cosine between
        assert!(d >= j);
        assert!(o >= d);
        assert!(c >= j && c <= o);
        assert_eq!(overlap_tokens("tv", "ultra hd smart tv"), 1.0);
    }

    #[test]
    fn levenshtein_known_distances() {
        assert_eq!(levenshtein_distance("kitten", "sitting"), 3);
        assert_eq!(levenshtein_distance("", "abc"), 3);
        assert_eq!(levenshtein_distance("abc", "abc"), 0);
        assert_eq!(levenshtein_distance("flaw", "lawn"), 2);
    }

    #[test]
    fn myers_matches_dp_on_known_and_long_inputs() {
        let cases = [
            ("kitten", "sitting"),
            ("abc", "abc"),
            ("flaw", "lawn"),
            ("a", "abcdefghijklmnopqrstuvwxyz"),
            ("the quick brown fox jumps over the lazy dog every day", "the quick brown cat leaps over the lazy dog each day"),
        ];
        for (a, b) in cases {
            let dp = levenshtein_dp(
                &a.chars().collect::<Vec<_>>(),
                &b.chars().collect::<Vec<_>>(),
            );
            assert_eq!(levenshtein_myers_ascii(a.as_bytes(), b.as_bytes()), dp, "{a} vs {b}");
        }
        // 64-char pattern boundary
        let long_a = "a".repeat(64);
        let long_b = format!("{}b", "a".repeat(63));
        assert_eq!(
            levenshtein_myers_ascii(long_a.as_bytes(), long_b.as_bytes()),
            1
        );
        // bytes outside the compact [a-z0-9 ] alphabet take the 128-entry
        // fallback; distinct unusual bytes must not alias to "equal"
        assert_eq!(levenshtein_myers_ascii(b"A", b"B"), 1);
        assert_eq!(levenshtein_myers_ascii(b"a_b-c", b"a_b-c"), 0);
        assert_eq!(levenshtein_myers_ascii(b"x!", b"x?"), 1);
        // compact pattern vs text containing unusual bytes: plain mismatches
        assert_eq!(levenshtein_myers_ascii(b"abc", b"a_c"), 1);
    }

    #[test]
    fn non_ascii_and_oversized_inputs_use_dp_fallback() {
        // unicode: café vs cafe is one substitution
        assert_eq!(levenshtein_distance("café", "cafe"), 1);
        // > 64 chars forces the DP path
        let a = "x".repeat(80);
        let b = format!("{}y", "x".repeat(79));
        assert_eq!(levenshtein_distance(&a, &b), 1);
        // mixed: one side ascii, one side not
        assert_eq!(levenshtein_distance("über", "uber"), 1);
    }

    #[test]
    fn levenshtein_sim_bounds() {
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("abc", "abc"), 1.0);
        assert_eq!(levenshtein_sim("abc", "xyz"), 0.0);
        let s = levenshtein_sim("kitten", "sitting");
        assert!((s - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn jaro_known_values() {
        // Classic example: MARTHA vs MARHTA = 0.944...
        let s = jaro("MARTHA", "MARHTA");
        assert!((s - 0.944444).abs() < 1e-4, "got {s}");
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        // MARTHA vs MARHTA with 3-char prefix: 0.9611...
        let s = jaro_winkler("MARTHA", "MARHTA");
        assert!((s - 0.961111).abs() < 1e-4, "got {s}");
        // prefix boost never decreases the score
        assert!(jaro_winkler("samsung", "samsnug") >= jaro("samsung", "samsnug"));
    }

    #[test]
    fn lcs_substring_examples() {
        assert_eq!(lcs_substring_sim("abcdef", "abcdef"), 1.0);
        // "abc" in both; min length 3 -> 1.0
        assert_eq!(lcs_substring_sim("abc", "xxabcxx"), 1.0);
        assert_eq!(lcs_substring_sim("aaa", "bbb"), 0.0);
    }

    #[test]
    fn monge_elkan_token_reordering() {
        // Token reordering should barely matter.
        let s = monge_elkan("noise cancelling wireless", "wireless noise cancelling");
        assert!(s > 0.99, "got {s}");
        assert_eq!(monge_elkan("", ""), 1.0);
        assert_eq!(monge_elkan("a", ""), 0.0);
    }

    #[test]
    fn exact_match_normalizes() {
        assert_eq!(exact("Bose QC35", "bose qc35"), 1.0);
        assert_eq!(exact("Bose QC35", "Bose QC35 II"), 0.0);
    }

    #[test]
    fn smith_waterman_rewards_embedded_substrings() {
        // the full shorter string aligns inside the longer one
        assert_eq!(smith_waterman("eos 750d", "canon eos 750d camera kit"), 1.0);
        assert_eq!(smith_waterman("abc", "abc"), 1.0);
        assert_eq!(smith_waterman("", ""), 1.0);
        assert_eq!(smith_waterman("abc", ""), 0.0);
        // disjoint alphabets share nothing
        assert_eq!(smith_waterman("aaa", "zzz"), 0.0);
        // partial overlap lands strictly between
        let s = smith_waterman("playstation five", "playstation 5 console");
        assert!(s > 0.3 && s < 1.0, "got {s}");
    }

    #[test]
    fn smith_waterman_symmetric() {
        let pairs = [("canon eos", "eos canon x"), ("", "a"), ("ab", "ba")];
        for (a, b) in pairs {
            assert!((smith_waterman(a, b) - smith_waterman(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn qgram_jaccard_similar_strings() {
        let s = jaccard_qgrams("samsung", "samsnug", 2);
        assert!(s > 0.3 && s < 1.0);
        assert_eq!(jaccard_qgrams("samsung", "samsung", 2), 1.0);
    }

    #[test]
    fn all_functions_symmetric() {
        let pairs = [
            ("ultra hd smart tv 55", "ultra hd 55 inch smart tv"),
            ("bose qc35", "qc35 ii"),
            ("", "jbl"),
        ];
        for (a, b) in pairs {
            for f in [
                jaccard_tokens,
                dice_tokens,
                overlap_tokens,
                cosine_tokens,
                levenshtein_sim,
                jaro,
                jaro_winkler,
                lcs_substring_sim,
                monge_elkan,
                exact,
            ] {
                assert!(
                    (f(a, b) - f(b, a)).abs() < 1e-12,
                    "asymmetric on ({a:?},{b:?})"
                );
            }
        }
    }
}
