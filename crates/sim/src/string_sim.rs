//! String similarity functions.
//!
//! Every function returns a similarity in `[0, 1]`. Token-based coefficients
//! (Jaccard, Dice, overlap, cosine) operate on word token sets; q-gram
//! variants operate on character q-gram sets. Edit-based functions
//! (Levenshtein, Jaro, Jaro-Winkler) operate on the normalized character
//! sequence. Hybrid Monge-Elkan combines the two levels.

use crate::clamp_unit;
use crate::tokenize::{normalize, qgrams, sorted_intersection_len, token_set, words};

/// Jaccard coefficient over word token sets: `|A ∩ B| / |A ∪ B|`.
///
/// This is the function the paper illustrates in Fig. 2 (`jaccard(title)`).
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    let (ta, tb) = (words(a), words(b));
    let (sa, sb) = (token_set(&ta), token_set(&tb));
    set_jaccard(&sa, &sb)
}

/// Jaccard coefficient over character q-gram sets.
pub fn jaccard_qgrams(a: &str, b: &str, q: usize) -> f64 {
    let (ga, gb) = (qgrams(a, q, true), qgrams(b, q, true));
    let (sa, sb) = (token_set(&ga), token_set(&gb));
    set_jaccard(&sa, &sb)
}

/// Sørensen–Dice coefficient over word token sets: `2|A ∩ B| / (|A| + |B|)`.
pub fn dice_tokens(a: &str, b: &str) -> f64 {
    let (ta, tb) = (words(a), words(b));
    let (sa, sb) = (token_set(&ta), token_set(&tb));
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sorted_intersection_len(&sa, &sb) as f64;
    clamp_unit(2.0 * inter / (sa.len() + sb.len()) as f64)
}

/// Overlap coefficient over word token sets: `|A ∩ B| / min(|A|, |B|)`.
pub fn overlap_tokens(a: &str, b: &str) -> f64 {
    let (ta, tb) = (words(a), words(b));
    let (sa, sb) = (token_set(&ta), token_set(&tb));
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sorted_intersection_len(&sa, &sb) as f64;
    clamp_unit(inter / sa.len().min(sb.len()) as f64)
}

/// Cosine similarity over binary word token vectors:
/// `|A ∩ B| / sqrt(|A| · |B|)`.
pub fn cosine_tokens(a: &str, b: &str) -> f64 {
    let (ta, tb) = (words(a), words(b));
    let (sa, sb) = (token_set(&ta), token_set(&tb));
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sorted_intersection_len(&sa, &sb) as f64;
    clamp_unit(inter / ((sa.len() as f64) * (sb.len() as f64)).sqrt())
}

fn set_jaccard(sa: &[&str], sb: &[&str]) -> f64 {
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sorted_intersection_len(sa, sb);
    let union = sa.len() + sb.len() - inter;
    clamp_unit(inter as f64 / union as f64)
}

/// Raw Levenshtein edit distance between the normalized forms of `a` and `b`.
///
/// Uses the classic two-row dynamic program, O(|a|·|b|) time and O(min) space.
pub fn levenshtein_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = normalize(a).chars().collect();
    let b: Vec<char> = normalize(b).chars().collect();
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalized Levenshtein similarity: `1 − dist / max(|a|, |b|)`.
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let na = normalize(a);
    let nb = normalize(b);
    let max_len = na.chars().count().max(nb.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    clamp_unit(1.0 - levenshtein_distance(a, b) as f64 / max_len as f64)
}

/// Jaro similarity between the normalized forms of `a` and `b`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = normalize(a).chars().collect();
    let b: Vec<char> = normalize(b).chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                matches_a.push(*ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(b_used.iter())
        .filter_map(|(c, used)| used.then_some(*c))
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    let t = transpositions as f64;
    clamp_unit((m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0)
}

/// Jaro-Winkler similarity with the standard prefix scale of 0.1 and a
/// maximum common-prefix credit of 4 characters.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let base = jaro(a, b);
    let na: Vec<char> = normalize(a).chars().collect();
    let nb: Vec<char> = normalize(b).chars().collect();
    let prefix = na
        .iter()
        .zip(nb.iter())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    clamp_unit(base + prefix * 0.1 * (1.0 - base))
}

/// Longest common substring similarity: `|lcs| / min(|a|, |b|)` on the
/// normalized forms.
pub fn lcs_substring_sim(a: &str, b: &str) -> f64 {
    let a: Vec<char> = normalize(a).chars().collect();
    let b: Vec<char> = normalize(b).chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut best = 0usize;
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for ca in &a {
        for (j, cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb { prev[j] + 1 } else { 0 };
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    clamp_unit(best as f64 / a.len().min(b.len()) as f64)
}

/// Monge-Elkan similarity: for each token of `a`, the best Jaro-Winkler match
/// among the tokens of `b`, averaged; symmetrized by taking the mean of both
/// directions.
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let ta = words(a);
    let tb = words(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let dir = |xs: &[String], ys: &[String]| -> f64 {
        xs.iter()
            .map(|x| {
                ys.iter()
                    .map(|y| jaro_winkler(x, y))
                    .fold(0.0f64, f64::max)
            })
            .sum::<f64>()
            / xs.len() as f64
    };
    clamp_unit((dir(&ta, &tb) + dir(&tb, &ta)) / 2.0)
}

/// Exact-match similarity on normalized forms: `1.0` if equal, else `0.0`.
pub fn exact(a: &str, b: &str) -> f64 {
    if normalize(a) == normalize(b) {
        1.0
    } else {
        0.0
    }
}

/// Smith-Waterman local-alignment similarity with the classic record-linkage
/// scoring (match +2, mismatch −1, gap −1), normalized by the best possible
/// score of the shorter string: `best_local_score / (2 · min(|a|, |b|))`.
///
/// Rewards long shared substrings even when embedded in unrelated context —
/// useful for titles that wrap a common product name in vendor boilerplate.
pub fn smith_waterman(a: &str, b: &str) -> f64 {
    const MATCH: i32 = 2;
    const MISMATCH: i32 = -1;
    const GAP: i32 = -1;
    let a: Vec<char> = normalize(a).chars().collect();
    let b: Vec<char> = normalize(b).chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut prev = vec![0i32; b.len() + 1];
    let mut cur = vec![0i32; b.len() + 1];
    let mut best = 0i32;
    for ca in &a {
        for (j, cb) in b.iter().enumerate() {
            let diag = prev[j] + if ca == cb { MATCH } else { MISMATCH };
            let up = prev[j + 1] + GAP;
            let left = cur[j] + GAP;
            cur[j + 1] = diag.max(up).max(left).max(0);
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0;
    }
    let denom = (MATCH as f64) * a.len().min(b.len()) as f64;
    clamp_unit(best as f64 / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_identical_and_disjoint() {
        assert_eq!(jaccard_tokens("smart tv", "Smart TV"), 1.0);
        assert_eq!(jaccard_tokens("alpha beta", "gamma delta"), 0.0);
        assert_eq!(jaccard_tokens("", ""), 1.0);
        assert_eq!(jaccard_tokens("a", ""), 0.0);
    }

    #[test]
    fn jaccard_partial_overlap() {
        // {ultra, hd, tv} vs {ultra, hd, smart, tv}: 3/4
        let s = jaccard_tokens("ultra hd tv", "ultra hd smart tv");
        assert!((s - 0.75).abs() < 1e-12);
    }

    #[test]
    fn dice_and_overlap_and_cosine_relationships() {
        let a = "ultra hd tv";
        let b = "ultra hd smart tv";
        let j = jaccard_tokens(a, b);
        let d = dice_tokens(a, b);
        let o = overlap_tokens(a, b);
        let c = cosine_tokens(a, b);
        // dice >= jaccard, overlap >= dice, cosine between
        assert!(d >= j);
        assert!(o >= d);
        assert!(c >= j && c <= o);
        assert_eq!(overlap_tokens("tv", "ultra hd smart tv"), 1.0);
    }

    #[test]
    fn levenshtein_known_distances() {
        assert_eq!(levenshtein_distance("kitten", "sitting"), 3);
        assert_eq!(levenshtein_distance("", "abc"), 3);
        assert_eq!(levenshtein_distance("abc", "abc"), 0);
        assert_eq!(levenshtein_distance("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_sim_bounds() {
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("abc", "abc"), 1.0);
        assert_eq!(levenshtein_sim("abc", "xyz"), 0.0);
        let s = levenshtein_sim("kitten", "sitting");
        assert!((s - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn jaro_known_values() {
        // Classic example: MARTHA vs MARHTA = 0.944...
        let s = jaro("MARTHA", "MARHTA");
        assert!((s - 0.944444).abs() < 1e-4, "got {s}");
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        // MARTHA vs MARHTA with 3-char prefix: 0.9611...
        let s = jaro_winkler("MARTHA", "MARHTA");
        assert!((s - 0.961111).abs() < 1e-4, "got {s}");
        // prefix boost never decreases the score
        assert!(jaro_winkler("samsung", "samsnug") >= jaro("samsung", "samsnug"));
    }

    #[test]
    fn lcs_substring_examples() {
        assert_eq!(lcs_substring_sim("abcdef", "abcdef"), 1.0);
        // "abc" in both; min length 3 -> 1.0
        assert_eq!(lcs_substring_sim("abc", "xxabcxx"), 1.0);
        assert_eq!(lcs_substring_sim("aaa", "bbb"), 0.0);
    }

    #[test]
    fn monge_elkan_token_reordering() {
        // Token reordering should barely matter.
        let s = monge_elkan("noise cancelling wireless", "wireless noise cancelling");
        assert!(s > 0.99, "got {s}");
        assert_eq!(monge_elkan("", ""), 1.0);
        assert_eq!(monge_elkan("a", ""), 0.0);
    }

    #[test]
    fn exact_match_normalizes() {
        assert_eq!(exact("Bose QC35", "bose qc35"), 1.0);
        assert_eq!(exact("Bose QC35", "Bose QC35 II"), 0.0);
    }

    #[test]
    fn smith_waterman_rewards_embedded_substrings() {
        // the full shorter string aligns inside the longer one
        assert_eq!(smith_waterman("eos 750d", "canon eos 750d camera kit"), 1.0);
        assert_eq!(smith_waterman("abc", "abc"), 1.0);
        assert_eq!(smith_waterman("", ""), 1.0);
        assert_eq!(smith_waterman("abc", ""), 0.0);
        // disjoint alphabets share nothing
        assert_eq!(smith_waterman("aaa", "zzz"), 0.0);
        // partial overlap lands strictly between
        let s = smith_waterman("playstation five", "playstation 5 console");
        assert!(s > 0.3 && s < 1.0, "got {s}");
    }

    #[test]
    fn smith_waterman_symmetric() {
        let pairs = [("canon eos", "eos canon x"), ("", "a"), ("ab", "ba")];
        for (a, b) in pairs {
            assert!((smith_waterman(a, b) - smith_waterman(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn qgram_jaccard_similar_strings() {
        let s = jaccard_qgrams("samsung", "samsnug", 2);
        assert!(s > 0.3 && s < 1.0);
        assert_eq!(jaccard_qgrams("samsung", "samsung", 2), 1.0);
    }

    #[test]
    fn all_functions_symmetric() {
        let pairs = [
            ("ultra hd smart tv 55", "ultra hd 55 inch smart tv"),
            ("bose qc35", "qc35 ii"),
            ("", "jbl"),
        ];
        for (a, b) in pairs {
            for f in [
                jaccard_tokens,
                dice_tokens,
                overlap_tokens,
                cosine_tokens,
                levenshtein_sim,
                jaro,
                jaro_winkler,
                lcs_substring_sim,
                monge_elkan,
                exact,
            ] {
                assert!(
                    (f(a, b) - f(b, a)).abs() < 1e-12,
                    "asymmetric on ({a:?},{b:?})"
                );
            }
        }
    }
}
