//! Gaussian naive Bayes classifier.

use serde::{Deserialize, Serialize};

use crate::dataset::TrainingSet;

/// Variance floor preventing degenerate likelihoods on constant features.
const VAR_EPSILON: f64 = 1e-6;

/// A trained Gaussian naive Bayes classifier for binary match labels.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct GaussianNb {
    log_prior_pos: f64,
    log_prior_neg: f64,
    mean_pos: Vec<f64>,
    var_pos: Vec<f64>,
    mean_neg: Vec<f64>,
    var_neg: Vec<f64>,
}

impl GaussianNb {
    /// Fit per-class feature means/variances with Laplace-smoothed priors.
    pub fn fit(data: &TrainingSet) -> Self {
        let t = data.num_features();
        let (pos_n, neg_n) = data.class_counts();
        let n = data.len();
        // Laplace smoothing keeps priors finite with single-class data.
        let log_prior_pos = ((pos_n + 1) as f64 / (n + 2) as f64).ln();
        let log_prior_neg = ((neg_n + 1) as f64 / (n + 2) as f64).ln();

        let stats = |want: bool, count: usize| -> (Vec<f64>, Vec<f64>) {
            let mut mean = vec![0.0f64; t];
            let mut var = vec![0.0f64; t];
            if count == 0 {
                // uninformative wide Gaussian centred mid-interval
                return (vec![0.5; t], vec![1.0; t]);
            }
            for (row, &label) in data.x.iter_rows().zip(&data.y) {
                if label == want {
                    for (m, &x) in mean.iter_mut().zip(row) {
                        *m += x;
                    }
                }
            }
            mean.iter_mut().for_each(|m| *m /= count as f64);
            for (row, &label) in data.x.iter_rows().zip(&data.y) {
                if label == want {
                    for ((v, m), &x) in var.iter_mut().zip(&mean).zip(row) {
                        *v += (x - *m).powi(2);
                    }
                }
            }
            var.iter_mut().for_each(|v| *v = (*v / count as f64).max(VAR_EPSILON));
            (mean, var)
        };
        let (mean_pos, var_pos) = stats(true, pos_n);
        let (mean_neg, var_neg) = stats(false, neg_n);
        Self { log_prior_pos, log_prior_neg, mean_pos, var_pos, mean_neg, var_neg }
    }

    fn log_likelihood(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
        x.iter()
            .zip(mean.iter().zip(var))
            .map(|(&xi, (&m, &v))| {
                -0.5 * ((2.0 * std::f64::consts::PI * v).ln() + (xi - m).powi(2) / v)
            })
            .sum()
    }

    /// Posterior probability of the match class.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let lp = self.log_prior_pos + Self::log_likelihood(x, &self.mean_pos, &self.var_pos);
        let ln = self.log_prior_neg + Self::log_likelihood(x, &self.mean_neg, &self.var_neg);
        let max = lp.max(ln);
        let ep = (lp - max).exp();
        let en = (ln - max).exp();
        ep / (ep + en)
    }

    /// Hard prediction at the 0.5 threshold.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_blobs() -> TrainingSet {
        // matches near (0.9, 0.9), non-matches near (0.1, 0.1)
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let jitter = (i % 7) as f64 * 0.01;
            rows.push(vec![0.9 - jitter, 0.9 + jitter.min(0.05)]);
            labels.push(true);
            rows.push(vec![0.1 + jitter, 0.1 - jitter.min(0.05)]);
            labels.push(false);
        }
        TrainingSet::from_rows(&rows, &labels)
    }

    #[test]
    fn separates_gaussian_blobs() {
        let model = GaussianNb::fit(&gaussian_blobs());
        assert!(model.predict(&[0.85, 0.9]));
        assert!(!model.predict(&[0.15, 0.1]));
        assert!(model.predict_proba(&[0.9, 0.9]) > 0.95);
    }

    #[test]
    fn single_class_training_is_finite() {
        let data = TrainingSet::from_rows(&[vec![0.8], vec![0.9]], &[true, true]);
        let model = GaussianNb::fit(&data);
        let p = model.predict_proba(&[0.85]);
        assert!(p.is_finite());
        assert!(model.predict(&[0.85]));
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let data = TrainingSet::from_rows(
            &[vec![0.5, 0.9], vec![0.5, 0.1], vec![0.5, 0.8], vec![0.5, 0.2]],
            &[true, false, true, false],
        );
        let model = GaussianNb::fit(&data);
        let p = model.predict_proba(&[0.5, 0.9]);
        assert!(p.is_finite() && p > 0.5);
    }

    #[test]
    fn probabilities_bounded() {
        let model = GaussianNb::fit(&gaussian_blobs());
        for i in 0..=10 {
            let p = model.predict_proba(&[i as f64 / 10.0, 0.5]);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn priors_reflect_class_imbalance() {
        let rows: Vec<Vec<f64>> = (0..100).map(|_| vec![0.5]).collect();
        let labels: Vec<bool> = (0..100).map(|i| i < 10).collect();
        let model = GaussianNb::fit(&TrainingSet::from_rows(&rows, &labels));
        // identical likelihoods, so posterior follows the prior (10%)
        let p = model.predict_proba(&[0.5]);
        assert!(p < 0.2, "p = {p}");
    }
}
