//! Dense row-major feature matrices and labeled training sets.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64` features.
///
/// Rows are observations (similarity feature vectors `w`), columns are
/// features `f_1..f_t`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

/// Hand-rolled (not derived) so untrusted input — persisted repositories,
/// service request bodies — cannot smuggle in a matrix whose buffer
/// disagrees with its declared shape: every accessor slices on the
/// `data.len() == rows * cols` invariant the constructors enforce.
impl Deserialize for FeatureMatrix {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let data = Vec::<f64>::from_value(serde::map_get(v, "data")?)?;
        let rows = usize::from_value(serde::map_get(v, "rows")?)?;
        let cols = usize::from_value(serde::map_get(v, "cols")?)?;
        if rows.checked_mul(cols) != Some(data.len()) {
            return Err(serde::Error::msg(format!(
                "feature matrix shape mismatch: {rows} rows x {cols} cols \
                 needs {} values, found {}",
                rows.checked_mul(cols).map_or("overflow".into(), |n| n.to_string()),
                data.len()
            )));
        }
        Ok(Self { data, rows, cols })
    }
}

impl FeatureMatrix {
    /// Create an empty matrix with `cols` columns.
    pub fn new(cols: usize) -> Self {
        Self { data: Vec::new(), rows: 0, cols }
    }

    /// Build from a slice of equal-length rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut m = Self::new(cols);
        for r in rows {
            m.push_row(r);
        }
        m
    }

    /// Build from an already-flat row-major buffer without copying (the
    /// parallel featurizer fills rows in place and hands the buffer over).
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer length mismatch");
        Self { data, rows, cols }
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Value at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.cols + col]
    }

    /// Copy out column `col`.
    pub fn column(&self, col: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// Iterate over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Select a subset of rows into a new matrix.
    pub fn select(&self, indices: &[usize]) -> Self {
        let mut m = Self::new(self.cols);
        for &i in indices {
            m.push_row(self.row(i));
        }
        m
    }
}

/// Labeled training data: feature rows plus binary match labels.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrainingSet {
    /// Feature rows.
    pub x: FeatureMatrix,
    /// `true` = match, `false` = non-match.
    pub y: Vec<bool>,
}

/// Hand-rolled for the same reason as [`FeatureMatrix`]: a label vector
/// that disagrees with the row count must fail at decode time, not panic
/// in a training loop later.
impl Deserialize for TrainingSet {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let x = FeatureMatrix::from_value(serde::map_get(v, "x")?)?;
        let y = Vec::<bool>::from_value(serde::map_get(v, "y")?)?;
        if x.rows() != y.len() {
            return Err(serde::Error::msg(format!(
                "training set shape mismatch: {} feature rows vs {} labels",
                x.rows(),
                y.len()
            )));
        }
        Ok(Self { x, y })
    }
}

impl TrainingSet {
    /// Create an empty set with `cols` features.
    pub fn new(cols: usize) -> Self {
        Self { x: FeatureMatrix::new(cols), y: Vec::new() }
    }

    /// Build from rows and labels.
    ///
    /// # Panics
    /// Panics if lengths disagree.
    pub fn from_rows(rows: &[Vec<f64>], labels: &[bool]) -> Self {
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        Self { x: FeatureMatrix::from_rows(rows), y: labels.to_vec() }
    }

    /// Append one labeled row.
    pub fn push(&mut self, row: &[f64], label: bool) {
        self.x.push_row(row);
        self.y.push(label);
    }

    /// Append all rows of another set (must have the same width).
    pub fn extend(&mut self, other: &TrainingSet) {
        for (row, &label) in other.x.iter_rows().zip(&other.y) {
            self.push(row, label);
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when no observations are present.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.x.cols()
    }

    /// `(matches, non_matches)` counts.
    pub fn class_counts(&self) -> (usize, usize) {
        let pos = self.y.iter().filter(|&&l| l).count();
        (pos, self.y.len() - pos)
    }

    /// Fraction of positive (match) labels; 0 for empty sets.
    pub fn positive_rate(&self) -> f64 {
        if self.y.is_empty() {
            return 0.0;
        }
        self.y.iter().filter(|&&l| l).count() as f64 / self.y.len() as f64
    }

    /// Select a subset by row indices.
    pub fn select(&self, indices: &[usize]) -> Self {
        Self { x: self.x.select(indices), y: indices.iter().map(|&i| self.y[i]).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_round_trip() {
        let m = FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.column(0), vec![1.0, 3.0]);
    }

    #[test]
    fn matrix_select_subsets_rows() {
        let m = FeatureMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select(&[2, 0]);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn inconsistent_row_length_panics() {
        let mut m = FeatureMatrix::new(2);
        m.push_row(&[1.0]);
    }

    #[test]
    fn training_set_counts() {
        let ts = TrainingSet::from_rows(
            &[vec![0.9], vec![0.1], vec![0.8]],
            &[true, false, true],
        );
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.class_counts(), (2, 1));
        assert!((ts.positive_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn training_set_extend_and_select() {
        let mut a = TrainingSet::from_rows(&[vec![1.0]], &[true]);
        let b = TrainingSet::from_rows(&[vec![2.0], vec![3.0]], &[false, true]);
        a.extend(&b);
        assert_eq!(a.len(), 3);
        let s = a.select(&[1]);
        assert_eq!(s.x.row(0), &[2.0]);
        assert_eq!(s.y, vec![false]);
    }

    #[test]
    fn deserialize_rejects_shape_mismatches() {
        let m = FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        // the honest encoding round-trips
        assert_eq!(FeatureMatrix::from_value(&m.to_value()).unwrap(), m);
        // tampering with the declared shape fails at decode, not at access
        let tamper = |field: &str, val: serde::Value| {
            let serde::Value::Map(mut entries) = m.to_value() else { unreachable!() };
            for (k, v) in &mut entries {
                if k == field {
                    *v = val.clone();
                }
            }
            FeatureMatrix::from_value(&serde::Value::Map(entries))
        };
        assert!(tamper("rows", serde::Value::I64(3)).is_err());
        assert!(tamper("cols", serde::Value::I64(1)).is_err());
        assert!(tamper("rows", serde::Value::I64(i64::MAX)).is_err(), "mul overflow");

        let ts = TrainingSet::from_rows(&[vec![1.0], vec![2.0]], &[true, false]);
        assert_eq!(TrainingSet::from_value(&ts.to_value()).unwrap(), ts);
        let serde::Value::Map(mut entries) = ts.to_value() else { unreachable!() };
        for (k, v) in &mut entries {
            if k == "y" {
                *v = serde::Value::Seq(vec![serde::Value::Bool(true)]);
            }
        }
        assert!(TrainingSet::from_value(&serde::Value::Map(entries)).is_err());
    }

    #[test]
    fn iter_rows_matches_row_access() {
        let m = FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows, vec![m.row(0), m.row(1)]);
    }
}
