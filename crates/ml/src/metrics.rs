//! Classification metrics: confusion counts and precision/recall/F1.
//!
//! The paper evaluates linkage quality by micro-averaging "according to the
//! predicted matches across overall ER tasks" (§5.2): accumulate one
//! [`PairCounts`] per task and [`merge`](PairCounts::merge) them before
//! computing P/R/F1.

use serde::{Deserialize, Serialize};

/// Confusion counts for binary match classification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairCounts {
    /// Predicted match, is match.
    pub tp: u64,
    /// Predicted match, is non-match.
    pub fp: u64,
    /// Predicted non-match, is match.
    pub fn_: u64,
    /// Predicted non-match, is non-match.
    pub tn: u64,
}

impl PairCounts {
    /// Empty counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate one prediction.
    #[inline]
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Build counts from parallel prediction/label slices.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "prediction/label length mismatch");
        let mut c = Self::new();
        for (&p, &a) in predicted.iter().zip(actual) {
            c.record(p, a);
        }
        c
    }

    /// Micro-average merge: add another task's counts into this one.
    pub fn merge(&mut self, other: &PairCounts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }

    /// Total number of classified pairs.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Precision `tp / (tp + fp)`; 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 0 when there are no true matches.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over all pairs.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// Precision from prediction/label slices.
pub fn precision(predicted: &[bool], actual: &[bool]) -> f64 {
    PairCounts::from_predictions(predicted, actual).precision()
}

/// Recall from prediction/label slices.
pub fn recall(predicted: &[bool], actual: &[bool]) -> f64 {
    PairCounts::from_predictions(predicted, actual).recall()
}

/// F1 from prediction/label slices.
pub fn f1_score(predicted: &[bool], actual: &[bool]) -> f64 {
    PairCounts::from_predictions(predicted, actual).f1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_from_predictions() {
        let pred = [true, true, false, false, true];
        let act = [true, false, true, false, true];
        let c = PairCounts::from_predictions(&pred, &act);
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (2, 1, 1, 1));
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn known_prf_values() {
        let c = PairCounts { tp: 8, fp: 2, fn_: 4, tn: 86 };
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.recall() - 8.0 / 12.0).abs() < 1e-12);
        let f1 = 2.0 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0);
        assert!((c.f1() - f1).abs() < 1e-12);
        assert!((c.accuracy() - 0.94).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let empty = PairCounts::new();
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.recall(), 0.0);
        assert_eq!(empty.f1(), 0.0);
        assert_eq!(empty.accuracy(), 0.0);
        // all negative predictions, some positives exist
        let c = PairCounts { tp: 0, fp: 0, fn_: 5, tn: 5 };
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn merge_micro_averages() {
        let mut a = PairCounts { tp: 1, fp: 0, fn_: 1, tn: 0 };
        let b = PairCounts { tp: 9, fp: 1, fn_: 0, tn: 10 };
        a.merge(&b);
        assert_eq!(a.tp, 10);
        assert!((a.precision() - 10.0 / 11.0).abs() < 1e-12);
        // micro differs from averaging the per-task F1s
        assert!(a.f1() > 0.9);
    }

    #[test]
    fn perfect_and_inverted_predictions() {
        let act = [true, false, true];
        assert_eq!(f1_score(&act, &act), 1.0);
        let inv: Vec<bool> = act.iter().map(|&b| !b).collect();
        assert_eq!(f1_score(&inv, &act), 0.0);
        assert_eq!(precision(&act, &act), 1.0);
        assert_eq!(recall(&act, &act), 1.0);
    }
}
