//! Unified classifier interface and the serializable [`TrainedModel`] sum
//! type stored in the ER model repository.

use serde::{Deserialize, Serialize};

use crate::dataset::TrainingSet;
use crate::forest::{RandomForest, RandomForestConfig};
use crate::linear::{LogisticRegression, LogisticRegressionConfig};
use crate::mlp::{Mlp, MlpConfig};
use crate::naive_bayes::GaussianNb;

/// Common prediction interface implemented by every classifier.
pub trait Classifier: Send + Sync {
    /// Probability that feature vector `x` represents a match.
    fn predict_proba(&self, x: &[f64]) -> f64;

    /// Hard prediction at the 0.5 threshold.
    fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Batch hard predictions.
    fn predict_batch(&self, rows: &crate::dataset::FeatureMatrix) -> Vec<bool> {
        rows.iter_rows().map(|r| self.predict(r)).collect()
    }
}

impl Classifier for RandomForest {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        RandomForest::predict_proba(self, x)
    }
}

impl Classifier for LogisticRegression {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        LogisticRegression::predict_proba(self, x)
    }
}

impl Classifier for GaussianNb {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        GaussianNb::predict_proba(self, x)
    }
}

impl Classifier for Mlp {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        Mlp::predict_proba(self, x)
    }
}

/// A fixed-threshold classifier on the mean feature value — the trivial
/// baseline and the calibrated head of the Sudowoodo stand-in.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ThresholdClassifier {
    /// Mean-feature threshold above which a pair is declared a match.
    pub threshold: f64,
}

impl ThresholdClassifier {
    /// Create with a fixed threshold.
    pub fn new(threshold: f64) -> Self {
        Self { threshold }
    }

    /// Pick the threshold in `(0, 1)` that maximizes F1 on labeled data
    /// (grid of 99 candidate cut points).
    pub fn calibrate(data: &TrainingSet) -> Self {
        let scores: Vec<f64> = data
            .x
            .iter_rows()
            .map(|r| r.iter().sum::<f64>() / r.len().max(1) as f64)
            .collect();
        let mut best = (0.5f64, -1.0f64);
        for step in 1..100 {
            let t = step as f64 / 100.0;
            let preds: Vec<bool> = scores.iter().map(|&s| s >= t).collect();
            let f1 = crate::metrics::f1_score(&preds, &data.y);
            if f1 > best.1 {
                best = (t, f1);
            }
        }
        Self { threshold: best.0 }
    }
}

impl Classifier for ThresholdClassifier {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        let mean = x.iter().sum::<f64>() / x.len().max(1) as f64;
        // linear ramp mapping the threshold to probability 0.5
        (0.5 + (mean - self.threshold)).clamp(0.0, 1.0)
    }
}

/// Training configuration for a repository model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ModelConfig {
    /// Random forest (the pipeline default).
    RandomForest(RandomForestConfig),
    /// Logistic regression.
    LogisticRegression(LogisticRegressionConfig),
    /// Gaussian naive Bayes.
    GaussianNb,
    /// One-hidden-layer MLP.
    Mlp(MlpConfig),
    /// Mean-feature threshold, calibrated on the training data.
    Threshold,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self::RandomForest(RandomForestConfig::default())
    }
}

/// A trained, serializable classifier — the artifact the model repository
/// stores per cluster.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum TrainedModel {
    /// Random forest.
    Forest(RandomForest),
    /// Logistic regression.
    LogReg(LogisticRegression),
    /// Gaussian naive Bayes.
    Gnb(GaussianNb),
    /// Multi-layer perceptron.
    Mlp(Mlp),
    /// Mean-feature threshold.
    Threshold(ThresholdClassifier),
}

impl TrainedModel {
    /// Train a model of the configured kind.
    pub fn train(config: &ModelConfig, data: &TrainingSet) -> Self {
        match config {
            ModelConfig::RandomForest(c) => Self::Forest(RandomForest::fit(data, c)),
            ModelConfig::LogisticRegression(c) => Self::LogReg(LogisticRegression::fit(data, c)),
            ModelConfig::GaussianNb => Self::Gnb(GaussianNb::fit(data)),
            ModelConfig::Mlp(c) => Self::Mlp(Mlp::fit(data, c)),
            ModelConfig::Threshold => Self::Threshold(ThresholdClassifier::calibrate(data)),
        }
    }

    /// Short identifier of the model family.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Forest(_) => "random_forest",
            Self::LogReg(_) => "logistic_regression",
            Self::Gnb(_) => "gaussian_nb",
            Self::Mlp(_) => "mlp",
            Self::Threshold(_) => "threshold",
        }
    }
}

impl Classifier for TrainedModel {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        match self {
            Self::Forest(m) => m.predict_proba(x),
            Self::LogReg(m) => m.predict_proba(x),
            Self::Gnb(m) => m.predict_proba(x),
            Self::Mlp(m) => m.predict_proba(x),
            Self::Threshold(m) => m.predict_proba(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> TrainingSet {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 60.0, 0.5]).collect();
        let labels: Vec<bool> = (0..60).map(|i| i >= 30).collect();
        TrainingSet::from_rows(&rows, &labels)
    }

    #[test]
    fn every_model_kind_trains_and_predicts() {
        let data = separable();
        let configs = [
            ModelConfig::RandomForest(RandomForestConfig { n_trees: 8, ..Default::default() }),
            ModelConfig::LogisticRegression(LogisticRegressionConfig::default()),
            ModelConfig::GaussianNb,
            ModelConfig::Mlp(MlpConfig { epochs: 120, ..Default::default() }),
            ModelConfig::Threshold,
        ];
        for cfg in configs {
            let model = TrainedModel::train(&cfg, &data);
            assert!(model.predict(&[0.95, 0.5]), "{} failed high", model.kind());
            assert!(!model.predict(&[0.02, 0.5]), "{} failed low", model.kind());
            let p = model.predict_proba(&[0.5, 0.5]);
            assert!((0.0..=1.0).contains(&p), "{}", model.kind());
        }
    }

    #[test]
    fn threshold_calibration_finds_boundary() {
        let data = separable();
        let t = ThresholdClassifier::calibrate(&data);
        // mean feature = (v + 0.5)/2; boundary at v=0.5 => mean 0.5
        assert!((t.threshold - 0.5).abs() < 0.1, "threshold = {}", t.threshold);
    }

    #[test]
    fn predict_batch_matches_single() {
        let data = separable();
        let model = TrainedModel::train(&ModelConfig::default(), &data);
        let batch = model.predict_batch(&data.x);
        for (i, row) in data.x.iter_rows().enumerate() {
            assert_eq!(batch[i], model.predict(row));
        }
    }

    #[test]
    fn kind_names_are_stable() {
        let data = separable();
        assert_eq!(TrainedModel::train(&ModelConfig::GaussianNb, &data).kind(), "gaussian_nb");
        assert_eq!(TrainedModel::train(&ModelConfig::Threshold, &data).kind(), "threshold");
    }
}
