//! One-hidden-layer multi-layer perceptron (binary classifier).
//!
//! The backbone of the neural baselines in `morer-baselines` (the Ditto /
//! Unicorn stand-ins train this on record-pair embeddings). Deliberately
//! minimal: ReLU hidden layer, sigmoid output, mini-batch SGD with momentum,
//! binary cross-entropy loss.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::TrainingSet;

/// Hyperparameters for [`Mlp::fit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Number of epochs over the shuffled training data.
    pub epochs: usize,
    /// SGD step size.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Momentum coefficient.
    pub momentum: f64,
    /// L2 penalty.
    pub l2: f64,
    /// RNG seed (weight init + shuffling).
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: 16,
            epochs: 60,
            learning_rate: 0.1,
            batch_size: 32,
            momentum: 0.9,
            l2: 1e-5,
            seed: 42,
        }
    }
}

/// A trained one-hidden-layer MLP.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Mlp {
    input: usize,
    hidden: usize,
    w1: Vec<f64>, // hidden x input, row-major
    b1: Vec<f64>,
    w2: Vec<f64>, // hidden
    b2: f64,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Mlp {
    /// Train with mini-batch SGD + momentum.
    pub fn fit(data: &TrainingSet, config: &MlpConfig) -> Self {
        let input = data.num_features();
        let hidden = config.hidden.max(1);
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let scale1 = (6.0 / (input + hidden) as f64).sqrt();
        let scale2 = (6.0 / (hidden + 1) as f64).sqrt();
        let mut model = Self {
            input,
            hidden,
            w1: (0..hidden * input).map(|_| rng.gen_range(-scale1..=scale1)).collect(),
            b1: vec![0.0; hidden],
            w2: (0..hidden).map(|_| rng.gen_range(-scale2..=scale2)).collect(),
            b2: 0.0,
        };
        let n = data.len();
        if n == 0 {
            model.b2 = -2.0; // predict non-match
            return model;
        }
        // momentum buffers
        let mut vw1 = vec![0.0f64; hidden * input];
        let mut vb1 = vec![0.0f64; hidden];
        let mut vw2 = vec![0.0f64; hidden];
        let mut vb2 = 0.0f64;
        // gradient accumulators
        let mut gw1 = vec![0.0f64; hidden * input];
        let mut gb1 = vec![0.0f64; hidden];
        let mut gw2 = vec![0.0f64; hidden];
        let mut order: Vec<usize> = (0..n).collect();
        let mut h = vec![0.0f64; hidden];

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(config.batch_size.max(1)) {
                gw1.iter_mut().for_each(|g| *g = 0.0);
                gb1.iter_mut().for_each(|g| *g = 0.0);
                gw2.iter_mut().for_each(|g| *g = 0.0);
                let mut gb2 = 0.0f64;
                for &i in batch {
                    let x = data.x.row(i);
                    let y = f64::from(data.y[i] as u8);
                    // forward
                    for j in 0..hidden {
                        let z: f64 = model.b1[j]
                            + x.iter()
                                .zip(&model.w1[j * input..(j + 1) * input])
                                .map(|(xi, w)| xi * w)
                                .sum::<f64>();
                        h[j] = z.max(0.0); // ReLU
                    }
                    let out = sigmoid(
                        model.b2 + h.iter().zip(&model.w2).map(|(hi, w)| hi * w).sum::<f64>(),
                    );
                    // backward (BCE + sigmoid: delta = p − y)
                    let delta = out - y;
                    for j in 0..hidden {
                        gw2[j] += delta * h[j];
                        if h[j] > 0.0 {
                            let dh = delta * model.w2[j];
                            gb1[j] += dh;
                            for (g, &xi) in
                                gw1[j * input..(j + 1) * input].iter_mut().zip(x)
                            {
                                *g += dh * xi;
                            }
                        }
                    }
                    gb2 += delta;
                }
                let scale = config.learning_rate / batch.len() as f64;
                let step = |v: &mut f64, g: f64, w: &mut f64| {
                    *v = config.momentum * *v - scale * (g + config.l2 * *w);
                    *w += *v;
                };
                for idx in 0..hidden * input {
                    step(&mut vw1[idx], gw1[idx], &mut model.w1[idx]);
                }
                for j in 0..hidden {
                    step(&mut vb1[j], gb1[j], &mut model.b1[j]);
                    step(&mut vw2[j], gw2[j], &mut model.w2[j]);
                }
                step(&mut vb2, gb2, &mut model.b2);
            }
        }
        model
    }

    /// Predicted probability that `x` is a match.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let mut z_out = self.b2;
        for j in 0..self.hidden {
            let z: f64 = self.b1[j]
                + x.iter()
                    .zip(&self.w1[j * self.input..(j + 1) * self.input])
                    .map(|(xi, w)| xi * w)
                    .sum::<f64>();
            z_out += z.max(0.0) * self.w2[j];
        }
        sigmoid(z_out)
    }

    /// Hard prediction at the 0.5 threshold.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_xor() {
        // XOR — not linearly separable; exercises the hidden layer
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..25 {
            for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                rows.push(vec![a, b]);
                labels.push((a > 0.5) != (b > 0.5));
            }
        }
        let data = TrainingSet::from_rows(&rows, &labels);
        let cfg = MlpConfig { epochs: 300, hidden: 8, ..Default::default() };
        let model = Mlp::fit(&data, &cfg);
        for (r, &l) in rows.iter().zip(&labels) {
            assert_eq!(model.predict(r), l, "row {r:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = TrainingSet::from_rows(
            &[vec![0.1, 0.2], vec![0.9, 0.8], vec![0.2, 0.1], vec![0.8, 0.9]],
            &[false, true, false, true],
        );
        let cfg = MlpConfig::default();
        assert_eq!(Mlp::fit(&data, &cfg), Mlp::fit(&data, &cfg));
    }

    #[test]
    fn empty_training_predicts_non_match() {
        let model = Mlp::fit(&TrainingSet::new(4), &MlpConfig::default());
        assert!(!model.predict(&[0.9, 0.9, 0.9, 0.9]));
    }

    #[test]
    fn probabilities_bounded() {
        let data = TrainingSet::from_rows(
            &[vec![0.0], vec![1.0], vec![0.1], vec![0.9]],
            &[false, true, false, true],
        );
        let model = Mlp::fit(&data, &MlpConfig::default());
        for i in 0..=10 {
            let p = model.predict_proba(&[i as f64 / 10.0]);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn linear_boundary_still_learned() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 60.0]).collect();
        let labels: Vec<bool> = (0..60).map(|i| i >= 30).collect();
        let data = TrainingSet::from_rows(&rows, &labels);
        let model = Mlp::fit(&data, &MlpConfig { epochs: 150, ..Default::default() });
        let correct = rows
            .iter()
            .zip(&labels)
            .filter(|(r, &l)| model.predict(r) == l)
            .count();
        assert!(correct >= 55, "correct = {correct}/60");
    }
}
