//! Logistic regression via full-batch gradient descent with L2
//! regularization and optional feature standardization.

use serde::{Deserialize, Serialize};

use crate::dataset::TrainingSet;

/// Hyperparameters for [`LogisticRegression::fit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegressionConfig {
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// L2 penalty strength.
    pub l2: f64,
    /// Standardize features to zero mean / unit variance before training
    /// (the scaler is stored in the model). Essential for small-magnitude
    /// feature spaces such as embedding interactions.
    pub standardize: bool,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        Self { learning_rate: 0.5, epochs: 300, l2: 1e-4, standardize: true }
    }
}

/// A trained logistic-regression classifier (with its feature scaler).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    /// Per-feature means subtracted before scoring (empty = no scaling).
    feature_means: Vec<f64>,
    /// Per-feature inverse stddevs applied before scoring (empty = none).
    feature_inv_stds: Vec<f64>,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Train with deterministic full-batch gradient descent (zero-initialized
    /// weights, so no RNG is needed).
    pub fn fit(data: &TrainingSet, config: &LogisticRegressionConfig) -> Self {
        let t = data.num_features();
        let n = data.len();
        let mut model = Self {
            weights: vec![0.0; t],
            bias: 0.0,
            feature_means: Vec::new(),
            feature_inv_stds: Vec::new(),
        };
        if n == 0 {
            model.bias = -1.0; // predict non-match
            return model;
        }
        if config.standardize {
            let mut means = vec![0.0f64; t];
            for row in data.x.iter_rows() {
                for (m, &x) in means.iter_mut().zip(row) {
                    *m += x;
                }
            }
            means.iter_mut().for_each(|m| *m /= n as f64);
            let mut vars = vec![0.0f64; t];
            for row in data.x.iter_rows() {
                for ((v, m), &x) in vars.iter_mut().zip(&means).zip(row) {
                    *v += (x - *m).powi(2);
                }
            }
            let inv_stds: Vec<f64> = vars
                .iter()
                .map(|&v| {
                    let std = (v / n as f64).sqrt();
                    if std > 1e-12 {
                        1.0 / std
                    } else {
                        0.0 // constant feature: contributes nothing
                    }
                })
                .collect();
            model.feature_means = means;
            model.feature_inv_stds = inv_stds;
        }

        let inv_n = 1.0 / n as f64;
        let mut grad = vec![0.0f64; t];
        let mut scaled = vec![0.0f64; t];
        for _ in 0..config.epochs {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut grad_b = 0.0f64;
            for (row, &label) in data.x.iter_rows().zip(&data.y) {
                model.scale_into(row, &mut scaled);
                let z = model.bias
                    + scaled.iter().zip(&model.weights).map(|(x, w)| x * w).sum::<f64>();
                let err = sigmoid(z) - f64::from(label as u8);
                for (g, &x) in grad.iter_mut().zip(&scaled) {
                    *g += err * x;
                }
                grad_b += err;
            }
            for (w, g) in model.weights.iter_mut().zip(&grad) {
                *w -= config.learning_rate * (g * inv_n + config.l2 * *w);
            }
            model.bias -= config.learning_rate * grad_b * inv_n;
        }
        model
    }

    #[inline]
    fn scale_into(&self, row: &[f64], out: &mut [f64]) {
        if self.feature_means.is_empty() {
            out.copy_from_slice(row);
        } else {
            for (o, ((&x, &m), &s)) in out
                .iter_mut()
                .zip(row.iter().zip(&self.feature_means).zip(&self.feature_inv_stds))
            {
                *o = (x - m) * s;
            }
        }
    }

    /// Predicted probability that `x` is a match.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let z = if self.feature_means.is_empty() {
            self.bias + x.iter().zip(&self.weights).map(|(xi, w)| xi * w).sum::<f64>()
        } else {
            self.bias
                + x.iter()
                    .zip(self.feature_means.iter().zip(&self.feature_inv_stds))
                    .zip(&self.weights)
                    .map(|((&xi, (&m, &s)), w)| (xi - m) * s * w)
                    .sum::<f64>()
        };
        sigmoid(z)
    }

    /// Hard prediction at the 0.5 threshold.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Learned feature weights (in the scaled space when standardizing).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Learned intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> TrainingSet {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            let v = i as f64 / 50.0;
            rows.push(vec![v, 1.0 - v]);
            labels.push(v > 0.5);
        }
        TrainingSet::from_rows(&rows, &labels)
    }

    #[test]
    fn learns_linearly_separable_data() {
        let data = separable();
        let model = LogisticRegression::fit(&data, &LogisticRegressionConfig::default());
        let correct = data
            .x
            .iter_rows()
            .zip(&data.y)
            .filter(|(r, &l)| model.predict(r) == l)
            .count();
        assert!(correct >= 48, "correct = {correct}/50");
        // positive weight on the informative feature
        assert!(model.weights()[0] > 0.0);
        assert!(model.weights()[1] < 0.0);
    }

    #[test]
    fn learns_tiny_magnitude_features() {
        // features three orders of magnitude smaller — standardization must
        // rescue the optimizer (this is the embedding-interaction regime)
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            let v = i as f64 / 80.0 * 1e-3;
            rows.push(vec![v, 5e-4 - v * 0.5]);
            labels.push(i >= 40);
        }
        let data = TrainingSet::from_rows(&rows, &labels);
        let model = LogisticRegression::fit(&data, &LogisticRegressionConfig::default());
        let correct = rows
            .iter()
            .zip(&labels)
            .filter(|(r, &l)| model.predict(r) == l)
            .count();
        assert!(correct >= 75, "correct = {correct}/80");
    }

    #[test]
    fn unstandardized_mode_still_works_on_unit_features() {
        let data = separable();
        let cfg = LogisticRegressionConfig { standardize: false, ..Default::default() };
        let model = LogisticRegression::fit(&data, &cfg);
        let correct = data
            .x
            .iter_rows()
            .zip(&data.y)
            .filter(|(r, &l)| model.predict(r) == l)
            .count();
        assert!(correct >= 45, "correct = {correct}/50");
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_training_predicts_non_match() {
        let model = LogisticRegression::fit(&TrainingSet::new(2), &LogisticRegressionConfig::default());
        assert!(!model.predict(&[1.0, 1.0]));
    }

    #[test]
    fn constant_features_do_not_blow_up() {
        let data = TrainingSet::from_rows(
            &[vec![0.5, 0.1], vec![0.5, 0.9], vec![0.5, 0.2], vec![0.5, 0.8]],
            &[false, true, false, true],
        );
        let model = LogisticRegression::fit(&data, &LogisticRegressionConfig::default());
        let p = model.predict_proba(&[0.5, 0.9]);
        assert!(p.is_finite());
        assert!(model.predict(&[0.5, 0.9]));
        assert!(!model.predict(&[0.5, 0.1]));
    }

    #[test]
    fn training_is_deterministic() {
        let data = separable();
        let cfg = LogisticRegressionConfig::default();
        assert_eq!(LogisticRegression::fit(&data, &cfg), LogisticRegression::fit(&data, &cfg));
    }

    #[test]
    fn l2_shrinks_weights() {
        let data = separable();
        let small = LogisticRegression::fit(
            &data,
            &LogisticRegressionConfig { l2: 0.0, ..Default::default() },
        );
        let large = LogisticRegression::fit(
            &data,
            &LogisticRegressionConfig { l2: 0.5, ..Default::default() },
        );
        let norm = |m: &LogisticRegression| m.weights().iter().map(|w| w * w).sum::<f64>();
        assert!(norm(&large) < norm(&small));
    }

    #[test]
    fn probabilities_bounded() {
        let data = separable();
        let model = LogisticRegression::fit(&data, &LogisticRegressionConfig::default());
        for i in 0..=10 {
            let p = model.predict_proba(&[i as f64 / 10.0, 0.5]);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
