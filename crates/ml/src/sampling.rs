//! Seeded sampling utilities: train/test splits, bootstrap resampling,
//! stratified selection and k-fold cross-validation splits.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::dataset::TrainingSet;

/// Shuffle `0..n` with the given seed.
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    idx
}

/// Split a training set into `(train, test)` with `train_fraction` of the
/// rows (seeded shuffle first).
pub fn train_test_split(data: &TrainingSet, train_fraction: f64, seed: u64) -> (TrainingSet, TrainingSet) {
    let idx = shuffled_indices(data.len(), seed);
    let cut = ((data.len() as f64) * train_fraction.clamp(0.0, 1.0)).round() as usize;
    (data.select(&idx[..cut]), data.select(&idx[cut..]))
}

/// Bootstrap resample: `n` draws with replacement from `0..n`.
pub fn bootstrap_indices(n: usize, rng: &mut SmallRng) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

/// Bootstrap resample of a training set (used by the Bootstrap AL committee).
pub fn bootstrap_sample(data: &TrainingSet, rng: &mut SmallRng) -> TrainingSet {
    if data.is_empty() {
        return TrainingSet::new(data.num_features());
    }
    data.select(&bootstrap_indices(data.len(), rng))
}

/// Stratified sample of up to `n` indices keeping the positive/negative ratio
/// of `labels` (at least one of each class when available and `n >= 2`).
pub fn stratified_indices(labels: &[bool], n: usize, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
    let mut neg: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i]).collect();
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let n = n.min(labels.len());
    if n == 0 {
        return Vec::new();
    }
    let mut take_pos = ((pos.len() as f64 / labels.len() as f64) * n as f64).round() as usize;
    take_pos = take_pos.min(pos.len()).min(n);
    if n >= 2 {
        if take_pos == 0 && !pos.is_empty() {
            take_pos = 1;
        }
        if take_pos == n && !neg.is_empty() {
            take_pos = n - 1;
        }
    }
    let take_neg = (n - take_pos).min(neg.len());
    let mut out: Vec<usize> = pos[..take_pos].to_vec();
    out.extend_from_slice(&neg[..take_neg]);
    // top up if one class ran short
    if out.len() < n {
        let missing = n - out.len();
        let extra: Vec<usize> = pos[take_pos..]
            .iter()
            .chain(neg[take_neg..].iter())
            .take(missing)
            .copied()
            .collect();
        out.extend(extra);
    }
    out.sort_unstable();
    out
}

/// K-fold index splits: returns `k` (train, validation) index pairs.
pub fn k_fold_indices(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    let idx = shuffled_indices(n, seed);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let lo = n * f / k;
        let hi = n * (f + 1) / k;
        let val: Vec<usize> = idx[lo..hi].to_vec();
        let train: Vec<usize> = idx[..lo].iter().chain(idx[hi..].iter()).copied().collect();
        folds.push((train, val));
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set(n: usize) -> TrainingSet {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        TrainingSet::from_rows(&rows, &labels)
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let data = sample_set(100);
        let (train, test) = train_test_split(&data, 0.7, 7);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        let train_vals: std::collections::HashSet<u64> =
            train.x.iter_rows().map(|r| r[0] as u64).collect();
        for r in test.x.iter_rows() {
            assert!(!train_vals.contains(&(r[0] as u64)));
        }
    }

    #[test]
    fn split_deterministic() {
        let data = sample_set(50);
        let (a, _) = train_test_split(&data, 0.5, 9);
        let (b, _) = train_test_split(&data, 0.5, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn bootstrap_has_right_size_and_replacement() {
        let mut rng = SmallRng::seed_from_u64(3);
        let idx = bootstrap_indices(200, &mut rng);
        assert_eq!(idx.len(), 200);
        let distinct: std::collections::HashSet<_> = idx.iter().collect();
        // with replacement, ~63% distinct expected; certainly < 100%
        assert!(distinct.len() < 200);
    }

    #[test]
    fn bootstrap_empty_set() {
        let data = TrainingSet::new(2);
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(bootstrap_sample(&data, &mut rng).is_empty());
    }

    #[test]
    fn stratified_keeps_both_classes() {
        let labels: Vec<bool> = (0..100).map(|i| i < 5).collect(); // 5% positive
        let idx = stratified_indices(&labels, 10, 1);
        assert_eq!(idx.len(), 10);
        let pos = idx.iter().filter(|&&i| labels[i]).count();
        assert!(pos >= 1, "stratified sample lost the minority class");
        assert!(pos <= 2);
    }

    #[test]
    fn stratified_handles_single_class() {
        let labels = vec![false; 20];
        let idx = stratified_indices(&labels, 5, 1);
        assert_eq!(idx.len(), 5);
        let labels = vec![true; 3];
        let idx = stratified_indices(&labels, 5, 1);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn k_fold_covers_everything_once() {
        let folds = k_fold_indices(25, 5, 11);
        assert_eq!(folds.len(), 5);
        let mut seen = [0usize; 25];
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 25);
            for &i in val {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }
}
