//! Random forest: bagged CART trees with feature subsampling.
//!
//! This is the default classifier of the reproduction — the paper's AL
//! methods (Bootstrap, Almser) and its supervised variant all train forests
//! on similarity feature vectors.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::dataset::TrainingSet;
use crate::sampling::bootstrap_sample;
use crate::tree::{DecisionTree, DecisionTreeConfig};

/// Hyperparameters for [`RandomForest::fit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree maximum depth.
    pub max_depth: usize,
    /// Per-tree minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features per split; `None` = floor(sqrt(t)) (scikit-learn default).
    pub max_features: Option<usize>,
    /// Master seed; tree `i` trains with seed `splitmix(seed, i)`.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self { n_trees: 32, max_depth: 12, min_samples_leaf: 1, max_features: None, seed: 42 }
    }
}

/// A trained random forest. Probability = mean of tree leaf probabilities.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

/// SplitMix64 — derives independent per-tree seeds from a master seed.
#[inline]
pub(crate) fn splitmix(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RandomForest {
    /// Train `n_trees` trees in parallel, each on a bootstrap resample with
    /// feature subsampling.
    pub fn fit(data: &TrainingSet, config: &RandomForestConfig) -> Self {
        let max_features = config
            .max_features
            .unwrap_or_else(|| (data.num_features() as f64).sqrt().floor().max(1.0) as usize);
        let tree_config = DecisionTreeConfig {
            max_depth: config.max_depth,
            min_samples_split: 2,
            min_samples_leaf: config.min_samples_leaf,
            max_features: Some(max_features.min(data.num_features().max(1))),
        };
        let trees: Vec<DecisionTree> = (0..config.n_trees.max(1))
            .into_par_iter()
            .map(|i| {
                let mut rng = SmallRng::seed_from_u64(splitmix(config.seed, i as u64));
                let sample = bootstrap_sample(data, &mut rng);
                DecisionTree::fit(&sample, &tree_config, &mut rng)
            })
            .collect();
        Self { trees }
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Mean predicted match probability across trees.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.predict_proba(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Hard prediction at the 0.5 threshold.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Fraction of trees voting "match" — the committee vote used by
    /// Bootstrap AL's uncertainty (Eq. 10 with each tree as one classifier).
    pub fn vote_fraction(&self, x: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().filter(|t| t.predict(x)).count() as f64 / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Noisy two-cluster data: match iff x0 + x1 > 1 with 10% label noise.
    fn noisy_data(n: usize, seed: u64) -> TrainingSet {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x0: f64 = rng.gen();
            let x1: f64 = rng.gen();
            let mut label = x0 + x1 > 1.0;
            if rng.gen::<f64>() < 0.1 {
                label = !label;
            }
            rows.push(vec![x0, x1]);
            labels.push(label);
        }
        TrainingSet::from_rows(&rows, &labels)
    }

    #[test]
    fn forest_learns_noisy_boundary() {
        let train = noisy_data(400, 1);
        let forest = RandomForest::fit(&train, &RandomForestConfig::default());
        let test = noisy_data(200, 2);
        let correct = test
            .x
            .iter_rows()
            .zip(&test.y)
            .filter(|(r, &_l)| {
                // compare against the *true* boundary, ignoring injected noise
                forest.predict(r) == (r[0] + r[1] > 1.0)
            })
            .count();
        assert!(correct as f64 / test.len() as f64 > 0.9, "accuracy {correct}/200");
    }

    #[test]
    fn forest_deterministic_for_seed() {
        let data = noisy_data(100, 3);
        let cfg = RandomForestConfig::default();
        let a = RandomForest::fit(&data, &cfg);
        let b = RandomForest::fit(&data, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let data = noisy_data(100, 3);
        let a = RandomForest::fit(&data, &RandomForestConfig { seed: 1, ..Default::default() });
        let b = RandomForest::fit(&data, &RandomForestConfig { seed: 2, ..Default::default() });
        assert_ne!(a, b);
    }

    #[test]
    fn probabilities_bounded() {
        let data = noisy_data(100, 4);
        let forest = RandomForest::fit(&data, &RandomForestConfig::default());
        for i in 0..20 {
            let x = [i as f64 / 20.0, 1.0 - i as f64 / 20.0];
            let p = forest.predict_proba(&x);
            assert!((0.0..=1.0).contains(&p));
            let v = forest.vote_fraction(&x);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn empty_training_predicts_non_match() {
        let forest = RandomForest::fit(&TrainingSet::new(2), &RandomForestConfig::default());
        assert!(!forest.predict(&[0.9, 0.9]));
    }

    #[test]
    fn single_tree_forest_works() {
        let data = noisy_data(50, 5);
        let cfg = RandomForestConfig { n_trees: 1, ..Default::default() };
        let forest = RandomForest::fit(&data, &cfg);
        assert_eq!(forest.num_trees(), 1);
    }

    #[test]
    fn splitmix_streams_are_distinct() {
        let seeds: std::collections::HashSet<u64> = (0..1000).map(|i| splitmix(42, i)).collect();
        assert_eq!(seeds.len(), 1000);
    }
}
