//! CART decision-tree classifier with Gini impurity.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use crate::dataset::TrainingSet;

/// Hyperparameters for [`DecisionTree::fit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples in each child of a split.
    pub min_samples_leaf: usize,
    /// Number of features examined per split; `None` = all features.
    pub max_features: Option<usize>,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        Self { max_depth: 12, min_samples_split: 2, min_samples_leaf: 1, max_features: None }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
enum Node {
    Leaf { proba: f64 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// A trained binary CART classifier. Leaves store the positive-class
/// fraction of their training samples as the predicted probability.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    num_features: usize,
}

impl DecisionTree {
    /// Train a tree. `rng` drives feature subsampling (only consulted when
    /// `max_features` is set).
    ///
    /// An empty training set yields a constant 0.0-probability stump.
    pub fn fit(data: &TrainingSet, config: &DecisionTreeConfig, rng: &mut SmallRng) -> Self {
        let mut tree = Self { nodes: Vec::new(), num_features: data.num_features() };
        if data.is_empty() {
            tree.nodes.push(Node::Leaf { proba: 0.0 });
            return tree;
        }
        let indices: Vec<usize> = (0..data.len()).collect();
        tree.build(data, indices, 0, config, rng);
        tree
    }

    /// Number of nodes (splits + leaves).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: usize) -> usize {
            match nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, left).max(walk(nodes, right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    /// Predicted probability that `x` is a match.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match self.nodes[i] {
                Node::Leaf { proba } => return proba,
                Node::Split { feature, threshold, left, right } => {
                    i = if x[feature] <= threshold { left } else { right };
                }
            }
        }
    }

    /// Hard prediction at the 0.5 threshold.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    fn build(
        &mut self,
        data: &TrainingSet,
        indices: Vec<usize>,
        depth: usize,
        config: &DecisionTreeConfig,
        rng: &mut SmallRng,
    ) -> usize {
        let n = indices.len();
        let pos = indices.iter().filter(|&&i| data.y[i]).count();
        let proba = pos as f64 / n as f64;
        let pure = pos == 0 || pos == n;
        if pure || depth >= config.max_depth || n < config.min_samples_split {
            self.nodes.push(Node::Leaf { proba });
            return self.nodes.len() - 1;
        }
        let Some((feature, threshold)) = self.best_split(data, &indices, config, rng) else {
            self.nodes.push(Node::Leaf { proba });
            return self.nodes.len() - 1;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.into_iter().partition(|&i| data.x.get(i, feature) <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            // defensive: a degenerate split must never create an empty child
            self.nodes.push(Node::Leaf { proba });
            return self.nodes.len() - 1;
        }
        // placeholder, patched after children are built
        let node_id = self.nodes.len();
        self.nodes.push(Node::Leaf { proba });
        let left = self.build(data, left_idx, depth + 1, config, rng);
        let right = self.build(data, right_idx, depth + 1, config, rng);
        self.nodes[node_id] = Node::Split { feature, threshold, left, right };
        node_id
    }

    /// Exhaustive best split over (a sample of) features: sort by value, sweep
    /// candidate thresholds at midpoints between distinct values, minimize
    /// weighted Gini impurity.
    fn best_split(
        &self,
        data: &TrainingSet,
        indices: &[usize],
        config: &DecisionTreeConfig,
        rng: &mut SmallRng,
    ) -> Option<(usize, f64)> {
        let n = indices.len() as f64;
        let total_pos = indices.iter().filter(|&&i| data.y[i]).count() as f64;

        let mut features: Vec<usize> = (0..self.num_features).collect();
        if let Some(k) = config.max_features {
            features.shuffle(rng);
            features.truncate(k.max(1).min(self.num_features));
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        let mut sorted: Vec<usize> = Vec::with_capacity(indices.len());
        for &feature in &features {
            sorted.clear();
            sorted.extend_from_slice(indices);
            sorted.sort_by(|&a, &b| data.x.get(a, feature).total_cmp(&data.x.get(b, feature)));
            let mut left_n = 0.0f64;
            let mut left_pos = 0.0f64;
            for w in 0..sorted.len() - 1 {
                let i = sorted[w];
                left_n += 1.0;
                if data.y[i] {
                    left_pos += 1.0;
                }
                let v_here = data.x.get(i, feature);
                let v_next = data.x.get(sorted[w + 1], feature);
                if v_next <= v_here {
                    continue; // not a distinct boundary
                }
                let right_n = n - left_n;
                if (left_n as usize) < config.min_samples_leaf
                    || (right_n as usize) < config.min_samples_leaf
                {
                    continue;
                }
                let right_pos = total_pos - left_pos;
                let gini = |cnt: f64, pos: f64| {
                    if cnt == 0.0 {
                        0.0
                    } else {
                        let p = pos / cnt;
                        2.0 * p * (1.0 - p)
                    }
                };
                let score = (left_n * gini(left_n, left_pos) + right_n * gini(right_n, right_pos)) / n;
                if best.is_none_or(|(_, _, s)| score < s - 1e-15) {
                    // The midpoint can round up to v_next when the two values
                    // are adjacent floats, which would leave the right child
                    // empty (and its leaf probability 0/0). Fall back to
                    // v_here, which always separates the sides.
                    let mid = (v_here + v_next) / 2.0;
                    let threshold = if mid > v_here && mid < v_next { mid } else { v_here };
                    best = Some((feature, threshold, score));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    fn threshold_data() -> TrainingSet {
        // match iff feature0 > 0.5
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0, 0.3]).collect();
        let labels: Vec<bool> = (0..40).map(|i| i as f64 / 40.0 > 0.5).collect();
        TrainingSet::from_rows(&rows, &labels)
    }

    #[test]
    fn learns_simple_threshold() {
        let data = threshold_data();
        let tree = DecisionTree::fit(&data, &DecisionTreeConfig::default(), &mut rng());
        assert!(tree.predict(&[0.9, 0.3]));
        assert!(!tree.predict(&[0.1, 0.3]));
        // depth 1 suffices for a single threshold
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn learns_xor_with_depth_two() {
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let labels = vec![false, true, true, false];
        let data = TrainingSet::from_rows(&rows, &labels);
        let tree = DecisionTree::fit(&data, &DecisionTreeConfig::default(), &mut rng());
        for (r, &l) in rows.iter().zip(&labels) {
            assert_eq!(tree.predict(r), l, "row {r:?}");
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn pure_data_yields_single_leaf() {
        let data = TrainingSet::from_rows(&[vec![0.1], vec![0.9]], &[true, true]);
        let tree = DecisionTree::fit(&data, &DecisionTreeConfig::default(), &mut rng());
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict_proba(&[0.5]), 1.0);
    }

    #[test]
    fn empty_data_predicts_non_match() {
        let data = TrainingSet::new(3);
        let tree = DecisionTree::fit(&data, &DecisionTreeConfig::default(), &mut rng());
        assert_eq!(tree.predict_proba(&[0.5, 0.5, 0.5]), 0.0);
    }

    #[test]
    fn max_depth_zero_is_majority_stump() {
        let data = threshold_data();
        let cfg = DecisionTreeConfig { max_depth: 0, ..Default::default() };
        let tree = DecisionTree::fit(&data, &cfg, &mut rng());
        assert_eq!(tree.num_nodes(), 1);
        let p = tree.predict_proba(&[0.0, 0.0]);
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let data = threshold_data();
        let cfg = DecisionTreeConfig { min_samples_leaf: 25, ..Default::default() };
        let tree = DecisionTree::fit(&data, &cfg, &mut rng());
        // 40 samples cannot be split into two leaves of >= 25
        assert_eq!(tree.num_nodes(), 1);
    }

    #[test]
    fn identical_features_cannot_split() {
        let data = TrainingSet::from_rows(
            &[vec![0.5], vec![0.5], vec![0.5], vec![0.5]],
            &[true, false, true, false],
        );
        let tree = DecisionTree::fit(&data, &DecisionTreeConfig::default(), &mut rng());
        assert_eq!(tree.num_nodes(), 1);
        assert!((tree.predict_proba(&[0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probabilities_are_leaf_fractions() {
        // 3 matches, 1 non-match on the high side of a split
        let rows = vec![vec![0.9], vec![0.95], vec![0.85], vec![0.8], vec![0.1], vec![0.2]];
        let labels = vec![true, true, true, false, false, false];
        let data = TrainingSet::from_rows(&rows, &labels);
        let cfg = DecisionTreeConfig { max_depth: 1, ..Default::default() };
        let tree = DecisionTree::fit(&data, &cfg, &mut rng());
        let p_high = tree.predict_proba(&[0.9]);
        assert!((0.5..=1.0).contains(&p_high));
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let data = threshold_data();
        let cfg = DecisionTreeConfig { max_features: Some(1), ..Default::default() };
        let a = DecisionTree::fit(&data, &cfg, &mut SmallRng::seed_from_u64(7));
        let b = DecisionTree::fit(&data, &cfg, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
