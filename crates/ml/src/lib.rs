//! # morer-ml — machine-learning substrate for MoRER
//!
//! A small, dependency-free (beyond `rand`/`rayon`) reimplementation of the
//! scikit-learn functionality the paper's pipeline uses:
//!
//! * [`FeatureMatrix`] / [`TrainingSet`]: dense row-major data with binary
//!   match labels;
//! * [`tree::DecisionTree`]: CART with Gini impurity;
//! * [`forest::RandomForest`]: bagged trees with feature subsampling
//!   (the default ER classifier, trained in parallel with rayon);
//! * [`linear::LogisticRegression`]: full-batch gradient descent with L2;
//! * [`naive_bayes::GaussianNb`]: Gaussian naive Bayes;
//! * [`mlp::Mlp`]: one-hidden-layer perceptron (backbone of the
//!   language-model stand-ins in `morer-baselines`);
//! * [`metrics`]: confusion counts, precision/recall/F1 with micro-averaging
//!   across ER tasks (paper §5.2);
//! * [`model::TrainedModel`]: a serde-serializable sum type of all trained
//!   classifiers — what the model repository stores.
//!
//! Every training routine takes an explicit seed and is deterministic.

pub mod dataset;
pub mod forest;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod naive_bayes;
pub mod sampling;
pub mod tree;

pub use dataset::{FeatureMatrix, TrainingSet};
pub use forest::{RandomForest, RandomForestConfig};
pub use linear::{LogisticRegression, LogisticRegressionConfig};
pub use metrics::{f1_score, precision, recall, PairCounts};
pub use model::{Classifier, ModelConfig, TrainedModel};
