//! Property-based tests of the ML substrate.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use morer_ml::dataset::TrainingSet;
use morer_ml::forest::{RandomForest, RandomForestConfig};
use morer_ml::linear::{LogisticRegression, LogisticRegressionConfig};
use morer_ml::metrics::PairCounts;
use morer_ml::naive_bayes::GaussianNb;
use morer_ml::sampling::{k_fold_indices, stratified_indices, train_test_split};
use morer_ml::tree::{DecisionTree, DecisionTreeConfig};

fn labeled_rows() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<bool>)> {
    proptest::collection::vec(
        (proptest::collection::vec(0.0f64..=1.0, 3..=3), any::<bool>()),
        4..60,
    )
    .prop_map(|rows| {
        let x: Vec<Vec<f64>> = rows.iter().map(|(r, _)| r.clone()).collect();
        let y: Vec<bool> = rows.iter().map(|(_, l)| *l).collect();
        (x, y)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_classifiers_emit_valid_probabilities((x, y) in labeled_rows(), q in proptest::collection::vec(0.0f64..=1.0, 3..=3)) {
        let data = TrainingSet::from_rows(&x, &y);
        let mut rng = SmallRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&data, &DecisionTreeConfig::default(), &mut rng);
        let forest = RandomForest::fit(&data, &RandomForestConfig { n_trees: 8, ..Default::default() });
        let logreg = LogisticRegression::fit(&data, &LogisticRegressionConfig { epochs: 30, ..Default::default() });
        let gnb = GaussianNb::fit(&data);
        for p in [
            tree.predict_proba(&q),
            forest.predict_proba(&q),
            logreg.predict_proba(&q),
            gnb.predict_proba(&q),
        ] {
            prop_assert!(p.is_finite());
            prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn tree_perfectly_fits_consistent_training_data((x, y) in labeled_rows()) {
        // deduplicate conflicting rows (same features, different labels)
        let mut seen: std::collections::HashMap<String, bool> = std::collections::HashMap::new();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (row, &label) in x.iter().zip(&y) {
            let key = format!("{row:?}");
            match seen.get(&key) {
                Some(&l) if l != label => continue,
                Some(_) => {}
                None => {
                    seen.insert(key, label);
                }
            }
            xs.push(row.clone());
            ys.push(label);
        }
        let data = TrainingSet::from_rows(&xs, &ys);
        let mut rng = SmallRng::seed_from_u64(2);
        let cfg = DecisionTreeConfig { max_depth: 64, ..Default::default() };
        let tree = DecisionTree::fit(&data, &cfg, &mut rng);
        for (row, &label) in xs.iter().zip(&ys) {
            prop_assert_eq!(tree.predict(row), label, "row {:?}", row);
        }
    }

    #[test]
    fn split_partitions_data((x, y) in labeled_rows(), frac in 0.1f64..0.9) {
        let data = TrainingSet::from_rows(&x, &y);
        let (train, test) = train_test_split(&data, frac, 3);
        prop_assert_eq!(train.len() + test.len(), data.len());
    }

    #[test]
    fn stratified_sampling_is_within_bounds(labels in proptest::collection::vec(any::<bool>(), 1..100), n in 0usize..100) {
        let idx = stratified_indices(&labels, n, 4);
        prop_assert_eq!(idx.len(), n.min(labels.len()));
        let distinct: std::collections::HashSet<usize> = idx.iter().copied().collect();
        prop_assert_eq!(distinct.len(), idx.len(), "duplicates in stratified sample");
        prop_assert!(idx.iter().all(|&i| i < labels.len()));
    }

    #[test]
    fn k_fold_partitions_exactly(n in 4usize..100, k in 2usize..6) {
        let folds = k_fold_indices(n, k, 5);
        let mut seen = vec![0usize; n];
        for (train, val) in &folds {
            prop_assert_eq!(train.len() + val.len(), n);
            for &i in val {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn metrics_confusion_identities(outcomes in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..100)) {
        let mut c = PairCounts::new();
        for &(p, a) in &outcomes {
            c.record(p, a);
        }
        prop_assert_eq!(c.total() as usize, outcomes.len());
        let positives = outcomes.iter().filter(|(_, a)| *a).count() as u64;
        prop_assert_eq!(c.tp + c.fn_, positives);
        let predicted = outcomes.iter().filter(|(p, _)| *p).count() as u64;
        prop_assert_eq!(c.tp + c.fp, predicted);
    }
}
