//! TransER — homogeneous transfer learning for ER (Kirielle et al., EDBT
//! 2022; paper §3, §5.2).
//!
//! Phase 1 (instance transfer): every target feature vector looks up its `k`
//! nearest source vectors; a pseudo label is assigned when (a) the
//! neighbourhood's class confidence reaches `t_c`, (b) the structural
//! similarity between the vector and its neighbourhood reaches `t_l`, and
//! (c) the resulting pseudo-label confidence reaches `t_p`. Phase 2 trains a
//! target-side classifier on the pseudo-labeled vectors.
//!
//! Deliberately faithful inefficiency: like the original, "TransER compares
//! each unsolved feature vector with all feature vectors from the integrated
//! ER tasks" (§5.3) — brute-force k-NN over the whole source side, which is
//! what makes it slow on large benchmarks.

use rayon::prelude::*;

use crate::{score_problem, BaselineContext, BaselineRun, ErBaseline};
use morer_ml::forest::{RandomForest, RandomForestConfig};
use morer_ml::metrics::PairCounts;
use morer_ml::TrainingSet;

/// TransER configuration (paper §5.2 defaults: k=10, t_c = t_l = t_p = 0.9).
#[derive(Debug, Clone)]
pub struct TransErConfig {
    /// Neighbourhood size.
    pub k: usize,
    /// Class-confidence threshold `t_c`.
    pub t_c: f64,
    /// Structural-similarity threshold `t_l`.
    pub t_l: f64,
    /// Pseudo-label confidence threshold `t_p`.
    pub t_p: f64,
    /// Target-side classifier.
    pub forest: RandomForestConfig,
}

impl Default for TransErConfig {
    fn default() -> Self {
        Self {
            k: 10,
            t_c: 0.9,
            t_l: 0.9,
            t_p: 0.9,
            forest: RandomForestConfig { n_trees: 32, ..Default::default() },
        }
    }
}

/// The TransER baseline.
#[derive(Debug, Clone, Default)]
pub struct TransEr {
    /// Hyperparameters.
    pub config: TransErConfig,
}

struct PseudoLabel {
    row: usize,
    label: bool,
}

impl TransEr {
    /// Create with the given configuration.
    pub fn new(config: TransErConfig) -> Self {
        Self { config }
    }

    /// Phase 1: pseudo-label target rows from the source neighbourhood.
    fn pseudo_label(&self, source: &TrainingSet, target: &morer_data::ErProblem) -> Vec<PseudoLabel> {
        let k = self.config.k.min(source.len().max(1));
        (0..target.num_pairs())
            .into_par_iter()
            .filter_map(|row| {
                let w = target.features.row(row);
                // brute-force k-NN by squared Euclidean distance
                let mut best: Vec<(f64, bool)> = Vec::with_capacity(k + 1);
                for (srow, &slabel) in source.x.iter_rows().zip(&source.y) {
                    let d: f64 = w.iter().zip(srow).map(|(a, b)| (a - b) * (a - b)).sum();
                    if best.len() < k {
                        best.push((d, slabel));
                        best.sort_by(|a, b| a.0.total_cmp(&b.0));
                    } else if d < best[k - 1].0 {
                        best[k - 1] = (d, slabel);
                        best.sort_by(|a, b| a.0.total_cmp(&b.0));
                    }
                }
                if best.is_empty() {
                    return None;
                }
                let pos = best.iter().filter(|(_, l)| *l).count();
                let confidence = (pos.max(best.len() - pos)) as f64 / best.len() as f64;
                // structural similarity: how tight the neighbourhood is in the
                // unit feature cube (mean distance mapped to a similarity)
                let t = w.len().max(1) as f64;
                let mean_dist = best.iter().map(|(d, _)| d.sqrt()).sum::<f64>() / best.len() as f64;
                let structural = 1.0 - (mean_dist / t.sqrt()).min(1.0);
                if confidence >= self.config.t_c
                    && structural >= self.config.t_l
                    && confidence >= self.config.t_p
                {
                    Some(PseudoLabel { row, label: pos * 2 > best.len() })
                } else {
                    None
                }
            })
            .collect()
    }
}

impl ErBaseline for TransEr {
    fn name(&self) -> &'static str {
        "transer"
    }

    fn run(&self, ctx: &BaselineContext<'_>) -> BaselineRun {
        // source domain: labeled vectors of all solved problems
        let source = morer_core_free_supervised(ctx);
        let mut counts = PairCounts::new();
        for target in &ctx.unsolved {
            let pseudo = self.pseudo_label(&source, target);
            let predictions: Vec<bool> = if pseudo.len() >= 10
                && pseudo.iter().any(|p| p.label)
                && pseudo.iter().any(|p| !p.label)
            {
                // Phase 2: train the target model on pseudo labels
                let mut ts = TrainingSet::new(target.num_features());
                for p in &pseudo {
                    ts.push(target.features.row(p.row), p.label);
                }
                let forest = RandomForest::fit(&ts, &self.config.forest);
                (0..target.num_pairs())
                    .map(|r| forest.predict(target.features.row(r)))
                    .collect()
            } else {
                // degenerate transfer: fall back to source-side model
                let forest = RandomForest::fit(&source, &self.config.forest);
                (0..target.num_pairs())
                    .map(|r| forest.predict(target.features.row(r)))
                    .collect()
            };
            score_problem(&mut counts, &predictions, target);
        }
        BaselineRun { counts, labels_used: source.len() }
    }
}

/// The supervised source pool shared by feature-space baselines: a fraction
/// of every initial problem's labeled vectors.
fn morer_core_free_supervised(ctx: &BaselineContext<'_>) -> TrainingSet {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let cols = ctx.initial.first().map_or(0, |p| p.num_features());
    let mut ts = TrainingSet::new(cols);
    for (pi, p) in ctx.initial.iter().enumerate() {
        let mut idx: Vec<usize> = (0..p.num_pairs()).collect();
        if ctx.train_fraction < 1.0 {
            let mut rng =
                rand::rngs::SmallRng::seed_from_u64(ctx.seed ^ (pi as u64) << 16);
            idx.shuffle(&mut rng);
            idx.truncate(((idx.len() as f64) * ctx.train_fraction).round() as usize);
        }
        for i in idx {
            ts.push(p.features.row(i), p.labels[i]);
        }
    }
    ts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{tiny_benchmark, tiny_context};

    #[test]
    fn transer_beats_random_on_related_tasks() {
        let bench = tiny_benchmark();
        let ctx = tiny_context(&bench);
        let run = TransEr::default().run(&ctx);
        assert!(run.counts.f1() > 0.5, "F1 = {}", run.counts.f1());
        assert!(run.labels_used > 0);
    }

    #[test]
    fn strict_thresholds_still_produce_predictions() {
        let bench = tiny_benchmark();
        let ctx = tiny_context(&bench);
        let strict = TransEr::new(TransErConfig { t_c: 1.0, t_l: 0.999, ..Default::default() });
        let run = strict.run(&ctx);
        // fallback path must keep the method functional
        assert!(run.counts.total() > 0);
    }

    #[test]
    fn train_fraction_halves_source_size() {
        let bench = tiny_benchmark();
        let mut ctx = tiny_context(&bench);
        let full = TransEr::default().run(&ctx).labels_used;
        ctx.train_fraction = 0.5;
        let half = TransEr::default().run(&ctx).labels_used;
        assert!((half as f64) < full as f64 * 0.6);
        assert!((half as f64) > full as f64 * 0.4);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(TransEr::default().name(), "transer");
    }
}
