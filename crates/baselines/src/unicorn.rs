//! UnicornSim — the unified mixture-of-experts matcher (Fan et al., SIGMOD
//! 2024) under the embedding substitution of DESIGN.md §3.
//!
//! Unicorn trains one model for many matching tasks with a unified encoder
//! and a mixture-of-experts head. The stand-in keeps the MoE shape: `E`
//! expert logistic regressions trained on diverse bootstrap shards of the
//! unified pair-feature data, combined by a stacked gating model trained on
//! the experts' outputs (a practical approximation of Unicorn's learned
//! gating; the paper's default of six experts is kept).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::ditto::{embed_records, oversample_minority, pair_training_set};
use crate::{score_problem, BaselineContext, BaselineRun, ErBaseline};
use morer_ml::linear::{LogisticRegression, LogisticRegressionConfig};
use morer_ml::metrics::PairCounts;
use morer_ml::sampling::bootstrap_sample;
use morer_ml::TrainingSet;

/// Configuration of the Unicorn stand-in.
#[derive(Debug, Clone)]
pub struct UnicornConfig {
    /// Number of experts (Unicorn's default: 6).
    pub num_experts: usize,
    /// Embedding dimensionality.
    pub embedding_dim: usize,
    /// Per-expert training.
    pub expert: LogisticRegressionConfig,
    /// Gating model training.
    pub gate: LogisticRegressionConfig,
}

impl Default for UnicornConfig {
    fn default() -> Self {
        Self {
            num_experts: 6,
            embedding_dim: 128,
            expert: LogisticRegressionConfig { epochs: 120, ..Default::default() },
            gate: LogisticRegressionConfig { epochs: 150, ..Default::default() },
        }
    }
}

/// The Unicorn stand-in.
#[derive(Debug, Clone, Default)]
pub struct UnicornSim {
    /// Hyperparameters.
    pub config: UnicornConfig,
}

impl UnicornSim {
    /// Create with the given configuration.
    pub fn new(config: UnicornConfig) -> Self {
        Self { config }
    }
}

impl ErBaseline for UnicornSim {
    fn name(&self) -> &'static str {
        "unicorn"
    }

    fn run(&self, ctx: &BaselineContext<'_>) -> BaselineRun {
        let (embedder, embeddings) = embed_records(ctx, self.config.embedding_dim);
        let raw_training = pair_training_set(ctx, &embedder, &embeddings);
        let labels_used = raw_training.len();
        let training = oversample_minority(&raw_training, 2, ctx.seed);

        // experts on diverse bootstrap shards
        let experts: Vec<LogisticRegression> = (0..self.config.num_experts.max(1))
            .into_par_iter()
            .map(|e| {
                let mut rng = SmallRng::seed_from_u64(ctx.seed ^ (e as u64) << 8);
                let shard = bootstrap_sample(&training, &mut rng);
                LogisticRegression::fit(&shard, &self.config.expert)
            })
            .collect();

        // stacked gate: logistic regression over expert probabilities
        let mut gate_data = TrainingSet::new(experts.len());
        for (row, &label) in training.x.iter_rows().zip(&training.y) {
            let meta: Vec<f64> = experts.iter().map(|e| e.predict_proba(row)).collect();
            gate_data.push(&meta, label);
        }
        let gate = LogisticRegression::fit(&gate_data, &self.config.gate);

        let mut counts = PairCounts::new();
        for p in &ctx.unsolved {
            let predictions: Vec<bool> = p
                .pairs
                .par_iter()
                .map(|&(a, b)| {
                    let features = embedder.pair_features(&embeddings[&a], &embeddings[&b]);
                    let meta: Vec<f64> =
                        experts.iter().map(|e| e.predict_proba(&features)).collect();
                    gate.predict(&meta)
                })
                .collect();
            score_problem(&mut counts, &predictions, p);
        }
        BaselineRun { counts, labels_used }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{tiny_benchmark, tiny_context};

    #[test]
    fn unicorn_runs_with_six_experts() {
        let bench = tiny_benchmark();
        let ctx = tiny_context(&bench);
        let run = UnicornSim::default().run(&ctx);
        assert!(run.counts.total() > 0);
        assert!(run.labels_used > 0);
        // mixture over hashed embeddings: meaningful but below supervised RF
        assert!(run.counts.f1() > 0.3, "F1 = {}", run.counts.f1());
    }

    #[test]
    fn single_expert_degenerates_gracefully() {
        let bench = tiny_benchmark();
        let ctx = tiny_context(&bench);
        let run = UnicornSim::new(UnicornConfig { num_experts: 1, ..Default::default() }).run(&ctx);
        assert!(run.counts.total() > 0);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(UnicornSim::default().name(), "unicorn");
    }
}
