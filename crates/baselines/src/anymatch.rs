//! AnyMatchSim — the small-language-model matcher (Zhang et al., EDBT 2025)
//! under the embedding substitution of DESIGN.md §3.
//!
//! AnyMatch fine-tunes GPT-2 on serialized pairs sampled by an AutoML-style
//! selection with a small labeling budget. The stand-in: serialized-pair
//! hashed embeddings, a budget-limited labeled sample, and AutoML-lite model
//! selection — train {logistic regression, gaussian NB, shallow forest} and
//! keep whichever validates best. The paper attributes AnyMatch's weakness
//! on large candidate sets to exactly this selection step (§5.3), which the
//! stand-in inherits.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::ditto::embed_records;
use crate::{score_problem, BaselineContext, BaselineRun, ErBaseline};
use morer_ml::forest::RandomForestConfig;
use morer_ml::metrics::{f1_score, PairCounts};
use morer_ml::model::{Classifier, ModelConfig, TrainedModel};
use morer_ml::sampling::train_test_split;
use morer_ml::TrainingSet;

/// Configuration of the AnyMatch stand-in.
#[derive(Debug, Clone)]
pub struct AnyMatchConfig {
    /// Embedding dimensionality.
    pub embedding_dim: usize,
    /// Validation share of the labeled sample used for model selection.
    pub validation_fraction: f64,
}

impl Default for AnyMatchConfig {
    fn default() -> Self {
        Self { embedding_dim: 96, validation_fraction: 0.3 }
    }
}

/// The AnyMatch stand-in.
#[derive(Debug, Clone, Default)]
pub struct AnyMatchSim {
    /// Hyperparameters.
    pub config: AnyMatchConfig,
}

impl AnyMatchSim {
    /// Create with the given configuration.
    pub fn new(config: AnyMatchConfig) -> Self {
        Self { config }
    }
}

impl ErBaseline for AnyMatchSim {
    fn name(&self) -> &'static str {
        "anymatch"
    }

    fn run(&self, ctx: &BaselineContext<'_>) -> BaselineRun {
        let (embedder, embeddings) = embed_records(ctx, self.config.embedding_dim);
        let mut rng = SmallRng::seed_from_u64(ctx.seed);

        // budget-limited labeled sample across all initial problems
        let mut rows: Vec<(usize, usize)> = ctx
            .initial
            .iter()
            .enumerate()
            .flat_map(|(pi, p)| (0..p.num_pairs()).map(move |i| (pi, i)))
            .collect();
        rows.shuffle(&mut rng);
        rows.truncate(ctx.budget);
        let mut labeled = TrainingSet::new(embedder.pair_feature_dim());
        for &(pi, i) in &rows {
            let p = ctx.initial[pi];
            let (a, b) = p.pairs[i];
            labeled.push(&embedder.pair_features(&embeddings[&a], &embeddings[&b]), p.labels[i]);
        }
        let labels_used = labeled.len();

        // AutoML-lite: pick the candidate with the best validation F1
        let (train, valid) =
            train_test_split(&labeled, 1.0 - self.config.validation_fraction, ctx.seed);
        let candidates = [
            ModelConfig::LogisticRegression(Default::default()),
            ModelConfig::GaussianNb,
            ModelConfig::RandomForest(RandomForestConfig {
                n_trees: 16,
                max_depth: 6,
                seed: ctx.seed,
                ..Default::default()
            }),
        ];
        let best = candidates
            .iter()
            .map(|cfg| {
                let model = TrainedModel::train(cfg, &train);
                let preds: Vec<bool> = valid.x.iter_rows().map(|r| model.predict(r)).collect();
                let f1 = f1_score(&preds, &valid.y);
                (model, f1)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(m, _)| m)
            .expect("non-empty candidate list");

        let mut counts = PairCounts::new();
        for p in &ctx.unsolved {
            let predictions: Vec<bool> = p
                .pairs
                .par_iter()
                .map(|&(a, b)| best.predict(&embedder.pair_features(&embeddings[&a], &embeddings[&b])))
                .collect();
            score_problem(&mut counts, &predictions, p);
        }
        BaselineRun { counts, labels_used }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{tiny_benchmark, tiny_context};

    #[test]
    fn anymatch_respects_budget() {
        let bench = tiny_benchmark();
        let ctx = tiny_context(&bench);
        let run = AnyMatchSim::default().run(&ctx);
        assert!(run.labels_used <= ctx.budget);
        assert!(run.counts.total() > 0);
    }

    #[test]
    fn bigger_budget_does_not_hurt_much() {
        let bench = tiny_benchmark();
        let mut ctx = tiny_context(&bench);
        ctx.budget = 40;
        let small = AnyMatchSim::default().run(&ctx);
        ctx.budget = 400;
        let large = AnyMatchSim::default().run(&ctx);
        assert!(large.counts.f1() + 0.15 >= small.counts.f1());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(AnyMatchSim::default().name(), "anymatch");
    }
}
