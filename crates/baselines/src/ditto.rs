//! DittoSim — the supervised transformer baseline (Li et al., VLDB 2020)
//! under the embedding substitution of DESIGN.md §3.
//!
//! Ditto serializes record pairs as `COL … VAL … [SEP] …` and fine-tunes
//! DistilBERT. The stand-in keeps the exact serialization and the
//! "needs-lots-of-labels, strong-on-text" profile: records are embedded with
//! hashed n-grams, pairs become `[cos, |a − b|, a ⊙ b]` interaction features, and
//! a one-hidden-layer MLP is trained on the (50% or all) labeled pairs.

use std::collections::HashMap;

use rayon::prelude::*;

use crate::{score_problem, BaselineContext, BaselineRun, ErBaseline};
use morer_embed::serialize::serialize_record;
use morer_embed::{Embedder, EmbedderConfig};
use morer_ml::metrics::PairCounts;
use morer_ml::mlp::{Mlp, MlpConfig};
use morer_ml::TrainingSet;

/// Configuration of the Ditto stand-in.
#[derive(Debug, Clone)]
pub struct DittoConfig {
    /// Embedding dimensionality (pair features are twice this).
    pub embedding_dim: usize,
    /// MLP head.
    pub mlp: MlpConfig,
}

impl Default for DittoConfig {
    fn default() -> Self {
        Self {
            embedding_dim: 128,
            mlp: MlpConfig { hidden: 24, epochs: 12, batch_size: 64, ..Default::default() },
        }
    }
}

/// The Ditto stand-in.
#[derive(Debug, Clone, Default)]
pub struct DittoSim {
    /// Hyperparameters.
    pub config: DittoConfig,
}

impl DittoSim {
    /// Create with the given configuration.
    pub fn new(config: DittoConfig) -> Self {
        Self { config }
    }
}

/// Embed every record referenced by the given problems once.
pub(crate) fn embed_records(
    ctx: &BaselineContext<'_>,
    dim: usize,
) -> (Embedder, HashMap<u32, Vec<f32>>) {
    let attributes = ctx.dataset.schema.attributes().to_vec();
    let mut uids: Vec<u32> = ctx
        .initial
        .iter()
        .chain(&ctx.unsolved)
        .flat_map(|p| p.pairs.iter().flat_map(|&(a, b)| [a, b]))
        .collect();
    uids.sort_unstable();
    uids.dedup();
    let corpus: Vec<String> = uids
        .iter()
        .map(|&uid| serialize_record(&attributes, &ctx.dataset.record(uid).values))
        .collect();
    let embedder = Embedder::fit(
        EmbedderConfig { dim, ..Default::default() },
        &corpus,
    );
    let embeddings: HashMap<u32, Vec<f32>> = uids
        .par_iter()
        .zip(&corpus)
        .map(|(&uid, text)| (uid, embedder.embed(text)))
        .collect();
    (embedder, embeddings)
}

/// Build the supervised pair-feature training set (fraction per problem).
pub(crate) fn pair_training_set(
    ctx: &BaselineContext<'_>,
    embedder: &Embedder,
    embeddings: &HashMap<u32, Vec<f32>>,
) -> TrainingSet {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut ts = TrainingSet::new(embedder.pair_feature_dim());
    for (pi, p) in ctx.initial.iter().enumerate() {
        let mut idx: Vec<usize> = (0..p.num_pairs()).collect();
        if ctx.train_fraction < 1.0 {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(ctx.seed ^ (pi as u64) << 16);
            idx.shuffle(&mut rng);
            idx.truncate(((idx.len() as f64) * ctx.train_fraction).round() as usize);
        }
        for i in idx {
            let (a, b) = p.pairs[i];
            ts.push(&embedder.pair_features(&embeddings[&a], &embeddings[&b]), p.labels[i]);
        }
    }
    ts
}

/// Oversample the minority class until it reaches at least `1 / max_ratio`
/// of the majority (gradient-trained heads collapse to all-negative on the
/// ~5% match rates of blocked ER data otherwise — real Ditto balances its
/// batches for the same reason).
pub(crate) fn oversample_minority(ts: &TrainingSet, max_ratio: usize, seed: u64) -> TrainingSet {
    use rand::Rng;
    use rand::SeedableRng;
    let (pos, neg) = ts.class_counts();
    if pos == 0 || neg == 0 {
        return ts.clone();
    }
    let (minority_label, minority, majority) =
        if pos < neg { (true, pos, neg) } else { (false, neg, pos) };
    let target = majority / max_ratio.max(1);
    if minority >= target {
        return ts.clone();
    }
    let minority_rows: Vec<usize> =
        (0..ts.len()).filter(|&i| ts.y[i] == minority_label).collect();
    let mut out = ts.clone();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    for _ in 0..(target - minority) {
        let i = minority_rows[rng.gen_range(0..minority_rows.len())];
        out.push(ts.x.row(i), minority_label);
    }
    out
}

impl ErBaseline for DittoSim {
    fn name(&self) -> &'static str {
        "ditto"
    }

    fn run(&self, ctx: &BaselineContext<'_>) -> BaselineRun {
        let (embedder, embeddings) = embed_records(ctx, self.config.embedding_dim);
        let training = pair_training_set(ctx, &embedder, &embeddings);
        let labels_used = training.len();
        let balanced = oversample_minority(&training, 2, ctx.seed);
        let mlp = Mlp::fit(
            &balanced,
            &MlpConfig { seed: ctx.seed, ..self.config.mlp.clone() },
        );
        let mut counts = PairCounts::new();
        for p in &ctx.unsolved {
            let predictions: Vec<bool> = p
                .pairs
                .par_iter()
                .map(|&(a, b)| {
                    mlp.predict(&embedder.pair_features(&embeddings[&a], &embeddings[&b]))
                })
                .collect();
            score_problem(&mut counts, &predictions, p);
        }
        BaselineRun { counts, labels_used }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{tiny_benchmark, tiny_context};

    #[test]
    fn ditto_learns_textual_matching() {
        let bench = tiny_benchmark();
        let ctx = tiny_context(&bench);
        let run = DittoSim::default().run(&ctx);
        assert!(run.counts.f1() > 0.5, "F1 = {}", run.counts.f1());
        let total_initial: usize = ctx.initial.iter().map(|p| p.num_pairs()).sum();
        assert_eq!(run.labels_used, total_initial);
    }

    #[test]
    fn half_fraction_uses_half_labels() {
        let bench = tiny_benchmark();
        let mut ctx = tiny_context(&bench);
        ctx.train_fraction = 0.5;
        let run = DittoSim::default().run(&ctx);
        let total_initial: usize = ctx.initial.iter().map(|p| p.num_pairs()).sum();
        assert!(run.labels_used < total_initial * 6 / 10);
        assert!(run.labels_used > total_initial * 4 / 10);
    }

    #[test]
    fn embeddings_cover_all_records_in_pairs() {
        let bench = tiny_benchmark();
        let ctx = tiny_context(&bench);
        let (_, embeddings) = embed_records(&ctx, 64);
        for p in ctx.initial.iter().chain(&ctx.unsolved) {
            for &(a, b) in &p.pairs {
                assert!(embeddings.contains_key(&a));
                assert!(embeddings.contains_key(&b));
            }
        }
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(DittoSim::default().name(), "ditto");
    }
}
