//! ZeroErSim — unsupervised ER with zero labeled examples (Wu et al., SIGMOD
//! 2020; related work §3, implemented as an extension baseline).
//!
//! ZeroER models the similarity feature vectors of matches and non-matches
//! as a two-component Gaussian mixture and assigns each pair to the
//! higher-posterior component — no labels consumed at all.

use crate::gmm::TwoComponentGmm;
use crate::{score_problem, BaselineContext, BaselineRun, ErBaseline};
use morer_ml::metrics::PairCounts;

/// Configuration of the ZeroER baseline.
#[derive(Debug, Clone)]
pub struct ZeroErConfig {
    /// EM iterations per problem.
    pub em_iterations: usize,
    /// Posterior above which a pair is declared a match.
    pub match_posterior: f64,
}

impl Default for ZeroErConfig {
    fn default() -> Self {
        Self { em_iterations: 50, match_posterior: 0.5 }
    }
}

/// The ZeroER baseline.
#[derive(Debug, Clone, Default)]
pub struct ZeroErSim {
    /// Hyperparameters.
    pub config: ZeroErConfig,
}

impl ZeroErSim {
    /// Create with the given configuration.
    pub fn new(config: ZeroErConfig) -> Self {
        Self { config }
    }
}

impl ErBaseline for ZeroErSim {
    fn name(&self) -> &'static str {
        "zeroer"
    }

    fn run(&self, ctx: &BaselineContext<'_>) -> BaselineRun {
        let mut counts = PairCounts::new();
        for p in &ctx.unsolved {
            let rows: Vec<Vec<f64>> = p.features.iter_rows().map(<[f64]>::to_vec).collect();
            let predictions: Vec<bool> = match TwoComponentGmm::fit(&rows, self.config.em_iterations)
            {
                Some(gmm) => rows
                    .iter()
                    .map(|r| gmm.posterior_match(r) >= self.config.match_posterior)
                    .collect(),
                None => vec![false; rows.len()],
            };
            score_problem(&mut counts, &predictions, p);
        }
        BaselineRun { counts, labels_used: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{tiny_benchmark, tiny_context};

    #[test]
    fn zeroer_uses_no_labels_and_finds_structure() {
        let bench = tiny_benchmark();
        let ctx = tiny_context(&bench);
        let run = ZeroErSim::default().run(&ctx);
        assert_eq!(run.labels_used, 0);
        assert!(run.counts.total() > 0);
        // unsupervised mixture should recover a good share of the matches
        assert!(run.counts.recall() > 0.4, "recall = {}", run.counts.recall());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(ZeroErSim::default().name(), "zeroer");
    }
}
