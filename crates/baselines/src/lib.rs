//! # morer-baselines — the compared ER methods of the paper's evaluation
//!
//! * [`transer::TransEr`] — homogeneous transfer learning (Kirielle et al.,
//!   EDBT 2022): k-NN instance transfer from the solved problems with class
//!   confidence `t_c`, structural similarity `t_l` and pseudo-label
//!   confidence `t_p`, then a target-side classifier;
//! * [`ditto::DittoSim`] — supervised pair classifier over record
//!   embeddings (MLP head), standing in for fine-tuned DistilBERT Ditto;
//! * [`sudowoodo::SudowoodoSim`] — contrastive self-supervised embeddings +
//!   a budget-calibrated matching threshold;
//! * [`unicorn::UnicornSim`] — mixture-of-experts over pair embeddings with
//!   a stacked gating model, standing in for Unicorn's unified MoE;
//! * [`anymatch::AnyMatchSim`] — AutoML-lite small-model selection on a
//!   budget-labeled sample, standing in for the GPT-2-based AnyMatch;
//! * [`zeroer::ZeroErSim`] — unsupervised two-component Gaussian mixture on
//!   the similarity features (ZeroER, related work §3);
//! * [`embedding_features`] — schema-free embedding feature spaces for
//!   heterogeneous sources (the paper's §4.2/§7 recommendation).
//!
//! Every LM-based method consumes Ditto-style serialized records through the
//! hashed-embedding substitution documented in DESIGN.md §3. All methods
//! share the [`ErBaseline`] interface so the harness can time them uniformly.

pub mod anymatch;
pub mod ditto;
pub mod embedding_features;
pub mod gmm;
pub mod sudowoodo;
pub mod transer;
pub mod unicorn;
pub mod zeroer;

use morer_data::{ErProblem, MultiSourceDataset};
use morer_ml::metrics::PairCounts;

/// Everything a baseline needs: the dataset (for record text), the solved
/// problems (training side), the unsolved problems (evaluation side), and
/// the labeling regime.
pub struct BaselineContext<'a> {
    /// The underlying dataset (record text for embedding methods).
    pub dataset: &'a MultiSourceDataset,
    /// Solved problems `P_I` — training data providers.
    pub initial: Vec<&'a ErProblem>,
    /// Unsolved problems `P_U` — what gets classified and scored.
    pub unsolved: Vec<&'a ErProblem>,
    /// Label budget for budget-limited methods (Sudowoodo, AnyMatch).
    pub budget: usize,
    /// Fraction of the initial problems' labels available to supervised
    /// methods (the paper's "50%" / "all" columns).
    pub train_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Result of one baseline run.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// Micro-averaged confusion counts over all unsolved problems.
    pub counts: PairCounts,
    /// Ground-truth labels consumed (budget or |training data|).
    pub labels_used: usize,
}

/// Common interface for all compared methods.
pub trait ErBaseline {
    /// Method name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Train and classify; the harness times this call for Fig. 5 / Table 5.
    fn run(&self, ctx: &BaselineContext<'_>) -> BaselineRun;
}

/// Helper: score predictions for one problem into counts.
pub(crate) fn score_problem(counts: &mut PairCounts, predictions: &[bool], problem: &ErProblem) {
    for (&pred, &actual) in predictions.iter().zip(&problem.labels) {
        counts.record(pred, actual);
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    use super::*;
    use morer_data::{computer, DatasetScale};

    /// A small but realistic multi-source benchmark shared by baseline tests.
    pub fn tiny_context(bench: &'_ morer_data::Benchmark) -> BaselineContext<'_> {
        BaselineContext {
            dataset: &bench.dataset,
            initial: bench.initial_problems(),
            unsolved: bench.unsolved_problems(),
            budget: 150,
            train_fraction: 1.0,
            seed: 7,
        }
    }

    pub fn tiny_benchmark() -> morer_data::Benchmark {
        computer(DatasetScale::Tiny, 7)
    }
}
