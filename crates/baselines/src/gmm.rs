//! Two-component diagonal Gaussian mixture fitted with EM — the probability
//! model behind the ZeroER baseline.

/// A fitted two-component diagonal Gaussian mixture over feature vectors.
#[derive(Debug, Clone)]
pub struct TwoComponentGmm {
    /// Mixing weight of the "match" component.
    pub weight_match: f64,
    /// Per-feature means of the match component.
    pub mean_match: Vec<f64>,
    /// Per-feature variances of the match component.
    pub var_match: Vec<f64>,
    /// Per-feature means of the non-match component.
    pub mean_nonmatch: Vec<f64>,
    /// Per-feature variances of the non-match component.
    pub var_nonmatch: Vec<f64>,
}

const VAR_FLOOR: f64 = 1e-4;

impl TwoComponentGmm {
    /// Fit by EM. Components are initialized from the rows above/below the
    /// per-row mean-feature median, and the higher-mean component is labeled
    /// "match" (ZeroER's assumption that matches are more similar).
    ///
    /// Returns `None` for fewer than 4 rows or zero features.
    pub fn fit(rows: &[Vec<f64>], iterations: usize) -> Option<Self> {
        let n = rows.len();
        let t = rows.first().map_or(0, Vec::len);
        if n < 4 || t == 0 {
            return None;
        }
        // init: split by mean-feature value
        let scores: Vec<f64> = rows.iter().map(|r| r.iter().sum::<f64>() / t as f64).collect();
        let mut sorted = scores.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[n / 2];
        let mut resp: Vec<f64> = scores
            .iter()
            .map(|&s| if s > median { 0.9 } else { 0.1 })
            .collect();

        let mut model = Self {
            weight_match: 0.5,
            mean_match: vec![0.0; t],
            var_match: vec![1.0; t],
            mean_nonmatch: vec![0.0; t],
            var_nonmatch: vec![1.0; t],
        };
        for _ in 0..iterations.max(1) {
            // M step
            let wm: f64 = resp.iter().sum();
            let wn = n as f64 - wm;
            if wm < 1e-9 || wn < 1e-9 {
                break;
            }
            model.weight_match = wm / n as f64;
            for f in 0..t {
                let mm: f64 = rows.iter().zip(&resp).map(|(r, &g)| g * r[f]).sum::<f64>() / wm;
                let mn: f64 =
                    rows.iter().zip(&resp).map(|(r, &g)| (1.0 - g) * r[f]).sum::<f64>() / wn;
                let vm: f64 = rows
                    .iter()
                    .zip(&resp)
                    .map(|(r, &g)| g * (r[f] - mm).powi(2))
                    .sum::<f64>()
                    / wm;
                let vn: f64 = rows
                    .iter()
                    .zip(&resp)
                    .map(|(r, &g)| (1.0 - g) * (r[f] - mn).powi(2))
                    .sum::<f64>()
                    / wn;
                model.mean_match[f] = mm;
                model.mean_nonmatch[f] = mn;
                model.var_match[f] = vm.max(VAR_FLOOR);
                model.var_nonmatch[f] = vn.max(VAR_FLOOR);
            }
            // E step
            for (i, row) in rows.iter().enumerate() {
                resp[i] = model.posterior_match(row);
            }
        }
        // orient: the match component must have the larger mean similarity
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        if mean(&model.mean_match) < mean(&model.mean_nonmatch) {
            std::mem::swap(&mut model.mean_match, &mut model.mean_nonmatch);
            std::mem::swap(&mut model.var_match, &mut model.var_nonmatch);
            model.weight_match = 1.0 - model.weight_match;
        }
        Some(model)
    }

    fn log_density(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
        x.iter()
            .zip(mean.iter().zip(var))
            .map(|(&xi, (&m, &v))| {
                -0.5 * ((2.0 * std::f64::consts::PI * v).ln() + (xi - m).powi(2) / v)
            })
            .sum()
    }

    /// Posterior probability of the match component for a feature vector.
    pub fn posterior_match(&self, x: &[f64]) -> f64 {
        let lm = self.weight_match.max(1e-12).ln()
            + Self::log_density(x, &self.mean_match, &self.var_match);
        let ln = (1.0 - self.weight_match).max(1e-12).ln()
            + Self::log_density(x, &self.mean_nonmatch, &self.var_nonmatch);
        let max = lm.max(ln);
        let em = (lm - max).exp();
        let en = (ln - max).exp();
        em / (em + en)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bimodal_rows() -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        for i in 0..60 {
            let j = (i % 7) as f64 / 70.0;
            if i % 4 == 0 {
                rows.push(vec![0.85 + j, 0.8 + j]);
            } else {
                rows.push(vec![0.15 + j, 0.1 + j]);
            }
        }
        rows
    }

    #[test]
    fn separates_bimodal_data() {
        let rows = bimodal_rows();
        let gmm = TwoComponentGmm::fit(&rows, 40).unwrap();
        assert!(gmm.posterior_match(&[0.9, 0.85]) > 0.9);
        assert!(gmm.posterior_match(&[0.1, 0.12]) < 0.1);
        // ~25% of rows are high
        assert!((gmm.weight_match - 0.25).abs() < 0.15, "{}", gmm.weight_match);
    }

    #[test]
    fn match_component_has_higher_mean() {
        let gmm = TwoComponentGmm::fit(&bimodal_rows(), 40).unwrap();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&gmm.mean_match) > mean(&gmm.mean_nonmatch));
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(TwoComponentGmm::fit(&[], 10).is_none());
        assert!(TwoComponentGmm::fit(&vec![vec![0.5]; 3], 10).is_none());
        assert!(TwoComponentGmm::fit(&vec![vec![]; 10], 10).is_none());
    }

    #[test]
    fn constant_data_stays_finite() {
        let rows = vec![vec![0.5, 0.5]; 20];
        let gmm = TwoComponentGmm::fit(&rows, 20).unwrap();
        let p = gmm.posterior_match(&[0.5, 0.5]);
        assert!(p.is_finite());
    }
}
