//! Embedding-based similarity features for heterogeneous schemas — the
//! strategy the paper recommends when sources share no common attributes
//! (§4.2: "we recommend generating record embeddings based on the available
//! attributes for each data source and calculating similarities between
//! these embeddings"; restated as future work in §7).
//!
//! Records are serialized Ditto-style (missing attributes simply vanish from
//! the text), embedded with hashed n-grams, and compared with cosine at
//! several granularities. The result is a normal [`ErProblem`] whose feature
//! space is schema-free, so the whole MoRER pipeline — distribution
//! analysis, clustering, model reuse — applies unchanged.

use std::collections::HashMap;

use morer_data::record::MultiSourceDataset;
use morer_data::ErProblem;
use morer_embed::serialize::serialize_record;
use morer_embed::{cosine, Embedder, EmbedderConfig};
use morer_ml::dataset::FeatureMatrix;

/// Configuration of the embedding feature space.
#[derive(Debug, Clone)]
pub struct EmbeddingFeatureConfig {
    /// Hash-embedding dimensionality.
    pub dim: usize,
    /// Also emit one cosine per shared attribute (embedding of that
    /// attribute's value alone). `false` = whole-record cosine only.
    pub per_attribute: bool,
}

impl Default for EmbeddingFeatureConfig {
    fn default() -> Self {
        Self { dim: 256, per_attribute: true }
    }
}

/// Build an [`ErProblem`] over `pairs` whose features are embedding cosines
/// instead of attribute-wise string similarities.
///
/// Features: `cos(record)` followed by one `cos(<attribute>)` per schema
/// attribute when `per_attribute` is set (missing values embed to the zero
/// vector, giving cosine 0 — the same "maximally dissimilar" convention as
/// [`morer_sim::MissingValuePolicy::Zero`]).
pub fn embedding_problem(
    id: usize,
    dataset: &MultiSourceDataset,
    sources: (usize, usize),
    pairs: Vec<(u32, u32)>,
    config: &EmbeddingFeatureConfig,
) -> ErProblem {
    let attributes = dataset.schema.attributes().to_vec();
    // fit IDF on the records involved
    let mut uids: Vec<u32> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
    uids.sort_unstable();
    uids.dedup();
    let corpus: Vec<String> = uids
        .iter()
        .map(|&uid| serialize_record(&attributes, &dataset.record(uid).values))
        .collect();
    let embedder = Embedder::fit(EmbedderConfig { dim: config.dim, ..Default::default() }, &corpus);

    // whole-record embeddings
    let record_emb: HashMap<u32, Vec<f32>> = uids
        .iter()
        .zip(&corpus)
        .map(|(&uid, text)| (uid, embedder.embed(text)))
        .collect();
    // per-attribute embeddings
    let attr_emb: Vec<HashMap<u32, Vec<f32>>> = if config.per_attribute {
        (0..attributes.len())
            .map(|a| {
                uids.iter()
                    .map(|&uid| {
                        let value = dataset.record(uid).value(a).unwrap_or("");
                        (uid, embedder.embed(value))
                    })
                    .collect()
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut feature_names = vec!["cos(record)".to_owned()];
    if config.per_attribute {
        feature_names.extend(attributes.iter().map(|a| format!("cos({a})")));
    }
    let mut features = FeatureMatrix::new(feature_names.len());
    let mut labels = Vec::with_capacity(pairs.len());
    for &(a, b) in &pairs {
        let mut row = Vec::with_capacity(feature_names.len());
        row.push(f64::from(cosine(&record_emb[&a], &record_emb[&b])).clamp(0.0, 1.0));
        for per_attr in &attr_emb {
            row.push(f64::from(cosine(&per_attr[&a], &per_attr[&b])).clamp(0.0, 1.0));
        }
        features.push_row(&row);
        labels.push(dataset.is_match(a, b));
    }
    ErProblem { id, sources, pairs, features, labels, feature_names }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::tiny_benchmark;

    #[test]
    fn embedding_problem_mirrors_string_problem_shape() {
        let bench = tiny_benchmark();
        let base = &bench.problems[0];
        let p = embedding_problem(
            base.id,
            &bench.dataset,
            base.sources,
            base.pairs.clone(),
            &EmbeddingFeatureConfig::default(),
        );
        assert_eq!(p.num_pairs(), base.num_pairs());
        assert_eq!(p.labels, base.labels);
        // cos(record) + one per attribute
        assert_eq!(p.num_features(), 1 + bench.dataset.schema.len());
        for f in 0..p.num_features() {
            for v in p.feature_column(f) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn embedding_features_separate_matches() {
        let bench = tiny_benchmark();
        let base = &bench.problems[0];
        let p = embedding_problem(
            0,
            &bench.dataset,
            base.sources,
            base.pairs.clone(),
            &EmbeddingFeatureConfig::default(),
        );
        let match_mean: f64 = {
            let vals: Vec<f64> = (0..p.num_pairs())
                .filter(|&i| p.labels[i])
                .map(|i| p.features.get(i, 0))
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        let nonmatch_mean: f64 = {
            let vals: Vec<f64> = (0..p.num_pairs())
                .filter(|&i| !p.labels[i])
                .map(|i| p.features.get(i, 0))
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        assert!(
            match_mean > nonmatch_mean + 0.1,
            "match {match_mean} vs nonmatch {nonmatch_mean}"
        );
    }

    #[test]
    fn record_only_variant_has_single_feature() {
        let bench = tiny_benchmark();
        let base = &bench.problems[0];
        let p = embedding_problem(
            0,
            &bench.dataset,
            base.sources,
            base.pairs.clone(),
            &EmbeddingFeatureConfig { per_attribute: false, ..Default::default() },
        );
        assert_eq!(p.num_features(), 1);
        assert_eq!(p.feature_names, vec!["cos(record)".to_owned()]);
    }

    #[test]
    fn pipeline_runs_on_embedding_feature_space() {
        use morer_core::prelude::*;
        let bench = tiny_benchmark();
        let cfg = EmbeddingFeatureConfig { dim: 128, per_attribute: true };
        let embedded: Vec<ErProblem> = bench
            .problems
            .iter()
            .map(|p| embedding_problem(p.id, &bench.dataset, p.sources, p.pairs.clone(), &cfg))
            .collect();
        let initial: Vec<&ErProblem> = bench.initial.iter().map(|&i| &embedded[i]).collect();
        let unsolved: Vec<&ErProblem> = bench.unsolved.iter().map(|&i| &embedded[i]).collect();
        let config = MorerConfig { budget: 200, ..MorerConfig::default() };
        let (mut morer, _) = Morer::build(initial, &config);
        let (counts, _) = morer.solve_and_score(&unsolved);
        assert!(counts.f1() > 0.5, "F1 = {}", counts.f1());
    }
}
