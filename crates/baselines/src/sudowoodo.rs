//! SudowoodoSim — contrastive self-supervised ER (Wang et al., ICDE 2023)
//! under the embedding substitution of DESIGN.md §3.
//!
//! Sudowoodo learns a similarity-aware representation with contrastive
//! self-supervision (augmented views of the same record pulled together) and
//! needs only a small labeled set downstream. The stand-in: hashed record
//! embeddings → triplet-trained linear projection on corruption-augmented
//! views → cosine scores → a matching threshold calibrated on the same
//! labeling budget MoRER gets (the paper's semi-supervised variant).

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::{score_problem, BaselineContext, BaselineRun, ErBaseline};
use morer_data::corruption::{corrupt_value, AttributeKind, SourceProfile};
use morer_embed::contrastive::{ContrastiveConfig, ContrastiveProjection};
use morer_embed::serialize::serialize_record;
use morer_embed::{cosine, Embedder, EmbedderConfig};
use morer_ml::metrics::{f1_score, PairCounts};

/// Configuration of the Sudowoodo stand-in.
#[derive(Debug, Clone)]
pub struct SudowoodoConfig {
    /// Embedding dimensionality before projection.
    pub embedding_dim: usize,
    /// Contrastive projection training.
    pub contrastive: ContrastiveConfig,
    /// Cap on self-supervised training pairs (records sampled for views).
    pub max_pretrain_records: usize,
}

impl Default for SudowoodoConfig {
    fn default() -> Self {
        Self {
            embedding_dim: 256,
            contrastive: ContrastiveConfig { epochs: 8, ..Default::default() },
            max_pretrain_records: 4000,
        }
    }
}

/// The Sudowoodo stand-in.
#[derive(Debug, Clone, Default)]
pub struct SudowoodoSim {
    /// Hyperparameters.
    pub config: SudowoodoConfig,
}

impl SudowoodoSim {
    /// Create with the given configuration.
    pub fn new(config: SudowoodoConfig) -> Self {
        Self { config }
    }
}

impl ErBaseline for SudowoodoSim {
    fn name(&self) -> &'static str {
        "sudowoodo"
    }

    fn run(&self, ctx: &BaselineContext<'_>) -> BaselineRun {
        let mut rng = SmallRng::seed_from_u64(ctx.seed);
        let attributes = ctx.dataset.schema.attributes().to_vec();

        // --- corpus + base embeddings -----------------------------------
        let mut uids: Vec<u32> = ctx
            .initial
            .iter()
            .chain(&ctx.unsolved)
            .flat_map(|p| p.pairs.iter().flat_map(|&(a, b)| [a, b]))
            .collect();
        uids.sort_unstable();
        uids.dedup();
        let corpus: Vec<String> = uids
            .iter()
            .map(|&uid| serialize_record(&attributes, &ctx.dataset.record(uid).values))
            .collect();
        let embedder =
            Embedder::fit(EmbedderConfig { dim: self.config.embedding_dim, ..Default::default() }, &corpus);

        // --- self-supervised pretraining on augmented views --------------
        let profile = SourceProfile::noisy();
        let mut pretrain_uids = uids.clone();
        pretrain_uids.shuffle(&mut rng);
        pretrain_uids.truncate(self.config.max_pretrain_records);
        let pairs: Vec<(Vec<f32>, Vec<f32>)> = pretrain_uids
            .iter()
            .map(|&uid| {
                let record = ctx.dataset.record(uid);
                let augmented: Vec<Option<String>> = record
                    .values
                    .iter()
                    .map(|v| {
                        v.as_deref()
                            .and_then(|s| corrupt_value(s, AttributeKind::Text, &profile, &[], &mut rng))
                    })
                    .collect();
                let anchor = embedder.embed(&serialize_record(&attributes, &record.values));
                let view = embedder.embed(&serialize_record(&attributes, &augmented));
                (anchor, view)
            })
            .collect();
        let projection = ContrastiveProjection::train(
            &pairs,
            &ContrastiveConfig { seed: ctx.seed, ..self.config.contrastive.clone() },
        );
        let projected: HashMap<u32, Vec<f32>> = uids
            .par_iter()
            .zip(&corpus)
            .map(|(&uid, text)| (uid, projection.project(&embedder.embed(text))))
            .collect();

        // --- semi-supervised threshold calibration on the budget ---------
        let mut all_rows: Vec<(usize, usize)> = ctx
            .initial
            .iter()
            .enumerate()
            .flat_map(|(pi, p)| (0..p.num_pairs()).map(move |i| (pi, i)))
            .collect();
        all_rows.shuffle(&mut rng);
        all_rows.truncate(ctx.budget);
        let labeled: Vec<(f64, bool)> = all_rows
            .iter()
            .map(|&(pi, i)| {
                let p = ctx.initial[pi];
                let (a, b) = p.pairs[i];
                (f64::from(cosine(&projected[&a], &projected[&b])), p.labels[i])
            })
            .collect();
        let labels_used = labeled.len();
        let threshold = calibrate_threshold(&labeled);

        // --- classification ----------------------------------------------
        let mut counts = PairCounts::new();
        for p in &ctx.unsolved {
            let predictions: Vec<bool> = p
                .pairs
                .par_iter()
                .map(|&(a, b)| f64::from(cosine(&projected[&a], &projected[&b])) >= threshold)
                .collect();
            score_problem(&mut counts, &predictions, p);
        }
        BaselineRun { counts, labels_used }
    }
}

/// Best F1 threshold over a grid of cosine cut points.
fn calibrate_threshold(labeled: &[(f64, bool)]) -> f64 {
    if labeled.is_empty() {
        return 0.8;
    }
    let actual: Vec<bool> = labeled.iter().map(|&(_, l)| l).collect();
    let mut best = (0.8f64, -1.0f64);
    for step in 0..100 {
        let t = step as f64 / 100.0;
        let preds: Vec<bool> = labeled.iter().map(|&(s, _)| s >= t).collect();
        let f1 = f1_score(&preds, &actual);
        if f1 > best.1 {
            best = (t, f1);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{tiny_benchmark, tiny_context};

    #[test]
    fn sudowoodo_runs_and_respects_budget() {
        let bench = tiny_benchmark();
        let ctx = tiny_context(&bench);
        let run = SudowoodoSim::default().run(&ctx);
        assert!(run.labels_used <= ctx.budget);
        assert!(run.counts.total() > 0);
        // self-supervised + threshold: weaker than supervised but not random
        assert!(run.counts.recall() > 0.3, "recall = {}", run.counts.recall());
    }

    #[test]
    fn threshold_calibration_prefers_separating_point() {
        let labeled = vec![
            (0.95, true),
            (0.9, true),
            (0.85, true),
            (0.3, false),
            (0.2, false),
            (0.25, false),
        ];
        let t = calibrate_threshold(&labeled);
        assert!(t > 0.3 && t <= 0.85, "t = {t}");
        assert_eq!(calibrate_threshold(&[]), 0.8);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(SudowoodoSim::default().name(), "sudowoodo");
    }
}
