//! Microbenchmarks of the write-ahead-log subsystem: per-commit append
//! cost (canonical-JSON encode + FNV-1a hash + optional fsync), cold-start
//! recovery replay, compaction, and the durable-ingest overhead a pipeline
//! pays over a purely in-memory one.
//!
//! `cargo run -p morer-bench --release -- quick-bench` prints the same
//! append/replay rates as part of its JSON line, after asserting the
//! replayed state bit-identical to the in-memory snapshot.

use std::path::PathBuf;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use morer_bench::workload::analysis_workload;
use morer_core::config::{MorerConfig, TrainingMode};
use morer_core::pipeline::Morer;
use morer_core::repository::{ClusterEntry, ModelRepository};
use morer_core::wal::{CommitRecord, Durability, Wal, WalOptions};
use morer_data::ErProblem;
use morer_ml::model::{ModelConfig, TrainedModel};

fn bench_config() -> MorerConfig {
    MorerConfig {
        training: TrainingMode::Supervised { fraction: 0.5 },
        model: ModelConfig::GaussianNb,
        seed: 42,
        ..MorerConfig::default()
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("morer_bench_wal_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small trained repository: the entry payload each commit record carries.
fn repository(entries: usize) -> ModelRepository {
    let problems = analysis_workload(entries, 600, 6, 42);
    let entries = problems
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let training = p.to_training_set();
            let model = TrainedModel::train(&ModelConfig::GaussianNb, &training);
            ClusterEntry::new(i, vec![i], model, training, 0)
        })
        .collect();
    ModelRepository { entries }
}

fn record(repo: &ModelRepository, epoch: u64) -> CommitRecord {
    CommitRecord {
        epoch,
        num_entries: repo.entries.len(),
        entries: vec![repo.entries[0].clone()],
        report: None,
    }
}

fn bench_append(c: &mut Criterion) {
    let repo = repository(4);
    let appends = 32usize;
    let mut group = c.benchmark_group("wal_append");
    group.throughput(Throughput::Elements(appends as u64));
    group.sample_size(10);
    for (label, durability) in
        [("buffered", Durability::Buffered), ("fsync", Durability::Fsync)]
    {
        let dir = scratch(label);
        group.bench_function(label, |b| {
            b.iter(|| {
                let _ = std::fs::remove_dir_all(&dir);
                let options = WalOptions { durability, compact_every: 0 };
                let mut wal = Wal::create(&dir, options, &repo, 0).expect("create WAL");
                for i in 0..appends {
                    wal.append(&record(&repo, (i + 1) as u64)).expect("append");
                }
                black_box(wal.state().log_bytes)
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    // group commit: the same records as `fsync`, but every append defers
    // its sync and one final fdatasync covers the whole batch — the
    // throughput headroom the serve writer's group commit exploits
    let dir = scratch("fsync_grouped");
    group.bench_function("fsync_grouped", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let options = WalOptions { durability: Durability::Fsync, compact_every: 0 };
            let mut wal = Wal::create(&dir, options, &repo, 0).expect("create WAL");
            for i in 0..appends {
                wal.append_deferred(&record(&repo, (i + 1) as u64)).expect("deferred append");
            }
            wal.sync().expect("group sync");
            black_box(wal.state().log_bytes)
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let repo = repository(4);
    let appends = 64usize;
    let dir = scratch("recover");
    let options = WalOptions { durability: Durability::Buffered, compact_every: 0 };
    let mut wal = Wal::create(&dir, options, &repo, 0).expect("create WAL");
    for i in 0..appends {
        wal.append(&record(&repo, (i + 1) as u64)).expect("append");
    }
    drop(wal);

    let mut group = c.benchmark_group("wal_recovery");
    group.throughput(Throughput::Elements(appends as u64));
    group.sample_size(10);
    group.bench_function("replay_64_records", |b| {
        b.iter(|| {
            let recovered = Wal::open(&dir, options).expect("recover");
            assert_eq!(recovered.epoch, appends as u64);
            black_box(recovered.repository.entries.len())
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_durable_ingest(c: &mut Criterion) {
    // the end-to-end price of durability: the same arrival stream into an
    // in-memory pipeline, a buffered WAL, and an fsync-acknowledged WAL
    let problems = analysis_workload(20, 600, 6, 42);
    let refs: Vec<&ErProblem> = problems.iter().collect();
    let (base, arrivals) = refs.split_at(16);
    let (seeded, _) = Morer::build(base.to_vec(), &bench_config());
    let seed_repo = seeded.repository();

    let mut group = c.benchmark_group("durable_ingest");
    group.throughput(Throughput::Elements(arrivals.len() as u64));
    group.sample_size(10);
    group.bench_function("in_memory", |b| {
        b.iter(|| {
            let mut morer = Morer::from_repository(seed_repo.clone(), &bench_config());
            for p in arrivals {
                black_box(morer.add_problem(p).unwrap());
            }
            morer.num_models()
        })
    });
    for (label, durability) in
        [("wal_buffered", Durability::Buffered), ("wal_fsync", Durability::Fsync)]
    {
        let dir = scratch(label);
        group.bench_function(label, |b| {
            b.iter(|| {
                let _ = std::fs::remove_dir_all(&dir);
                let mut morer = Morer::from_repository(seed_repo.clone(), &bench_config());
                morer
                    .attach_wal(&dir, WalOptions { durability, compact_every: 0 })
                    .expect("attach WAL");
                for p in arrivals {
                    black_box(morer.add_problem(p).unwrap());
                }
                morer.num_models()
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_compaction(c: &mut Criterion) {
    let repo = repository(4);
    let appends = 64usize;
    let dir = scratch("compact");
    let mut group = c.benchmark_group("wal_compaction");
    group.sample_size(10);
    group.bench_function("fold_64_records", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let options = WalOptions { durability: Durability::Buffered, compact_every: 0 };
            let mut wal = Wal::create(&dir, options, &repo, 0).expect("create WAL");
            for i in 0..appends {
                wal.append(&record(&repo, (i + 1) as u64)).expect("append");
            }
            wal.compact(&repo, appends as u64).expect("compact");
            black_box(wal.state().compactions)
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_replica_catchup(c: &mut Criterion) {
    // a follower's cold catch-up: bootstrap from the base snapshot, then
    // verify-and-apply the whole shipped log through the streaming frame
    // reader (hash check + replay per frame — the `GET /wal` consumer path)
    use morer_core::replication::{FollowerState, SegmentStatus};
    use morer_core::wal::{BASE_FILE, HEADER_LEN, LOG_FILE};

    let repo = repository(4);
    let appends = 64usize;
    let dir = scratch("catchup");
    let options = WalOptions { durability: Durability::Buffered, compact_every: 0 };
    let mut wal = Wal::create(&dir, options, &repo, 0).expect("create WAL");
    for i in 0..appends {
        wal.append(&record(&repo, (i + 1) as u64)).expect("append");
    }
    drop(wal);
    let base = std::fs::read_to_string(dir.join(BASE_FILE)).expect("read base");
    let shipped = std::fs::read(dir.join(LOG_FILE)).expect("read log");
    let frames = &shipped[HEADER_LEN as usize..];

    let mut group = c.benchmark_group("replica_catchup");
    group.throughput(Throughput::Elements(appends as u64));
    group.sample_size(10);
    group.bench_function("base_plus_64_records", |b| {
        b.iter(|| {
            let mut follower = FollowerState::from_base(&base).expect("bootstrap");
            let segment = follower.ingest_segment(HEADER_LEN, frames);
            assert_eq!(segment.status, SegmentStatus::Clean);
            assert_eq!(follower.epoch(), appends as u64);
            black_box(follower.entries().len())
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_append,
    bench_recovery,
    bench_durable_ingest,
    bench_compaction,
    bench_replica_catchup
);
criterion_main!(benches);
