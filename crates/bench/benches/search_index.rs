//! Throughput benchmark of sub-linear model search: solves/second through
//! the two-level `morer_core::index::SearchIndex` (quantized-signature
//! shortlist + pivot/triangle pruning) against the exhaustive `sel_base`
//! scan, across repository sizes P ∈ {8, 100, 500, 2000}.
//!
//! The index is exact — hit-for-hit identical to the exhaustive scan, which
//! this bench asserts on every query before timing anything — so the curves
//! measure pure pruning: the exhaustive path grows linearly in P while the
//! indexed path is dominated by the shortlist (the bound scan is O(P) but
//! ~30 flops/entry against an exact score's ~2000).
//!
//! The acceptance bar is ≥ 10× indexed-over-exhaustive at P = 500
//! (`cargo run -p morer-bench --release -- quick-bench` reports the same
//! comparison as `search_index_speedup` in its JSON line).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use morer_bench::workload::{repository_problems, repository_workload};
use morer_core::distribution::{AnalysisOptions, DistributionTest};
use morer_core::searcher::ModelSearcher;

fn bench_search_index(c: &mut Criterion) {
    let queries = repository_problems(8, 160, 6, 0x9E77);

    for p in [8usize, 100, 500, 2000] {
        let opts = AnalysisOptions::new(DistributionTest::KolmogorovSmirnov, usize::MAX, 42);
        let entries = repository_workload(p, 160, 6, 0x5EA2);
        let searcher = ModelSearcher::new(entries, opts);
        searcher.warm(); // pre-sketches every entry and builds the index

        // recall-1 guard: the indexed path must return exactly the
        // exhaustive winner before its throughput means anything
        for q in &queries {
            assert_eq!(
                searcher.search(q).expect("non-empty repository"),
                searcher.search_exhaustive(q).expect("non-empty repository"),
                "indexed search diverged from exhaustive at P={p}"
            );
        }

        let mut group = c.benchmark_group(format!("search_index_p{p}"));
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.sample_size(10);
        group.bench_function("exhaustive", |b| {
            b.iter(|| {
                for q in &queries {
                    let _ = black_box(searcher.search_exhaustive(q));
                }
            })
        });
        group.bench_function("indexed", |b| {
            b.iter(|| {
                for q in &queries {
                    let _ = black_box(searcher.search(q));
                }
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_search_index);
criterion_main!(benches);
