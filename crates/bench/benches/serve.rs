//! Round-trip benchmarks of the `morer-serve` HTTP layer against the
//! in-process read path it wraps: what does serving a solve over loopback
//! HTTP/1.1 + JSON cost on top of `ModelSearcher::solve`?
//!
//! `cargo run -p morer-bench --release -- quick-bench` prints the matching
//! trajectory numbers (`serve_requests_per_s`, 4 concurrent connections;
//! `serve_reactor_requests_per_s`, the same load with 1024 idle
//! connections parked) after asserting served responses bit-identical to
//! in-process solves.
//!
//! The `high_concurrency` group (ISSUE 9) measures what parked idle
//! keep-alive connections cost each backend: the reactor serves solves at
//! {0, 256, 1024, 4096} parked connections (its slab + timer queue are
//! the only per-connection cost), while the threaded pool is measured at
//! 0 parked plus a *bounded stall probe* — with every worker pinned by an
//! idle connection a solve cannot be answered until a reap frees a
//! worker, and connections beyond the listener backlog (~128) cannot even
//! be accepted, so a {256, 1024, 4096} threaded series is physically
//! unmeasurable. The probe caps the wait at 2 s and reports the cap.

use std::net::TcpStream;
use std::time::Duration;

use criterion::{
    black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
};
use morer_bench::workload::analysis_workload;
use morer_core::config::{MorerConfig, TrainingMode};
use morer_core::distribution::DistributionTest;
use morer_core::pipeline::Morer;
use morer_core::searcher::SolveOutcome;
use morer_data::ErProblem;
use morer_ml::model::ModelConfig;
use morer_serve::{Connection, MorerServer, ServeBackend, ServeConfig};

fn serve_pipeline() -> (Morer, Vec<ErProblem>) {
    let problems = analysis_workload(24, 800, 6, 42);
    let config = MorerConfig {
        training: TrainingMode::Supervised { fraction: 0.5 },
        model: ModelConfig::GaussianNb,
        distribution_test: DistributionTest::KolmogorovSmirnov,
        seed: 42,
        ..MorerConfig::default()
    };
    let refs: Vec<&ErProblem> = problems[..16].iter().collect();
    let (morer, _) = Morer::build(refs, &config);
    (morer, problems[16..].to_vec())
}

fn bench_serve(c: &mut Criterion) {
    let (morer, queries) = serve_pipeline();
    let searcher = morer.searcher().clone();
    searcher.warm();
    let handle = MorerServer::start(morer, &ServeConfig::default()).expect("start server");
    let bodies: Vec<String> = queries
        .iter()
        .map(|q| serde_json::to_string(q).expect("encode problem"))
        .collect();

    // correctness guard before timing anything: served == in-process
    let mut conn = Connection::open(handle.addr()).expect("connect");
    for (q, body) in queries.iter().zip(&bodies) {
        let res = conn.post("/solve", body).expect("solve request");
        assert_eq!(res.status, 200, "{}", res.body);
        let served: SolveOutcome = res.json().expect("decode outcome");
        assert_eq!(served, searcher.solve(q), "served solve diverged from in-process");
    }

    let mut group = c.benchmark_group("serve");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("solve_http_loopback", |b| {
        b.iter(|| {
            for body in &bodies {
                let res = conn.post("/solve", body).expect("solve request");
                black_box(res.body.len());
            }
        })
    });
    // the same solves without the HTTP + JSON round trip — the overhead
    // baseline the served number is judged against
    group.bench_function("solve_inprocess", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(searcher.solve(q).predictions.len());
            }
        })
    });
    group.bench_function("solve_batch_http_one_roundtrip", |b| {
        let batch_body = serde_json::to_string(&queries).expect("encode batch");
        b.iter(|| {
            let res = conn.post("/solve_batch", &batch_body).expect("batch request");
            black_box(res.body.len());
        })
    });
    group.finish();

    // the protocol floor: request parsing + routing + serialization with a
    // trivial handler
    let mut group = c.benchmark_group("serve_overhead");
    group.throughput(Throughput::Elements(1));
    group.bench_function("healthz_roundtrip", |b| {
        b.iter(|| {
            let res = conn.get("/healthz").expect("healthz");
            black_box(res.status);
        })
    });
    group.finish();
    handle.shutdown();
}

/// Solve throughput with idle keep-alive connections parked: the scenario
/// the reactor backend exists for. Parked connections never send a byte;
/// they only hold a connection slot and an idle timer.
fn bench_high_concurrency(c: &mut Criterion) {
    let (morer, queries) = serve_pipeline();
    let searcher = morer.searcher().clone();
    searcher.warm();
    let body = serde_json::to_string(&queries[0]).expect("encode problem");

    let mut group = c.benchmark_group("high_concurrency");
    group.throughput(Throughput::Elements(1));

    // reactor: steady-state solve round trips while {0,256,1024,4096}
    // idle connections sit parked (default 30 s idle deadline — none are
    // reaped during the measurement, so the throughput provably does not
    // come from disconnecting them)
    if cfg!(target_os = "linux") {
        for n_idle in [0usize, 256, 1024, 4096] {
            let cfg = ServeConfig { backend: ServeBackend::Reactor, ..ServeConfig::default() };
            let handle = MorerServer::start(morer.clone(), &cfg).expect("start reactor");
            let addr = handle.addr();
            let parked: Vec<TcpStream> = (0..n_idle)
                .map(|_| TcpStream::connect(addr).expect("park idle connection"))
                .collect();
            let mut conn = Connection::open(addr).expect("connect");
            // correctness guard: parked or not, served == in-process
            let res = conn.post("/solve", &body).expect("solve");
            assert_eq!(res.status, 200, "{}", res.body);
            let served: SolveOutcome = res.json().expect("decode outcome");
            assert_eq!(served, searcher.solve(&queries[0]), "served solve diverged");
            group.bench_with_input(
                BenchmarkId::new("reactor_solve", format!("{n_idle}_idle")),
                &n_idle,
                |b, _| {
                    b.iter(|| {
                        let res = conn.post("/solve", &body).expect("solve");
                        black_box(res.body.len());
                    })
                },
            );
            drop(parked);
            handle.shutdown();
        }
    }

    // threaded baseline at zero parked connections…
    let cfg = ServeConfig {
        backend: ServeBackend::Threaded,
        workers: 4,
        ..ServeConfig::default()
    };
    let handle = MorerServer::start(morer.clone(), &cfg).expect("start threaded");
    let mut conn = Connection::open(handle.addr()).expect("connect");
    group.bench_with_input(BenchmarkId::new("threaded_solve", "0_idle"), &0usize, |b, _| {
        b.iter(|| {
            let res = conn.post("/solve", &body).expect("solve");
            black_box(res.body.len());
        })
    });
    drop(conn);
    handle.shutdown();

    // …and the stall probe: 64 parked connections pin all 4 workers, so a
    // solve cannot be served until an idle reap (30 s away) — the client
    // gives up at 2 s and the reported time is that cap. A fresh server is
    // set up per measurement (setup time excluded).
    group.measurement_time(Duration::from_secs(2));
    group.bench_with_input(
        BenchmarkId::new("threaded_solve", "64_idle_capped_2s"),
        &64usize,
        |b, &n_idle| {
            b.iter_batched(
                || {
                    let handle = MorerServer::start(morer.clone(), &cfg).expect("start threaded");
                    let addr = handle.addr();
                    let parked: Vec<TcpStream> = (0..n_idle)
                        .map(|_| TcpStream::connect(addr).expect("park idle connection"))
                        .collect();
                    (handle, parked)
                },
                |(handle, parked)| {
                    let stalled = Connection::open_timeout(handle.addr(), Duration::from_secs(2))
                        .and_then(|mut conn| conn.post("/solve", &body))
                        .is_err();
                    assert!(stalled, "a fully pinned pool answered a solve without reaping");
                    drop(parked);
                    handle.shutdown();
                },
                criterion::BatchSize::PerIteration,
            )
        },
    );
    group.finish();
}

criterion_group!(benches, bench_serve, bench_high_concurrency);
criterion_main!(benches);
