//! Round-trip benchmarks of the `morer-serve` HTTP layer against the
//! in-process read path it wraps: what does serving a solve over loopback
//! HTTP/1.1 + JSON cost on top of `ModelSearcher::solve`?
//!
//! `cargo run -p morer-bench --release -- quick-bench` prints the matching
//! trajectory number (`serve_requests_per_s`, 4 concurrent connections)
//! after asserting served responses bit-identical to in-process solves.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use morer_bench::workload::analysis_workload;
use morer_core::config::{MorerConfig, TrainingMode};
use morer_core::distribution::DistributionTest;
use morer_core::pipeline::Morer;
use morer_core::searcher::SolveOutcome;
use morer_data::ErProblem;
use morer_ml::model::ModelConfig;
use morer_serve::{Connection, MorerServer, ServeConfig};

fn serve_pipeline() -> (Morer, Vec<ErProblem>) {
    let problems = analysis_workload(24, 800, 6, 42);
    let config = MorerConfig {
        training: TrainingMode::Supervised { fraction: 0.5 },
        model: ModelConfig::GaussianNb,
        distribution_test: DistributionTest::KolmogorovSmirnov,
        seed: 42,
        ..MorerConfig::default()
    };
    let refs: Vec<&ErProblem> = problems[..16].iter().collect();
    let (morer, _) = Morer::build(refs, &config);
    (morer, problems[16..].to_vec())
}

fn bench_serve(c: &mut Criterion) {
    let (morer, queries) = serve_pipeline();
    let searcher = morer.searcher().clone();
    searcher.warm();
    let handle = MorerServer::start(morer, &ServeConfig::default()).expect("start server");
    let bodies: Vec<String> = queries
        .iter()
        .map(|q| serde_json::to_string(q).expect("encode problem"))
        .collect();

    // correctness guard before timing anything: served == in-process
    let mut conn = Connection::open(handle.addr()).expect("connect");
    for (q, body) in queries.iter().zip(&bodies) {
        let res = conn.post("/solve", body).expect("solve request");
        assert_eq!(res.status, 200, "{}", res.body);
        let served: SolveOutcome = res.json().expect("decode outcome");
        assert_eq!(served, searcher.solve(q), "served solve diverged from in-process");
    }

    let mut group = c.benchmark_group("serve");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("solve_http_loopback", |b| {
        b.iter(|| {
            for body in &bodies {
                let res = conn.post("/solve", body).expect("solve request");
                black_box(res.body.len());
            }
        })
    });
    // the same solves without the HTTP + JSON round trip — the overhead
    // baseline the served number is judged against
    group.bench_function("solve_inprocess", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(searcher.solve(q).predictions.len());
            }
        })
    });
    group.bench_function("solve_batch_http_one_roundtrip", |b| {
        let batch_body = serde_json::to_string(&queries).expect("encode batch");
        b.iter(|| {
            let res = conn.post("/solve_batch", &batch_body).expect("batch request");
            black_box(res.body.len());
        })
    });
    group.finish();

    // the protocol floor: request parsing + routing + serialization with a
    // trivial handler
    let mut group = c.benchmark_group("serve_overhead");
    group.throughput(Throughput::Elements(1));
    group.bench_function("healthz_roundtrip", |b| {
        b.iter(|| {
            let res = conn.get("/healthz").expect("healthz");
            black_box(res.status);
        })
    });
    group.finish();
    handle.shutdown();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
