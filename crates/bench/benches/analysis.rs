//! Throughput benchmark of the distribution-analysis hot paths: problem
//! pairs/second through the `G_P` graph build (direct per-pair recomputation
//! vs the once-per-problem `DistributionSketch` path) and solves/second
//! through `sel_base` model search with cached representative sketches.
//!
//! The acceptance bar for the sketching work is ≥ 5× sketched-over-direct on
//! the graph-build workload (`cargo run -p morer-bench --release --
//! quick-bench` prints the same comparison as part of its JSON line).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use morer_bench::workload::analysis_workload;
use morer_core::distribution::{
    build_problem_graph_direct, build_problem_graph_with, AnalysisOptions, DistributionTest,
};
use morer_core::repository::ClusterEntry;
use morer_core::selection::best_entry_for;
use morer_data::ErProblem;
use morer_ml::model::{ModelConfig, TrainedModel};

fn bench_graph_build(c: &mut Criterion) {
    // scaled-down workload so the direct path fits a bench iteration
    // budget; relative throughput is what matters here
    let problems = analysis_workload(16, 800, 6, 42);
    let refs: Vec<&ErProblem> = problems.iter().collect();
    let n_pairs = refs.len() * (refs.len() - 1) / 2;
    let opts = AnalysisOptions::new(DistributionTest::KolmogorovSmirnov, 4000, 42);

    let mut group = c.benchmark_group("analysis_graph_build");
    group.throughput(Throughput::Elements(n_pairs as u64));
    group.sample_size(10);
    group.bench_function("direct", |b| {
        b.iter(|| build_problem_graph_direct(black_box(&refs), &opts, 0.5))
    });
    group.bench_function("sketched", |b| {
        b.iter(|| build_problem_graph_with(black_box(&refs), &opts, 0.5))
    });
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let problems = analysis_workload(8, 800, 6, 7);
    let entries: Vec<ClusterEntry> = problems
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let training = p.to_training_set();
            let model = TrainedModel::train(&ModelConfig::GaussianNb, &training);
            ClusterEntry::new(i, vec![i], model, training, 0)
        })
        .collect();
    let queries = analysis_workload(4, 800, 6, 99);
    let opts = AnalysisOptions::new(DistributionTest::KolmogorovSmirnov, 4000, 42);

    let mut group = c.benchmark_group("analysis_search");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.sample_size(10);
    group.bench_function("sel_base_sketched", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(best_entry_for(q, &entries, &opts));
            }
        })
    });
    // direct reference: cold caches every iteration
    group.bench_function("sel_base_cold_cache", |b| {
        b.iter(|| {
            for e in &entries {
                e.invalidate_sketch();
            }
            for q in &queries {
                black_box(best_entry_for(q, &entries, &opts));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_graph_build, bench_search);
criterion_main!(benches);
