//! Microbenchmarks of the two-sample distribution tests that drive ER
//! problem analysis (paper §4.2).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use morer_stats::tests::{ks_statistic, psi, wasserstein_distance};

fn samples(n: usize, shift: f64) -> (Vec<f64>, Vec<f64>) {
    let a: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
    let b: Vec<f64> = a.iter().map(|x| (x + shift).min(1.0)).collect();
    (a, b)
}

fn bench_tests(c: &mut Criterion) {
    let mut group = c.benchmark_group("distribution_tests");
    for n in [500usize, 4000] {
        let (a, b) = samples(n, 0.1);
        group.bench_with_input(BenchmarkId::new("ks", n), &n, |bch, _| {
            bch.iter(|| ks_statistic(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("wasserstein", n), &n, |bch, _| {
            bch.iter(|| wasserstein_distance(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("psi", n), &n, |bch, _| {
            bch.iter(|| psi(black_box(&a), black_box(&b), 100))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tests);
criterion_main!(benches);
