//! Throughput benchmark of incremental repository construction: per-insert
//! cost of `Morer::add_problem` (O(P) analysis + policy-driven clustering +
//! dirty-tracked retraining) against the strawman of a full `Morer::build`
//! rebuild per arrival.
//!
//! The acceptance bar for the ingest work is ≥ 5× incremental-over-rebuild
//! on the 40-problem repository (`cargo run -p morer-bench --release --
//! quick-bench` prints the same comparison as part of its JSON line, after
//! asserting that `ReclusterPolicy::Always` ingest stays bit-identical to
//! batch construction).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use morer_bench::workload::analysis_workload;
use morer_core::clustering::ReclusterPolicy;
use morer_core::config::{MorerConfig, TrainingMode};
use morer_core::pipeline::Morer;
use morer_data::ErProblem;
use morer_ml::model::ModelConfig;

fn ingest_config(recluster: ReclusterPolicy) -> MorerConfig {
    MorerConfig {
        // supervised + NB keeps training cheap so the bench isolates the
        // construction paths; dirty tracking is exercised all the same
        training: TrainingMode::Supervised { fraction: 0.5 },
        model: ModelConfig::GaussianNb,
        recluster,
        seed: 42,
        ..MorerConfig::default()
    }
}

fn bench_ingest(c: &mut Criterion) {
    // scaled-down workload so the per-insert rebuild fits a bench
    // iteration budget; relative throughput is what matters here
    let problems = analysis_workload(20, 600, 6, 42);
    let refs: Vec<&ErProblem> = problems.iter().collect();
    let (base, arrivals) = refs.split_at(16);

    let mut group = c.benchmark_group("ingest");
    group.throughput(Throughput::Elements(arrivals.len() as u64));
    group.sample_size(10);
    group.bench_function("add_problem_always", |b| {
        b.iter(|| {
            let (mut morer, _) = Morer::build(base.to_vec(), &ingest_config(ReclusterPolicy::Always));
            for p in arrivals {
                black_box(morer.add_problem(p).unwrap());
            }
            morer.num_models()
        })
    });
    group.bench_function("add_problem_never", |b| {
        b.iter(|| {
            let (mut morer, _) = Morer::build(base.to_vec(), &ingest_config(ReclusterPolicy::Never));
            for p in arrivals {
                black_box(morer.add_problem(p).unwrap());
            }
            morer.num_models()
        })
    });
    // the strawman a production service would otherwise pay: rebuild the
    // whole repository from scratch on every arrival
    group.bench_function("full_rebuild_per_insert", |b| {
        b.iter(|| {
            let cfg = ingest_config(ReclusterPolicy::Always);
            let mut n = 0;
            for k in 0..arrivals.len() {
                let all: Vec<&ErProblem> = refs[..base.len() + k + 1].to_vec();
                let (morer, _) = Morer::build(black_box(all), &cfg);
                n = morer.num_models();
            }
            n
        })
    });
    group.finish();
}

fn bench_ingest_batch(c: &mut Criterion) {
    // batched arrivals amortize the recluster + dirty retraining across the
    // whole batch — the add_problems(batch) vs per-problem loop comparison
    let problems = analysis_workload(20, 600, 6, 7);
    let refs: Vec<&ErProblem> = problems.iter().collect();
    let (base, arrivals) = refs.split_at(12);

    let mut group = c.benchmark_group("ingest_batch");
    group.throughput(Throughput::Elements(arrivals.len() as u64));
    group.sample_size(10);
    group.bench_function("add_problems_one_batch", |b| {
        b.iter(|| {
            let (mut morer, _) = Morer::build(base.to_vec(), &ingest_config(ReclusterPolicy::Always));
            black_box(morer.add_problems(arrivals).unwrap());
            morer.num_models()
        })
    });
    group.bench_function("add_problems_one_by_one", |b| {
        b.iter(|| {
            let (mut morer, _) = Morer::build(base.to_vec(), &ingest_config(ReclusterPolicy::Always));
            for p in arrivals {
                black_box(morer.add_problem(p).unwrap());
            }
            morer.num_models()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_ingest_batch);
criterion_main!(benches);
