//! Throughput benchmark of the featurization hot path: pairs/second through
//! `ErProblem` feature generation, cold per-pair string comparison vs the
//! profiled fast path (see `morer_sim::profile`).
//!
//! The acceptance bar for the profiling work is ≥ 5× profiled-over-cold on
//! the 10k-record / 100k-pair workload (`cargo run -p morer-bench --release
//! -- quick-bench` prints the same comparison as a JSON line).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use morer_bench::seed_reference::seed_build_features;
use morer_bench::workload::featurization_workload;
use morer_data::ErProblem;

fn bench_featurization(c: &mut Criterion) {
    // scaled-down workload so the cold path fits a bench iteration budget;
    // relative throughput is what matters here
    let workload = featurization_workload(2_000, 20_000, 42);
    let mut group = c.benchmark_group("featurization");
    group.throughput(Throughput::Elements(workload.pairs.len() as u64));
    group.sample_size(10);
    group.bench_function("seed_strings", |b| {
        b.iter(|| {
            seed_build_features(
                black_box(&workload.dataset),
                &workload.scheme,
                &workload.pairs,
            )
        })
    });
    group.bench_function("cold_strings", |b| {
        b.iter(|| {
            ErProblem::build_cold(
                0,
                black_box(&workload.dataset),
                &workload.scheme,
                (0, 1),
                workload.pairs.clone(),
            )
        })
    });
    group.bench_function("profiled", |b| {
        b.iter(|| {
            ErProblem::build(
                0,
                black_box(&workload.dataset),
                &workload.scheme,
                (0, 1),
                workload.pairs.clone(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_featurization);
criterion_main!(benches);
