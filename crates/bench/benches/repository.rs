//! End-to-end microbenchmarks of repository construction and model search
//! (the operations an ER matching service performs per request).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use morer_core::prelude::*;
use morer_data::{computer, DatasetScale};

fn bench_repository(c: &mut Criterion) {
    let bench = computer(DatasetScale::Tiny, 42);
    let config = MorerConfig { budget: 200, ..MorerConfig::default() };

    let mut group = c.benchmark_group("repository");
    // repository construction trains real models; keep sampling modest
    group.sample_size(10);
    group.bench_function("build_wdc_tiny", |b| {
        b.iter(|| Morer::build(black_box(bench.initial_problems()), &config))
    });

    let (morer, _) = Morer::build(bench.initial_problems(), &config);
    let unsolved = &bench.problems[bench.unsolved[0]];
    group.bench_function("solve_sel_base", |b| {
        b.iter_batched(
            || morer.clone(),
            |mut m| m.solve(black_box(unsolved)),
            criterion::BatchSize::SmallInput,
        )
    });

    // the shared-read path a service would actually serve: no writer clone,
    // warmed caches, `&self` solves
    let searcher = morer.searcher();
    searcher.warm();
    group.bench_function("solve_shared_searcher", |b| {
        b.iter(|| searcher.solve(black_box(unsolved)))
    });
    let batch: Vec<&morer_data::ErProblem> =
        bench.unsolved.iter().map(|&i| &bench.problems[i]).collect();
    group.bench_function("solve_batch_shared_searcher", |b| {
        b.iter(|| searcher.solve_batch(black_box(&batch)))
    });
    group.finish();
}

criterion_group!(benches, bench_repository);
criterion_main!(benches);
