//! Microbenchmarks of classifier training and prediction (the cost centres
//! of model generation and the Bootstrap committee).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use morer_ml::forest::{RandomForest, RandomForestConfig};
use morer_ml::linear::{LogisticRegression, LogisticRegressionConfig};
use morer_ml::tree::{DecisionTree, DecisionTreeConfig};
use morer_ml::TrainingSet;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn training_data(n: usize) -> TrainingSet {
    let mut rng = SmallRng::seed_from_u64(5);
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..5).map(|_| rng.gen::<f64>()).collect();
        labels.push(row.iter().sum::<f64>() / 5.0 > 0.5);
        rows.push(row);
    }
    TrainingSet::from_rows(&rows, &labels)
}

fn bench_training(c: &mut Criterion) {
    let data = training_data(1000);
    let mut group = c.benchmark_group("classifier_fit_1000x5");
    group.bench_function("decision_tree", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            DecisionTree::fit(black_box(&data), &DecisionTreeConfig::default(), &mut rng)
        })
    });
    group.bench_function("random_forest_32", |b| {
        b.iter(|| RandomForest::fit(black_box(&data), &RandomForestConfig::default()))
    });
    group.bench_function("logistic_regression", |b| {
        b.iter(|| LogisticRegression::fit(black_box(&data), &LogisticRegressionConfig::default()))
    });
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let data = training_data(1000);
    let forest = RandomForest::fit(&data, &RandomForestConfig::default());
    let x = [0.4, 0.6, 0.5, 0.7, 0.3];
    c.bench_function("random_forest_predict", |b| {
        b.iter(|| forest.predict_proba(black_box(&x)))
    });
}

criterion_group!(benches, bench_training, bench_prediction);
criterion_main!(benches);
