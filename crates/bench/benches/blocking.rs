//! Microbenchmark of candidate-pair generation (token blocking) on generated
//! product sources.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use morer_data::blocking::{token_blocking, TokenBlockingConfig};
use morer_data::{computer, DatasetScale};

fn bench_blocking(c: &mut Criterion) {
    let bench = computer(DatasetScale::Default, 42);
    let a = &bench.dataset.sources[0].records;
    let b = &bench.dataset.sources[1].records;
    let config = TokenBlockingConfig::default();
    c.bench_function(
        &format!("token_blocking_{}x{}_records", a.len(), b.len()),
        |bch| bch.iter(|| token_blocking(black_box(a), black_box(b), &config)),
    );
}

criterion_group!(benches, bench_blocking);
criterion_main!(benches);
