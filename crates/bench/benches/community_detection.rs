//! Microbenchmarks of the community-detection algorithms on a
//! ring-of-cliques graph (the shape of a well-separated ER problem graph).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use morer_graph::community::{
    label_propagation, leiden, louvain, LabelPropagationConfig, LeidenConfig, LouvainConfig,
};
use morer_graph::Graph;

fn ring_of_cliques(num_cliques: usize, clique_size: usize) -> Graph {
    let n = num_cliques * clique_size;
    let mut g = Graph::new(n);
    for c in 0..num_cliques {
        let base = c * clique_size;
        for i in 0..clique_size {
            for j in (i + 1)..clique_size {
                g.add_edge(base + i, base + j, 0.9);
            }
        }
        let next = ((c + 1) % num_cliques) * clique_size;
        g.add_edge(base, next, 0.3);
    }
    g
}

fn bench_community(c: &mut Criterion) {
    // ~ the size of the Dexter ER problem graph (276 nodes)
    let g = ring_of_cliques(28, 10);
    let mut group = c.benchmark_group("community_detection_280_nodes");
    group.bench_function("leiden", |b| {
        b.iter(|| leiden(black_box(&g), &LeidenConfig::default()))
    });
    group.bench_function("louvain", |b| {
        b.iter(|| louvain(black_box(&g), &LouvainConfig::default()))
    });
    group.bench_function("label_propagation", |b| {
        b.iter(|| label_propagation(black_box(&g), &LabelPropagationConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_community);
criterion_main!(benches);
