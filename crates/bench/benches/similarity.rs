//! Microbenchmarks of the similarity kernels (the innermost loop of feature
//! vector generation).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use morer_sim::string_sim::{jaccard_tokens, jaro_winkler, levenshtein_sim, monge_elkan};
use morer_sim::{AttributeComparator, ComparisonScheme, SimilarityFunction};

const A: &str = "Canon EOS-750D Professional DSLR Camera 24 MP";
const B: &str = "canon eos 750d dslr camera professional kit";

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    group.bench_function("jaccard_tokens", |b| {
        b.iter(|| jaccard_tokens(black_box(A), black_box(B)))
    });
    group.bench_function("levenshtein", |b| {
        b.iter(|| levenshtein_sim(black_box(A), black_box(B)))
    });
    group.bench_function("jaro_winkler", |b| {
        b.iter(|| jaro_winkler(black_box(A), black_box(B)))
    });
    group.bench_function("monge_elkan", |b| {
        b.iter(|| monge_elkan(black_box(A), black_box(B)))
    });
    group.finish();
}

fn bench_scheme(c: &mut Criterion) {
    let scheme = ComparisonScheme::new()
        .with(AttributeComparator::new(0, "title", SimilarityFunction::JaccardTokens))
        .with(AttributeComparator::new(1, "brand", SimilarityFunction::JaroWinkler))
        .with(AttributeComparator::new(2, "model", SimilarityFunction::Levenshtein))
        .with(AttributeComparator::new(3, "price", SimilarityFunction::NumericDiff));
    let left = vec![
        Some(A.to_owned()),
        Some("Canon".to_owned()),
        Some("EOS-750D".to_owned()),
        Some("699.99".to_owned()),
    ];
    let right = vec![
        Some(B.to_owned()),
        Some("canon".to_owned()),
        Some("EOS750D".to_owned()),
        Some("701.00".to_owned()),
    ];
    c.bench_function("comparison_scheme_4_features", |b| {
        b.iter(|| scheme.compare(black_box(&left), black_box(&right)))
    });
}

criterion_group!(benches, bench_kernels, bench_scheme);
criterion_main!(benches);
