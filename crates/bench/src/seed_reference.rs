//! Verbatim copies of the **seed** similarity implementations (commit
//! 3b2e080), used only by `quick-bench` as the "seed per-pair path"
//! baseline the profiling speedup is measured against.
//!
//! These keep the seed's redundancies on purpose: `levenshtein_sim`
//! normalizes its inputs and `levenshtein_distance` normalizes them again,
//! `jaro_winkler` re-normalizes for the prefix, and every token coefficient
//! re-runs `words()` + `token_set()` per call. Do not "fix" them — their
//! waste *is* the baseline. The satellite cleanups in `morer_sim` preserve
//! these functions' outputs bit-for-bit (asserted in `quick_bench`), they
//! only remove the recomputation.

#![allow(dead_code)]

use morer_data::record::MultiSourceDataset;
use morer_ml::dataset::FeatureMatrix;
use morer_sim::numeric::{date_sim, normalized_diff_sim, parse_numeric, year_sim};
use morer_sim::{ComparisonScheme, MissingValuePolicy, SimilarityFunction};

/// Seed `clamp_unit`.
#[inline]
fn clamp_unit(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x.clamp(0.0, 1.0)
    }
}

/// Normalize a raw attribute value: lowercase and collapse every
/// non-alphanumeric run into a single space.
///
/// This is the canonical preprocessing applied before word tokenization so
/// that `"Ultra-HD  Smart TV!"` and `"ultra hd smart tv"` compare equal.
fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Split a string into lowercase word tokens (alphanumeric runs).
fn words(s: &str) -> Vec<String> {
    normalize(s)
        .split(' ')
        .filter(|t| !t.is_empty())
        .map(str::to_owned)
        .collect()
}

/// Produce the multiset of character q-grams of `s` (as byte-window strings
/// over the normalized form).
///
/// When `padded` is true the string is framed with `q - 1` leading `#` and
/// trailing `$` sentinel characters, which gives extra weight to matching
/// prefixes/suffixes — the classic Febrl behaviour.
fn qgrams(s: &str, q: usize, padded: bool) -> Vec<String> {
    assert!(q >= 1, "q-gram size must be at least 1");
    let norm = normalize(s);
    let mut chars: Vec<char> = Vec::with_capacity(norm.len() + 2 * (q - 1));
    if padded {
        chars.extend(std::iter::repeat_n('#', q - 1));
    }
    chars.extend(norm.chars());
    if padded {
        chars.extend(std::iter::repeat_n('$', q - 1));
    }
    if chars.len() < q {
        if chars.is_empty() {
            return Vec::new();
        }
        return vec![chars.iter().collect()];
    }
    chars.windows(q).map(|w| w.iter().collect()).collect()
}

/// Sorted, deduplicated token set — the representation used by the set-based
/// similarity coefficients.
fn token_set(tokens: &[String]) -> Vec<&str> {
    let mut set: Vec<&str> = tokens.iter().map(String::as_str).collect();
    set.sort_unstable();
    set.dedup();
    set
}

/// Size of the intersection of two *sorted deduplicated* slices.
fn sorted_intersection_len(a: &[&str], b: &[&str]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}


/// Jaccard coefficient over word token sets: `|A ∩ B| / |A ∪ B|`.
///
/// This is the function the paper illustrates in Fig. 2 (`jaccard(title)`).
fn jaccard_tokens(a: &str, b: &str) -> f64 {
    let (ta, tb) = (words(a), words(b));
    let (sa, sb) = (token_set(&ta), token_set(&tb));
    set_jaccard(&sa, &sb)
}

/// Jaccard coefficient over character q-gram sets.
fn jaccard_qgrams(a: &str, b: &str, q: usize) -> f64 {
    let (ga, gb) = (qgrams(a, q, true), qgrams(b, q, true));
    let (sa, sb) = (token_set(&ga), token_set(&gb));
    set_jaccard(&sa, &sb)
}

/// Sørensen–Dice coefficient over word token sets: `2|A ∩ B| / (|A| + |B|)`.
fn dice_tokens(a: &str, b: &str) -> f64 {
    let (ta, tb) = (words(a), words(b));
    let (sa, sb) = (token_set(&ta), token_set(&tb));
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sorted_intersection_len(&sa, &sb) as f64;
    clamp_unit(2.0 * inter / (sa.len() + sb.len()) as f64)
}

/// Overlap coefficient over word token sets: `|A ∩ B| / min(|A|, |B|)`.
fn overlap_tokens(a: &str, b: &str) -> f64 {
    let (ta, tb) = (words(a), words(b));
    let (sa, sb) = (token_set(&ta), token_set(&tb));
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sorted_intersection_len(&sa, &sb) as f64;
    clamp_unit(inter / sa.len().min(sb.len()) as f64)
}

/// Cosine similarity over binary word token vectors:
/// `|A ∩ B| / sqrt(|A| · |B|)`.
fn cosine_tokens(a: &str, b: &str) -> f64 {
    let (ta, tb) = (words(a), words(b));
    let (sa, sb) = (token_set(&ta), token_set(&tb));
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sorted_intersection_len(&sa, &sb) as f64;
    clamp_unit(inter / ((sa.len() as f64) * (sb.len() as f64)).sqrt())
}

fn set_jaccard(sa: &[&str], sb: &[&str]) -> f64 {
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sorted_intersection_len(sa, sb);
    let union = sa.len() + sb.len() - inter;
    clamp_unit(inter as f64 / union as f64)
}

/// Raw Levenshtein edit distance between the normalized forms of `a` and `b`.
///
/// Uses the classic two-row dynamic program, O(|a|·|b|) time and O(min) space.
fn levenshtein_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = normalize(a).chars().collect();
    let b: Vec<char> = normalize(b).chars().collect();
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalized Levenshtein similarity: `1 − dist / max(|a|, |b|)`.
fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let na = normalize(a);
    let nb = normalize(b);
    let max_len = na.chars().count().max(nb.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    clamp_unit(1.0 - levenshtein_distance(a, b) as f64 / max_len as f64)
}

/// Jaro similarity between the normalized forms of `a` and `b`.
fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = normalize(a).chars().collect();
    let b: Vec<char> = normalize(b).chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                matches_a.push(*ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(b_used.iter())
        .filter_map(|(c, used)| used.then_some(*c))
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    let t = transpositions as f64;
    clamp_unit((m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0)
}

/// Jaro-Winkler similarity with the standard prefix scale of 0.1 and a
/// maximum common-prefix credit of 4 characters.
fn jaro_winkler(a: &str, b: &str) -> f64 {
    let base = jaro(a, b);
    let na: Vec<char> = normalize(a).chars().collect();
    let nb: Vec<char> = normalize(b).chars().collect();
    let prefix = na
        .iter()
        .zip(nb.iter())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    clamp_unit(base + prefix * 0.1 * (1.0 - base))
}

/// Longest common substring similarity: `|lcs| / min(|a|, |b|)` on the
/// normalized forms.
fn lcs_substring_sim(a: &str, b: &str) -> f64 {
    let a: Vec<char> = normalize(a).chars().collect();
    let b: Vec<char> = normalize(b).chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut best = 0usize;
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for ca in &a {
        for (j, cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb { prev[j] + 1 } else { 0 };
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    clamp_unit(best as f64 / a.len().min(b.len()) as f64)
}

/// Monge-Elkan similarity: for each token of `a`, the best Jaro-Winkler match
/// among the tokens of `b`, averaged; symmetrized by taking the mean of both
/// directions.
fn monge_elkan(a: &str, b: &str) -> f64 {
    let ta = words(a);
    let tb = words(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let dir = |xs: &[String], ys: &[String]| -> f64 {
        xs.iter()
            .map(|x| {
                ys.iter()
                    .map(|y| jaro_winkler(x, y))
                    .fold(0.0f64, f64::max)
            })
            .sum::<f64>()
            / xs.len() as f64
    };
    clamp_unit((dir(&ta, &tb) + dir(&tb, &ta)) / 2.0)
}

/// Exact-match similarity on normalized forms: `1.0` if equal, else `0.0`.
fn exact(a: &str, b: &str) -> f64 {
    if normalize(a) == normalize(b) {
        1.0
    } else {
        0.0
    }
}

/// Smith-Waterman local-alignment similarity with the classic record-linkage
/// scoring (match +2, mismatch −1, gap −1), normalized by the best possible
/// score of the shorter string: `best_local_score / (2 · min(|a|, |b|))`.
///
/// Rewards long shared substrings even when embedded in unrelated context —
/// useful for titles that wrap a common product name in vendor boilerplate.
fn smith_waterman(a: &str, b: &str) -> f64 {
    const MATCH: i32 = 2;
    const MISMATCH: i32 = -1;
    const GAP: i32 = -1;
    let a: Vec<char> = normalize(a).chars().collect();
    let b: Vec<char> = normalize(b).chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut prev = vec![0i32; b.len() + 1];
    let mut cur = vec![0i32; b.len() + 1];
    let mut best = 0i32;
    for ca in &a {
        for (j, cb) in b.iter().enumerate() {
            let diag = prev[j] + if ca == cb { MATCH } else { MISMATCH };
            let up = prev[j + 1] + GAP;
            let left = cur[j] + GAP;
            cur[j + 1] = diag.max(up).max(left).max(0);
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0;
    }
    let denom = (MATCH as f64) * a.len().min(b.len()) as f64;
    clamp_unit(best as f64 / denom)
}


/// Seed `SimilarityFunction::apply` (dispatch to the seed implementations).
fn seed_apply(function: SimilarityFunction, a: &str, b: &str) -> f64 {
    match function {
        SimilarityFunction::JaccardTokens => jaccard_tokens(a, b),
        SimilarityFunction::JaccardQgrams(q) => jaccard_qgrams(a, b, q),
        SimilarityFunction::DiceTokens => dice_tokens(a, b),
        SimilarityFunction::OverlapTokens => overlap_tokens(a, b),
        SimilarityFunction::CosineTokens => cosine_tokens(a, b),
        SimilarityFunction::Levenshtein => levenshtein_sim(a, b),
        SimilarityFunction::JaroWinkler => jaro_winkler(a, b),
        SimilarityFunction::LcsSubstring => lcs_substring_sim(a, b),
        SimilarityFunction::MongeElkan => monge_elkan(a, b),
        SimilarityFunction::Exact => exact(a, b),
        SimilarityFunction::NumericDiff => match (parse_numeric(a), parse_numeric(b)) {
            (Some(x), Some(y)) => normalized_diff_sim(x, y),
            _ => 0.0,
        },
        SimilarityFunction::Year => match (parse_numeric(a), parse_numeric(b)) {
            (Some(x), Some(y)) => year_sim(x as i32, y as i32),
            _ => 0.0,
        },
        SimilarityFunction::SmithWaterman => smith_waterman(a, b),
        SimilarityFunction::Date { tolerance_days } => date_sim(a, b, f64::from(tolerance_days)),
    }
}

/// Seed `ErProblem::build` feature loop: per-pair string comparison with the
/// seed similarity functions. Returns the feature matrix only (labels are
/// not part of the hot path).
pub fn seed_build_features(
    dataset: &MultiSourceDataset,
    scheme: &ComparisonScheme,
    pairs: &[(u32, u32)],
) -> FeatureMatrix {
    let mut features = FeatureMatrix::new(scheme.num_features());
    for &(a, b) in pairs {
        let ra = dataset.record(a);
        let rb = dataset.record(b);
        let row: Vec<f64> = scheme
            .comparators()
            .iter()
            .map(|c| {
                match (
                    ra.values[c.attribute].as_deref(),
                    rb.values[c.attribute].as_deref(),
                ) {
                    (Some(x), Some(y)) => seed_apply(c.function, x, y),
                    _ => match c.missing {
                        MissingValuePolicy::Zero => 0.0,
                        MissingValuePolicy::Constant(v) => v.clamp(0.0, 1.0),
                    },
                }
            })
            .collect();
        features.push_row(&row);
    }
    features
}
