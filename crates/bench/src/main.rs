//! `repro` — regenerate every table and figure of the MoRER paper.
//!
//! ```text
//! cargo run -p morer-bench --release -- <command> [options]
//!
//! commands:
//!   table2              dataset statistics
//!   table3              parameter overview
//!   table4              linkage quality comparison (P/R/F1)
//!   table5              speedup factors
//!   fig2                per-problem similarity histograms (WDC, jaccard(title))
//!   fig5                runtime comparison with analysis/selection breakdown
//!   fig6                distribution tests x AL methods x budgets
//!   fig7                selection strategies sel_base vs sel_cov
//!   ablate-clustering   Leiden vs Louvain vs label propagation vs Girvan-Newman
//!   ablate-weighting    stddev feature weighting on/off
//!   ablate-uniqueness   Bootstrap uniqueness score on/off
//!   ablate-budget       budget sweep for MoRER+Bootstrap
//!   ablate-stability    cluster stability vs model performance (§7 future work)
//!   ablate-ratio-init   50% vs 30% initial problem split
//!   all                 everything above
//!
//! options:
//!   --scale tiny|default|paper   dataset scale (default: default)
//!   --datasets a,b,c             subset of dexter,wdc,music
//!   --budgets n,n,n              label budgets (default: 1000,1500,2000)
//!   --seed n                     master seed (default: 42)
//! ```

mod ablations;
mod figures;
mod runs;
mod tables;

use morer_data::DatasetScale;

/// Parsed command-line options.
pub struct Options {
    pub scale: DatasetScale,
    pub datasets: Vec<String>,
    pub budgets: Vec<usize>,
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: DatasetScale::Default,
            datasets: vec!["dexter".into(), "wdc".into(), "music".into()],
            budgets: vec![1000, 1500, 2000],
            seed: 42,
        }
    }
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => DatasetScale::Tiny,
                    Some("default") => DatasetScale::Default,
                    Some("paper") => DatasetScale::Paper,
                    Some(other) => {
                        if let Ok(f) = other.parse::<f64>() {
                            DatasetScale::Custom(f)
                        } else {
                            eprintln!("unknown scale {other:?}; using default");
                            DatasetScale::Default
                        }
                    }
                    None => DatasetScale::Default,
                };
            }
            "--datasets" => {
                i += 1;
                if let Some(v) = args.get(i) {
                    opts.datasets = v.split(',').map(str::to_owned).collect();
                }
            }
            "--budgets" => {
                i += 1;
                if let Some(v) = args.get(i) {
                    opts.budgets = v.split(',').filter_map(|s| s.parse().ok()).collect();
                }
            }
            "--seed" => {
                i += 1;
                if let Some(v) = args.get(i) {
                    opts.seed = v.parse().unwrap_or(42);
                }
            }
            other => eprintln!("ignoring unknown option {other:?}"),
        }
        i += 1;
    }
    opts
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    let opts = parse_options(&args[1.min(args.len())..]);

    match command {
        "table2" => tables::table2(&opts),
        "table3" => tables::table3(),
        "table4" => {
            let matrix = runs::run_matrix(&opts);
            tables::table4(&matrix);
        }
        "table5" => {
            let matrix = runs::run_matrix(&opts);
            tables::table5(&matrix);
        }
        "fig2" => figures::fig2(&opts),
        "fig5" => {
            let matrix = runs::run_matrix(&opts);
            figures::fig5(&matrix);
        }
        "fig6" => figures::fig6(&opts),
        "fig7" => figures::fig7(&opts),
        "ablate-clustering" => ablations::clustering(&opts),
        "ablate-weighting" => ablations::weighting(&opts),
        "ablate-uniqueness" => ablations::uniqueness(&opts),
        "ablate-budget" => ablations::budget_sweep(&opts),
        "ablate-stability" => ablations::stability(&opts),
        "ablate-ratio-init" => ablations::ratio_init(&opts),
        "quick-bench" => quick_bench(opts.seed),
        "all" => {
            tables::table2(&opts);
            tables::table3();
            figures::fig2(&opts);
            let matrix = runs::run_matrix(&opts);
            tables::table4(&matrix);
            tables::table5(&matrix);
            figures::fig5(&matrix);
            figures::fig6(&opts);
            figures::fig7(&opts);
            ablations::clustering(&opts);
            ablations::weighting(&opts);
            ablations::uniqueness(&opts);
            ablations::budget_sweep(&opts);
            ablations::stability(&opts);
            ablations::ratio_init(&opts);
        }
        _ => {
            println!(
                "usage: repro <table2|table3|table4|table5|fig2|fig5|fig6|fig7|\
                 ablate-clustering|ablate-weighting|ablate-uniqueness|ablate-budget|all> \
                 [--scale tiny|default|paper] [--datasets dexter,wdc,music] \
                 [--budgets 1000,1500,2000] [--seed 42]; \
                 also: ablate-stability, ablate-ratio-init, quick-bench"
            );
        }
    }
}

/// `cargo bench`-free throughput check: one JSON line for trajectory
/// tracking, covering featurization (10k records, ~100k candidate pairs),
/// the distribution-analysis graph build (40 problems → 780 `sim_p` pairs,
/// direct vs sketched), `sel_base` model search (solves/second with
/// cached representative sketches) — single-threaded
/// (`search_solves_per_s`) and through one shared `ModelSearcher` hammered
/// by scoped threads (`search_solves_per_s_mt`) — the two-level search
/// index on a 500-entry repository (`search_indexed_per_s` /
/// `search_index_speedup` over the exhaustive scan, asserted hit-for-hit
/// identical first; `index_shortlist_frac` is the fraction of entries that
/// needed exact scoring) — incremental ingest
/// into a 40-problem repository (`ingest_problems_per_s` /
/// `ingest_speedup` of `add_problem` over a per-insert full rebuild) —
/// the deployed serving layer (`serve_requests_per_s`: 4 loopback
/// connections hammering `morer-serve`'s `/solve` on a warmed snapshot,
/// with `serve_p99_micros` the server's own p99 for that load read back
/// from its lock-free latency histograms, and `metrics_record_ns` the
/// budget-asserted cost of one observability record on the request path;
/// `serve_reactor_requests_per_s`: the same load on the reactor backend
/// with 1024 idle keep-alive connections parked — `serve_concurrent_conns`
/// is the peak open-connection gauge and `serve_idle_conn_reap_ms` how far
/// past its idle deadline a 256-connection parked cohort was fully
/// reaped) —
/// and the durability subsystem (`wal_appends_per_s` fsync'd commit-log
/// appends, `wal_appends_per_s_grouped` deferred appends sharing one
/// group-commit sync, `recovery_replay_s` cold-start log replay,
/// `replica_catchup_records_per_s` follower bootstrap-plus-tail over the
/// shipped log with `replica_lag_epochs` the post-catch-up lag,
/// `serve_durable_ingest_per_s` fsync-acknowledged `/ingest` round trips).
/// Every fast path is asserted against its reference implementation before
/// being timed: the multi-threaded search results must equal the
/// single-threaded ones, the indexed search must return exactly the
/// exhaustive winner on every query, the incrementally ingested repository must be
/// bit-identical to batch construction after every arrival, every served
/// solve response must decode bit-identical to its in-process equivalent,
/// the replayed write-ahead log (per-commit and group-commit alike) must
/// reproduce the in-memory snapshot byte-for-byte, and the caught-up
/// follower must be bit-identical to the recovered writer.
///
/// ```text
/// cargo run -p morer-bench --release -- quick-bench
/// ```
fn quick_bench(seed: u64) {
    use morer_data::{profile_dataset, ErProblem};
    use morer_bench::workload::featurization_workload;
    use std::time::Instant;

    let workload = featurization_workload(5_000, 100_000, seed);
    let pairs = workload.pairs.len();

    // warm-up + correctness guard: both paths must agree bit-for-bit
    let fast = ErProblem::build(
        0,
        &workload.dataset,
        &workload.scheme,
        (0, 1),
        workload.pairs.clone(),
    );

    let start = Instant::now();
    let cold = ErProblem::build_cold(
        0,
        &workload.dataset,
        &workload.scheme,
        (0, 1),
        workload.pairs.clone(),
    );
    let cold_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let profiled = ErProblem::build(
        0,
        &workload.dataset,
        &workload.scheme,
        (0, 1),
        workload.pairs.clone(),
    );
    let profiled_s = start.elapsed().as_secs_f64();

    // the seed's per-pair string path (verbatim seed similarity functions,
    // double normalization and all) — the baseline the ≥5× bar refers to
    let start = Instant::now();
    let seed_features = morer_bench::seed_reference::seed_build_features(
        &workload.dataset,
        &workload.scheme,
        &workload.pairs,
    );
    let seed_s = start.elapsed().as_secs_f64();

    // breakdown: one-off profiling cost vs pure pair featurization
    let start = Instant::now();
    let profiles = profile_dataset(&workload.dataset, workload.scheme.profile_spec());
    let profile_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let shared = ErProblem::build_with_profiles(
        0,
        &workload.dataset,
        &workload.scheme,
        (0, 1),
        workload.pairs.clone(),
        &profiles,
    );
    let featurize_s = start.elapsed().as_secs_f64();

    assert_eq!(fast.features, cold.features, "fast path diverged from cold path");
    assert_eq!(profiled.features, cold.features, "profiled rerun diverged");
    assert_eq!(shared.features, cold.features, "shared-profile path diverged");
    assert_eq!(seed_features, cold.features, "seed reference diverged");

    let seed_rate = pairs as f64 / seed_s;
    let cold_rate = pairs as f64 / cold_s;
    let profiled_rate = pairs as f64 / profiled_s;

    // --- distribution analysis: direct vs sketched graph build ------------
    use morer_bench::workload::analysis_workload;
    use morer_core::distribution::{
        build_problem_graph_direct, build_problem_graph_sketched, problem_similarity_with,
        AnalysisOptions, DistributionTest,
    };
    use morer_core::repository::ClusterEntry;
    use morer_core::selection::best_entry_for;
    use morer_ml::model::{ModelConfig, TrainedModel};

    let an_problems = analysis_workload(40, 2000, 6, seed);
    let an_refs: Vec<&ErProblem> = an_problems.iter().collect();
    let an_pairs = an_refs.len() * (an_refs.len() - 1) / 2;
    // uncapped sample size: the sketched and direct `sim_p` must agree
    // bit-for-bit (subsampling is the one sanctioned divergence)
    let an_opts =
        AnalysisOptions::new(DistributionTest::KolmogorovSmirnov, usize::MAX, seed);

    let start = Instant::now();
    let direct_graph = build_problem_graph_direct(&an_refs, &an_opts, 0.0);
    let analysis_direct_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let (sketched_graph, _sketches) = build_problem_graph_sketched(&an_refs, &an_opts, 0.0);
    let analysis_sketched_s = start.elapsed().as_secs_f64();

    for i in 0..an_refs.len() {
        for j in (i + 1)..an_refs.len() {
            assert_eq!(
                sketched_graph.edge_weight(i, j),
                direct_graph.edge_weight(i, j),
                "sketched sim_p diverged from direct at pair ({i},{j})"
            );
        }
    }

    // --- model search: solves/second through cached entry sketches --------
    let entries: Vec<ClusterEntry> = an_problems[..8]
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let training = p.to_training_set();
            let model = TrainedModel::train(&ModelConfig::GaussianNb, &training);
            ClusterEntry::new(i, vec![i], model, training, 0)
        })
        .collect();
    let queries: Vec<&ErProblem> = an_problems[8..24].iter().collect();

    // warm-up + correctness guard: the sketched search must agree with
    // direct per-entry scoring under the same per-entry seeds
    for q in &queries {
        let best = best_entry_for(q, &entries, &an_opts).expect("non-empty repository");
        let direct_best = entries
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let entry_opts = an_opts.for_entry(i);
                (i, problem_similarity_with(*q, e.representative_features(), &entry_opts))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("non-empty repository");
        assert_eq!(best, direct_best, "sketched search diverged from direct scoring");
    }

    let rounds = 3usize;
    let start = Instant::now();
    let mut sink = 0usize;
    for _ in 0..rounds {
        for q in &queries {
            sink += best_entry_for(q, &entries, &an_opts).expect("non-empty repository").0;
        }
    }
    let search_s = start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    let search_solves = rounds * queries.len();

    // --- multi-threaded model search through the shared searcher ----------
    // the service-grade read path: one immutable ModelSearcher shared by
    // scoped worker threads, each issuing `&self` searches
    use morer_core::searcher::ModelSearcher;
    let searcher = ModelSearcher::new(entries, an_opts);
    searcher.warm();
    // correctness guard: concurrent shared-searcher results must equal the
    // single-threaded reference (entry choice and similarity, bit-for-bit)
    let st_hits: Vec<_> = queries
        .iter()
        .map(|q| searcher.search(q).expect("non-empty repository"))
        .collect();
    let batched = searcher.solve_batch(&queries);
    for (hit, outcome) in st_hits.iter().zip(&batched) {
        assert_eq!(Some(hit.entry_id), outcome.entry, "solve_batch diverged from search");
        assert_eq!(hit.similarity, outcome.similarity, "solve_batch similarity diverged");
    }
    let mt_threads = 4usize;
    let start = Instant::now();
    let mt_hit_lists: Vec<Vec<_>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..mt_threads)
            .map(|_| {
                let searcher = &searcher;
                let queries = &queries;
                scope.spawn(move || {
                    let mut hits = Vec::with_capacity(rounds * queries.len());
                    for _ in 0..rounds {
                        for q in queries {
                            hits.push(searcher.search(q).expect("non-empty repository"));
                        }
                    }
                    hits
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("search thread panicked")).collect()
    });
    let search_mt_s = start.elapsed().as_secs_f64();
    for (t, hits) in mt_hit_lists.iter().enumerate() {
        for (k, hit) in hits.iter().enumerate() {
            assert_eq!(
                *hit,
                st_hits[k % queries.len()],
                "thread {t} solve {k}: multi-threaded search diverged from single-threaded"
            );
        }
    }
    let search_solves_mt = mt_threads * rounds * queries.len();

    // --- sub-linear indexed search at repository scale ---------------------
    // the two-level SearchIndex (quantized-signature shortlist + pivot
    // pruning) against the exhaustive scan on a 500-entry repository. The
    // index must return exactly the exhaustive winner — hit-for-hit
    // identity is asserted on every query before any rate is printed —
    // so the speedup is free of any recall trade-off.
    use morer_bench::workload::{repository_problems, repository_workload};

    let scale_p = 500usize;
    let scale_opts =
        AnalysisOptions::new(DistributionTest::KolmogorovSmirnov, usize::MAX, seed);
    let scale_entries = repository_workload(scale_p, 160, 6, seed ^ 0x5EA2);
    let scale_queries = repository_problems(24, 160, 6, seed ^ 0x9E77);
    let scale_searcher = ModelSearcher::new(scale_entries, scale_opts);
    scale_searcher.warm(); // pre-sketches every entry and builds the index
    for q in &scale_queries {
        let indexed = scale_searcher.search(q).expect("non-empty repository");
        let exhaustive =
            scale_searcher.search_exhaustive(q).expect("non-empty repository");
        assert_eq!(indexed, exhaustive, "indexed search diverged from exhaustive");
    }
    let scale_solves = rounds * scale_queries.len();
    let start = Instant::now();
    let mut sink = 0usize;
    for _ in 0..rounds {
        for q in &scale_queries {
            sink += scale_searcher
                .search_exhaustive(q)
                .expect("non-empty repository")
                .entry_id;
        }
    }
    let search_exhaustive_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for _ in 0..rounds {
        for q in &scale_queries {
            sink += scale_searcher.search(q).expect("non-empty repository").entry_id;
        }
    }
    let search_indexed_s = start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    let index_overview =
        scale_searcher.index_overview().expect("warmed searcher has an index");

    // --- incremental ingest vs per-insert full rebuild ---------------------
    // the streaming-construction path: insert arrivals into a 40-problem
    // repository one at a time via `add_problem` (O(P) analysis per insert,
    // dirty-tracked retraining) against the strawman of a full
    // `Morer::build` rebuild per arrival. `ReclusterPolicy::Always` keeps
    // the incremental pipeline bit-identical to batch construction, which
    // is asserted at every step — the speedup number is only printed for a
    // repository proven equal to the rebuilt one.
    use morer_core::config::{MorerConfig, TrainingMode};
    use morer_core::pipeline::Morer;

    let ingest_cfg = MorerConfig {
        // supervised + NB keeps training cheap so the comparison isolates
        // the construction paths; dirty tracking is exercised all the same
        training: TrainingMode::Supervised { fraction: 0.5 },
        model: ModelConfig::GaussianNb,
        seed,
        ..MorerConfig::default()
    };
    let ingest_problems = analysis_workload(44, 2000, 6, seed ^ 0x1261);
    let ingest_refs: Vec<&ErProblem> = ingest_problems.iter().collect();
    let ingest_base = 40usize;
    let ingest_arrivals = ingest_refs.len() - ingest_base;

    let (mut incremental, _) = Morer::build(ingest_refs[..ingest_base].to_vec(), &ingest_cfg);
    let mut ingest_incremental_s = 0.0f64;
    let mut ingest_rebuild_s = 0.0f64;
    for k in 0..ingest_arrivals {
        let start = Instant::now();
        let report = incremental.add_problem(ingest_refs[ingest_base + k]).expect("in-memory ingest cannot fail");
        ingest_incremental_s += start.elapsed().as_secs_f64();
        assert!(report.reclustered, "Always policy must fully recluster");

        let start = Instant::now();
        let (rebuilt, _) = Morer::build(ingest_refs[..ingest_base + k + 1].to_vec(), &ingest_cfg);
        ingest_rebuild_s += start.elapsed().as_secs_f64();

        assert_eq!(
            incremental.repository(),
            rebuilt.repository(),
            "incremental ingest diverged from batch construction at arrival {k}"
        );
    }
    let ingest_rate = ingest_arrivals as f64 / ingest_incremental_s;
    let ingest_speedup = ingest_rebuild_s / ingest_incremental_s;

    // --- loopback model serving: concurrent connections hammering /solve --
    // the deployable read path (morer-serve): the same warmed repository
    // behind the std-only HTTP/1.1 JSON server, driven by 4 loopback
    // connections. Before timing, every served response is asserted
    // bit-identical to the in-process ModelSearcher::solve reference (the
    // vendored serde_json round-trips each f64 exactly).
    use morer_core::searcher::SolveOutcome;
    use morer_serve::{Connection, MorerServer, ServeConfig};

    let serve_cfg = MorerConfig {
        training: TrainingMode::Supervised { fraction: 0.5 },
        model: ModelConfig::GaussianNb,
        analysis_sample_cap: usize::MAX,
        seed,
        ..MorerConfig::default()
    };
    // the served repository is the searcher's, persisted and restored —
    // same entries, same analysis options, so solves must agree bit-for-bit
    let serve_morer = Morer::from_repository(searcher.repository(), &serve_cfg);
    let handle =
        MorerServer::start(serve_morer, &ServeConfig::default()).expect("start morer-serve");
    let bodies: Vec<String> = queries
        .iter()
        .map(|q| serde_json::to_string(q).expect("encode query"))
        .collect();
    let serve_reference: Vec<SolveOutcome> = queries.iter().map(|q| searcher.solve(q)).collect();
    {
        // warm-up + correctness guard on one connection
        let mut conn = Connection::open(handle.addr()).expect("connect to morer-serve");
        for (body, reference) in bodies.iter().zip(&serve_reference) {
            let res = conn.post("/solve", body).expect("solve request");
            assert_eq!(res.status, 200, "serve error: {}", res.body);
            let served: SolveOutcome = res.json().expect("decode outcome");
            assert_eq!(
                &served, reference,
                "served solve diverged from the in-process searcher"
            );
        }
    }
    let serve_conns = 4usize;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..serve_conns {
            let bodies = &bodies;
            let addr = handle.addr();
            scope.spawn(move || {
                let mut conn = Connection::open(addr).expect("connect to morer-serve");
                for _ in 0..rounds {
                    for body in bodies {
                        let res = conn.post("/solve", body).expect("solve request");
                        assert_eq!(res.status, 200, "serve error: {}", res.body);
                    }
                }
            });
        }
    });
    let serve_s = start.elapsed().as_secs_f64();
    let serve_requests = serve_conns * rounds * queries.len();
    // the server's own view of the load just applied: tail latency from
    // the lock-free log-linear histograms behind GET /stats
    let serve_p99_micros = {
        let mut conn = Connection::open(handle.addr()).expect("connect to morer-serve");
        let stats: morer_serve::StatsResponse =
            conn.get("/stats").expect("stats").json().expect("decode stats");
        stats
            .endpoints
            .iter()
            .find(|e| e.endpoint == "solve")
            .map(|e| e.p99_micros)
            .expect("solve endpoint on /stats")
    };
    handle.shutdown();

    // --- observability overhead: one request-path record -------------------
    // the flight-recorder layer's contract (ISSUE 10): recording an
    // observation is a handful of relaxed atomic RMWs — lock-free and
    // allocation-free — budget-asserted so a regression that sneaks a lock
    // or allocation onto the request path fails the bench, not production
    let obs_registry = morer_serve::MetricsRegistry::default();
    let record_iters = 100_000u32;
    let start = Instant::now();
    for i in 0..record_iters {
        obs_registry.record(
            morer_serve::Endpoint::Solve,
            std::time::Duration::from_micros(u64::from(i & 1023)),
            200,
        );
    }
    let metrics_record_ns = start.elapsed().as_nanos() as f64 / f64::from(record_iters);
    assert!(
        metrics_record_ns < 2_000.0,
        "metrics record path regressed: {metrics_record_ns:.0} ns per record (budget 2000 ns)"
    );

    // --- reactor under parked idle connections (ISSUE 9) -----------------
    // the event-driven backend's contract: a solve's cost must not depend
    // on how many idle keep-alive connections are parked. 1024 connections
    // are parked, served solves are re-asserted bit-identical to the
    // in-process reference, and only then is throughput measured — with
    // zero reaps allowed during the measurement, so the capacity provably
    // did not come from disconnecting the parked cohort. A second server
    // with a short idle deadline measures how promptly a parked cohort is
    // reaped (`serve_idle_conn_reap_ms`: cohort reap completion past the
    // configured deadline).
    let (serve_concurrent_conns, serve_reactor_rate, serve_idle_conn_reap_ms);
    if cfg!(target_os = "linux") {
        use morer_serve::{ServeBackend, StatsResponse};
        let reactor_cfg = morer_serve::ServeConfig {
            backend: ServeBackend::Reactor,
            ..morer_serve::ServeConfig::default()
        };
        let reactor_handle = MorerServer::start(
            Morer::from_repository(searcher.repository(), &serve_cfg),
            &reactor_cfg,
        )
        .expect("start reactor morer-serve");
        let addr = reactor_handle.addr();
        let n_parked = 1024usize;
        let parked: Vec<std::net::TcpStream> = (0..n_parked)
            .map(|_| std::net::TcpStream::connect(addr).expect("park idle connection"))
            .collect();
        {
            let mut conn = Connection::open(addr).expect("connect to reactor");
            for (body, reference) in bodies.iter().zip(&serve_reference) {
                let res = conn.post("/solve", body).expect("reactor solve");
                assert_eq!(res.status, 200, "reactor solve error: {}", res.body);
                let served: SolveOutcome = res.json().expect("decode outcome");
                assert_eq!(
                    &served, reference,
                    "reactor solve diverged from the in-process searcher"
                );
            }
            let stats: StatsResponse = conn.get("/stats").expect("stats").json().expect("stats");
            assert!(
                stats.connections.open >= n_parked as u64,
                "parked connections not all open: {:?}",
                stats.connections
            );
        }
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..serve_conns {
                let bodies = &bodies;
                scope.spawn(move || {
                    let mut conn = Connection::open(addr).expect("connect to reactor");
                    for _ in 0..rounds {
                        for body in bodies {
                            let res = conn.post("/solve", body).expect("reactor solve");
                            assert_eq!(res.status, 200, "reactor solve error: {}", res.body);
                        }
                    }
                });
            }
        });
        let reactor_s = start.elapsed().as_secs_f64();
        let (peak, reaped) = {
            let mut conn = Connection::open(addr).expect("connect to reactor");
            let stats: StatsResponse = conn.get("/stats").expect("stats").json().expect("stats");
            (stats.connections.peak, stats.connections.idle_reaped)
        };
        assert_eq!(reaped, 0, "throughput must not come from reaping the parked cohort");
        assert!(peak >= n_parked as u64 + 1);
        drop(parked);
        reactor_handle.shutdown();
        serve_concurrent_conns = peak;
        serve_reactor_rate = serve_requests as f64 / reactor_s;

        // reap promptness: park a cohort against a short idle deadline and
        // time how long past the deadline the last reap lands
        let reap_deadline = std::time::Duration::from_millis(500);
        let reap_handle = MorerServer::start(
            Morer::from_repository(searcher.repository(), &serve_cfg),
            &morer_serve::ServeConfig {
                backend: ServeBackend::Reactor,
                idle_timeout: reap_deadline,
                ..morer_serve::ServeConfig::default()
            },
        )
        .expect("start reap-probe morer-serve");
        let cohort = 256usize;
        let addr = reap_handle.addr();
        let _parked: Vec<std::net::TcpStream> = (0..cohort)
            .map(|_| std::net::TcpStream::connect(addr).expect("park idle connection"))
            .collect();
        let t0 = Instant::now();
        let mut conn = Connection::open(addr).expect("connect to reap probe");
        loop {
            let stats: StatsResponse = conn.get("/stats").expect("stats").json().expect("stats");
            if stats.connections.idle_reaped >= cohort as u64 {
                break;
            }
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(15),
                "parked cohort not reaped: {:?}",
                stats.connections
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        serve_idle_conn_reap_ms =
            t0.elapsed().saturating_sub(reap_deadline).as_secs_f64() * 1e3;
        drop(conn);
        reap_handle.shutdown();
    } else {
        // no epoll shim on this platform: the reactor numbers are absent
        (serve_concurrent_conns, serve_reactor_rate, serve_idle_conn_reap_ms) = (0, 0.0, 0.0);
    }

    // --- durability: WAL appends, recovery replay, fsync-acknowledged serve
    // The write-ahead log's hot loop (canonical-JSON encode + FNV-1a hash +
    // fsync'd append), cold-start recovery replay, and the served `/ingest`
    // path under fsync acknowledgement. Recovery is asserted bit-identical
    // to the in-memory state before any rate is printed.
    use morer_core::wal::{CommitRecord, Durability, Wal, WalOptions};

    let wal_dir = std::env::temp_dir().join(format!("morer_qb_wal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let wal_opts = WalOptions { durability: Durability::Fsync, compact_every: 0 };
    let wal_repo = searcher.repository();
    let mut wal = Wal::create(&wal_dir, wal_opts, &wal_repo, 0).expect("create WAL");
    // each record touches entry 0 and keeps the store length: replaying the
    // whole log must land exactly back on the base state
    let wal_appends = 64usize;
    let start = Instant::now();
    for i in 0..wal_appends {
        let record = CommitRecord {
            epoch: (i + 1) as u64,
            num_entries: wal_repo.entries.len(),
            entries: vec![wal_repo.entries[0].clone()],
            report: None,
        };
        wal.append(&record).expect("append commit record");
    }
    let wal_append_s = start.elapsed().as_secs_f64();
    drop(wal);

    let start = Instant::now();
    let recovered = Wal::open(&wal_dir, wal_opts).expect("recover WAL");
    let recovery_replay_s = start.elapsed().as_secs_f64();
    assert_eq!(recovered.epoch, wal_appends as u64, "every appended epoch must replay");
    assert_eq!(recovered.replayed, wal_appends as u64);
    let canonical = |repo: &morer_core::repository::ModelRepository| {
        let mut buf = Vec::new();
        repo.save_json(&mut buf).expect("encode repository");
        buf
    };
    assert_eq!(
        canonical(&recovered.repository),
        canonical(&wal_repo),
        "log-replay state diverged from the in-memory snapshot"
    );

    // replica catch-up: a follower bootstraps from the base snapshot and
    // applies the whole shipped log through the verified frame reader —
    // bit-identity with the recovered writer is asserted before any rate
    use morer_core::replication::{FollowerState, SegmentStatus};
    use morer_core::wal::{BASE_FILE, HEADER_LEN, LOG_FILE};
    let start = Instant::now();
    let base_text = std::fs::read_to_string(wal_dir.join(BASE_FILE)).expect("read base snapshot");
    let mut follower = FollowerState::from_base(&base_text).expect("bootstrap follower");
    let shipped = std::fs::read(wal_dir.join(LOG_FILE)).expect("read shipped log");
    let segment = follower.ingest_segment(HEADER_LEN, &shipped[HEADER_LEN as usize..]);
    let replica_catchup_s = start.elapsed().as_secs_f64();
    assert_eq!(segment.status, SegmentStatus::Clean, "shipped log must verify frame by frame");
    assert_eq!(segment.applied, wal_appends as u64, "every shipped record must apply");
    assert_eq!(
        canonical(&follower.repository()),
        canonical(&recovered.repository),
        "caught-up follower diverged from the recovered writer"
    );
    let replica_lag_epochs = recovered.epoch - follower.epoch();
    let _ = std::fs::remove_dir_all(&wal_dir);

    // group commit: the same records written through deferred appends that
    // share one final fsync — the throughput the serve writer's group
    // commit buys over per-commit fsync
    let grouped_dir =
        std::env::temp_dir().join(format!("morer_qb_wal_grouped_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&grouped_dir);
    let mut grouped_wal =
        Wal::create(&grouped_dir, wal_opts, &wal_repo, 0).expect("create grouped WAL");
    let start = Instant::now();
    for i in 0..wal_appends {
        let record = CommitRecord {
            epoch: (i + 1) as u64,
            num_entries: wal_repo.entries.len(),
            entries: vec![wal_repo.entries[0].clone()],
            report: None,
        };
        grouped_wal.append_deferred(&record).expect("deferred append");
    }
    grouped_wal.sync().expect("group sync");
    let wal_grouped_s = start.elapsed().as_secs_f64();
    drop(grouped_wal);
    let regrouped = Wal::open(&grouped_dir, wal_opts).expect("recover grouped WAL");
    assert_eq!(regrouped.epoch, wal_appends as u64, "grouped appends must replay");
    assert_eq!(
        canonical(&regrouped.repository),
        canonical(&wal_repo),
        "group-commit replay diverged from per-commit fsync"
    );
    let _ = std::fs::remove_dir_all(&grouped_dir);

    // fsync-acknowledged serving: every `/ingest` reply waits for the
    // commit record to hit disk. A twin replays the same arrivals
    // in-process; after shutdown the served WAL is recovered and must be
    // bit-identical to the twin.
    let serve_wal_dir =
        std::env::temp_dir().join(format!("morer_qb_serve_wal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&serve_wal_dir);
    let durable_handle = MorerServer::start(
        Morer::from_repository(searcher.repository(), &serve_cfg),
        &ServeConfig { wal_dir: Some(serve_wal_dir.clone()), ..ServeConfig::default() },
    )
    .expect("start durable morer-serve");
    let mut durable_twin = Morer::from_repository(searcher.repository(), &serve_cfg);
    let durable_arrivals = &ingest_refs[ingest_base..];
    let start = Instant::now();
    {
        let mut conn =
            Connection::open(durable_handle.addr()).expect("connect to durable morer-serve");
        for p in durable_arrivals {
            let body = serde_json::to_string(p).expect("encode arrival");
            let res = conn.post("/ingest", &body).expect("durable ingest");
            assert_eq!(res.status, 200, "durable ingest error: {}", res.body);
        }
    }
    let serve_durable_ingest_s = start.elapsed().as_secs_f64();
    durable_handle.shutdown();
    for p in durable_arrivals {
        durable_twin.add_problem(p).expect("twin ingest");
    }
    let served_recovery = Morer::open(&serve_wal_dir, &serve_cfg).expect("recover served WAL");
    assert_eq!(served_recovery.epoch(), durable_twin.epoch(), "served epochs must replay");
    assert_eq!(
        canonical(&served_recovery.searcher().repository()),
        canonical(&durable_twin.searcher().repository()),
        "recovered served state diverged from the in-process twin"
    );
    let _ = std::fs::remove_dir_all(&serve_wal_dir);

    let analysis_direct_rate = an_pairs as f64 / analysis_direct_s;
    let analysis_sketched_rate = an_pairs as f64 / analysis_sketched_s;
    println!(
        "{{\"bench\":\"featurization\",\"records\":{},\"pairs\":{},\"features\":{},\
         \"seed_s\":{:.4},\"cold_s\":{:.4},\"profiled_s\":{:.4},\
         \"profile_s\":{:.4},\"featurize_s\":{:.4},\
         \"seed_pairs_per_s\":{:.0},\"cold_pairs_per_s\":{:.0},\"profiled_pairs_per_s\":{:.0},\
         \"speedup_vs_seed\":{:.2},\"speedup_vs_cold\":{:.2},\
         \"analysis_problems\":{},\"analysis_pairs\":{},\
         \"analysis_direct_s\":{:.4},\"analysis_sketched_s\":{:.4},\
         \"analysis_direct_pairs_per_s\":{:.0},\"analysis_pairs_per_s\":{:.0},\
         \"analysis_speedup\":{:.2},\
         \"search_entries\":{},\"search_solves\":{},\"search_s\":{:.4},\
         \"search_solves_per_s\":{:.1},\
         \"search_threads_mt\":{},\"search_solves_mt\":{},\"search_mt_s\":{:.4},\
         \"search_solves_per_s_mt\":{:.1},\
         \"search_scale_entries\":{},\"search_scale_solves\":{},\
         \"search_exhaustive_s\":{:.4},\"search_indexed_s\":{:.4},\
         \"search_exhaustive_per_s\":{:.1},\"search_indexed_per_s\":{:.1},\
         \"search_index_speedup\":{:.2},\"index_shortlist_frac\":{:.4},\
         \"ingest_repository\":{},\"ingest_arrivals\":{},\
         \"ingest_incremental_s\":{:.4},\"ingest_rebuild_s\":{:.4},\
         \"ingest_problems_per_s\":{:.1},\"ingest_speedup\":{:.2},\
         \"serve_connections\":{},\"serve_requests\":{},\"serve_s\":{:.4},\
         \"serve_requests_per_s\":{:.1},\
         \"serve_p99_micros\":{},\"metrics_record_ns\":{:.1},\
         \"serve_concurrent_conns\":{},\"serve_reactor_requests_per_s\":{:.1},\
         \"serve_idle_conn_reap_ms\":{:.1},\
         \"wal_appends\":{},\"wal_append_s\":{:.4},\"wal_appends_per_s\":{:.1},\
         \"wal_grouped_s\":{:.4},\"wal_appends_per_s_grouped\":{:.1},\
         \"recovery_replay_s\":{:.4},\
         \"replica_catchup_s\":{:.4},\"replica_catchup_records_per_s\":{:.1},\
         \"replica_lag_epochs\":{},\
         \"serve_durable_ingests\":{},\"serve_durable_ingest_s\":{:.4},\
         \"serve_durable_ingest_per_s\":{:.1}}}",
        workload.dataset.num_records(),
        pairs,
        workload.scheme.num_features(),
        seed_s,
        cold_s,
        profiled_s,
        profile_s,
        featurize_s,
        seed_rate,
        cold_rate,
        profiled_rate,
        profiled_rate / seed_rate,
        profiled_rate / cold_rate,
        an_refs.len(),
        an_pairs,
        analysis_direct_s,
        analysis_sketched_s,
        analysis_direct_rate,
        analysis_sketched_rate,
        analysis_sketched_rate / analysis_direct_rate,
        searcher.num_models(),
        search_solves,
        search_s,
        search_solves as f64 / search_s,
        mt_threads,
        search_solves_mt,
        search_mt_s,
        search_solves_mt as f64 / search_mt_s,
        scale_p,
        scale_solves,
        search_exhaustive_s,
        search_indexed_s,
        scale_solves as f64 / search_exhaustive_s,
        scale_solves as f64 / search_indexed_s,
        search_exhaustive_s / search_indexed_s,
        index_overview.shortlist_frac,
        ingest_base,
        ingest_arrivals,
        ingest_incremental_s,
        ingest_rebuild_s,
        ingest_rate,
        ingest_speedup,
        serve_conns,
        serve_requests,
        serve_s,
        serve_requests as f64 / serve_s,
        serve_p99_micros,
        metrics_record_ns,
        serve_concurrent_conns,
        serve_reactor_rate,
        serve_idle_conn_reap_ms,
        wal_appends,
        wal_append_s,
        wal_appends as f64 / wal_append_s,
        wal_grouped_s,
        wal_appends as f64 / wal_grouped_s,
        recovery_replay_s,
        replica_catchup_s,
        wal_appends as f64 / replica_catchup_s,
        replica_lag_epochs,
        durable_arrivals.len(),
        serve_durable_ingest_s,
        durable_arrivals.len() as f64 / serve_durable_ingest_s,
    );
}
