//! `repro` — regenerate every table and figure of the MoRER paper.
//!
//! ```text
//! cargo run -p morer-bench --release -- <command> [options]
//!
//! commands:
//!   table2              dataset statistics
//!   table3              parameter overview
//!   table4              linkage quality comparison (P/R/F1)
//!   table5              speedup factors
//!   fig2                per-problem similarity histograms (WDC, jaccard(title))
//!   fig5                runtime comparison with analysis/selection breakdown
//!   fig6                distribution tests x AL methods x budgets
//!   fig7                selection strategies sel_base vs sel_cov
//!   ablate-clustering   Leiden vs Louvain vs label propagation vs Girvan-Newman
//!   ablate-weighting    stddev feature weighting on/off
//!   ablate-uniqueness   Bootstrap uniqueness score on/off
//!   ablate-budget       budget sweep for MoRER+Bootstrap
//!   ablate-stability    cluster stability vs model performance (§7 future work)
//!   ablate-ratio-init   50% vs 30% initial problem split
//!   all                 everything above
//!
//! options:
//!   --scale tiny|default|paper   dataset scale (default: default)
//!   --datasets a,b,c             subset of dexter,wdc,music
//!   --budgets n,n,n              label budgets (default: 1000,1500,2000)
//!   --seed n                     master seed (default: 42)
//! ```

mod ablations;
mod figures;
mod runs;
mod tables;

use morer_data::DatasetScale;

/// Parsed command-line options.
pub struct Options {
    pub scale: DatasetScale,
    pub datasets: Vec<String>,
    pub budgets: Vec<usize>,
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: DatasetScale::Default,
            datasets: vec!["dexter".into(), "wdc".into(), "music".into()],
            budgets: vec![1000, 1500, 2000],
            seed: 42,
        }
    }
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => DatasetScale::Tiny,
                    Some("default") => DatasetScale::Default,
                    Some("paper") => DatasetScale::Paper,
                    Some(other) => {
                        if let Ok(f) = other.parse::<f64>() {
                            DatasetScale::Custom(f)
                        } else {
                            eprintln!("unknown scale {other:?}; using default");
                            DatasetScale::Default
                        }
                    }
                    None => DatasetScale::Default,
                };
            }
            "--datasets" => {
                i += 1;
                if let Some(v) = args.get(i) {
                    opts.datasets = v.split(',').map(str::to_owned).collect();
                }
            }
            "--budgets" => {
                i += 1;
                if let Some(v) = args.get(i) {
                    opts.budgets = v.split(',').filter_map(|s| s.parse().ok()).collect();
                }
            }
            "--seed" => {
                i += 1;
                if let Some(v) = args.get(i) {
                    opts.seed = v.parse().unwrap_or(42);
                }
            }
            other => eprintln!("ignoring unknown option {other:?}"),
        }
        i += 1;
    }
    opts
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    let opts = parse_options(&args[1.min(args.len())..]);

    match command {
        "table2" => tables::table2(&opts),
        "table3" => tables::table3(),
        "table4" => {
            let matrix = runs::run_matrix(&opts);
            tables::table4(&matrix);
        }
        "table5" => {
            let matrix = runs::run_matrix(&opts);
            tables::table5(&matrix);
        }
        "fig2" => figures::fig2(&opts),
        "fig5" => {
            let matrix = runs::run_matrix(&opts);
            figures::fig5(&matrix);
        }
        "fig6" => figures::fig6(&opts),
        "fig7" => figures::fig7(&opts),
        "ablate-clustering" => ablations::clustering(&opts),
        "ablate-weighting" => ablations::weighting(&opts),
        "ablate-uniqueness" => ablations::uniqueness(&opts),
        "ablate-budget" => ablations::budget_sweep(&opts),
        "ablate-stability" => ablations::stability(&opts),
        "ablate-ratio-init" => ablations::ratio_init(&opts),
        "all" => {
            tables::table2(&opts);
            tables::table3();
            figures::fig2(&opts);
            let matrix = runs::run_matrix(&opts);
            tables::table4(&matrix);
            tables::table5(&matrix);
            figures::fig5(&matrix);
            figures::fig6(&opts);
            figures::fig7(&opts);
            ablations::clustering(&opts);
            ablations::weighting(&opts);
            ablations::uniqueness(&opts);
            ablations::budget_sweep(&opts);
            ablations::stability(&opts);
            ablations::ratio_init(&opts);
        }
        _ => {
            println!(
                "usage: repro <table2|table3|table4|table5|fig2|fig5|fig6|fig7|\
                 ablate-clustering|ablate-weighting|ablate-uniqueness|ablate-budget|all> \
                 [--scale tiny|default|paper] [--datasets dexter,wdc,music] \
                 [--budgets 1000,1500,2000] [--seed 42]; \
                 also: ablate-stability, ablate-ratio-init"
            );
        }
    }
}
