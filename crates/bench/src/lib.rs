//! Shared benchmark support for the `morer-bench` binary and the criterion
//! benches: reproducible workload generators.

pub mod seed_reference;
pub mod workload;
