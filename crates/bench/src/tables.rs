//! Printers for the paper's tables.

use morer_core::prelude::*;
use morer_ml::metrics::PairCounts;

use crate::runs::{dataset_key, find, load_benchmark, BudgetSpec, RunResult};
use crate::Options;

fn prf(counts: &PairCounts) -> String {
    format!("{:.2}/{:.2}/{:.2}", counts.precision(), counts.recall(), counts.f1())
}

/// Table 2: statistics of the generated datasets (paper values for
/// reference).
pub fn table2(opts: &Options) {
    println!("\n=== Table 2: dataset statistics ===");
    println!(
        "{:<14} {:>12} {:>14} {:>12} {:>10}",
        "Name", "# ER problems", "# Record pairs", "# Matches", "match %"
    );
    let paper = [
        ("dexter", 276, 1_100_000, 368_000),
        ("wdc", 12, 74_500, 4_800),
        ("music", 20, 385_900, 16_200),
    ];
    for name in &opts.datasets {
        let bench = load_benchmark(name, opts.scale, opts.seed);
        let s = bench.stats();
        println!(
            "{:<14} {:>12} {:>14} {:>12} {:>9.1}%",
            bench.name,
            s.num_problems,
            s.num_pairs,
            s.num_matches,
            100.0 * s.num_matches as f64 / s.num_pairs.max(1) as f64
        );
        if let Some((_, p_prob, p_pairs, p_matches)) =
            paper.iter().find(|(n, _, _, _)| n == name)
        {
            println!(
                "{:<14} {:>12} {:>14} {:>12} {:>9.1}%  (paper, full scale)",
                "", p_prob, p_pairs, p_matches,
                100.0 * *p_matches as f64 / *p_pairs as f64
            );
        }
    }
}

/// Table 3: the parameter overview of the default configuration.
pub fn table3() {
    println!("\n=== Table 3: MoRER parameter setting (defaults in use) ===");
    for (key, value) in MorerConfig::default().parameter_table() {
        println!("{key:<22} {value}");
    }
    println!("{:<22} KS, WD, PSI, C2ST", "distribution tests");
    println!("{:<22} AL (bootstrap, almser), supervised (50%, all)", "model generation");
    println!("{:<22} sel_base, sel_cov(0.1 | 0.25 | 0.5)", "selection methods");
    println!("{:<22} 1000, 1500, 2000", "budgets");
}

/// Table 4: linkage quality (P/R/F1) of every method.
pub fn table4(matrix: &[RunResult]) {
    println!("\n=== Table 4: linkage quality (Precision/Recall/F1) ===");
    let budget_methods = ["morer+almser", "morer+bs", "almser", "sudowoodo", "anymatch"];
    let supervised_methods = ["morer", "ditto", "unicorn", "transer"];

    let datasets: Vec<String> = {
        let mut seen = Vec::new();
        for r in matrix {
            if !seen.contains(&r.dataset) {
                seen.push(r.dataset.clone());
            }
        }
        seen
    };
    let budgets: Vec<usize> = {
        let mut seen = Vec::new();
        for r in matrix {
            if let BudgetSpec::Labels(b) = r.budget {
                if !seen.contains(&b) {
                    seen.push(b);
                }
            }
        }
        seen.sort_unstable();
        seen
    };

    // budget-limited block
    print!("{:<2} {:>5}", "D", "B");
    for m in budget_methods {
        print!(" {:>16}", m);
    }
    println!();
    for dataset in &datasets {
        for &b in &budgets {
            print!("{:<2} {:>5}", dataset_key(dataset), b);
            for m in budget_methods {
                match find(matrix, dataset, m, BudgetSpec::Labels(b)) {
                    Some(r) => print!(" {:>16}", prf(&r.counts)),
                    None => print!(" {:>16}", "-"),
                }
            }
            println!();
        }
    }

    // supervised block
    print!("\n{:<2} {:>5}", "D", "B");
    for m in supervised_methods {
        print!(" {:>16}", m);
    }
    println!();
    for dataset in &datasets {
        for fraction in [0.5, 1.0] {
            let spec = BudgetSpec::Fraction(fraction);
            print!("{:<2} {:>5}", dataset_key(dataset), format!("{spec}"));
            for m in supervised_methods {
                match find(matrix, dataset, m, spec) {
                    Some(r) => print!(" {:>16}", prf(&r.counts)),
                    None => print!(" {:>16}", "-"),
                }
            }
            println!();
        }
    }
}

/// Table 5: speedup factors of the MoRER variants over every other method.
pub fn table5(matrix: &[RunResult]) {
    println!("\n=== Table 5: speedup factors of MoRER vs compared methods ===");
    let datasets: Vec<String> = {
        let mut seen = Vec::new();
        for r in matrix {
            if !seen.contains(&r.dataset) {
                seen.push(r.dataset.clone());
            }
        }
        seen
    };
    let budgets: Vec<usize> = {
        let mut seen = Vec::new();
        for r in matrix {
            if let BudgetSpec::Labels(b) = r.budget {
                if !seen.contains(&b) {
                    seen.push(b);
                }
            }
        }
        seen.sort_unstable();
        seen
    };
    let columns: [(&str, BudgetSpec); 9] = [
        ("Alm", BudgetSpec::Labels(0)), // placeholder: budget substituted per row
        ("TER50", BudgetSpec::Fraction(0.5)),
        ("TERall", BudgetSpec::Fraction(1.0)),
        ("Su", BudgetSpec::Labels(0)),
        ("Dit50", BudgetSpec::Fraction(0.5)),
        ("Ditall", BudgetSpec::Fraction(1.0)),
        ("Uni50", BudgetSpec::Fraction(0.5)),
        ("Uniall", BudgetSpec::Fraction(1.0)),
        ("Any", BudgetSpec::Labels(0)),
    ];
    let column_method = |c: &str| match c {
        "Alm" => "almser",
        "TER50" | "TERall" => "transer",
        "Su" => "sudowoodo",
        "Dit50" | "Ditall" => "ditto",
        "Uni50" | "Uniall" => "unicorn",
        _ => "anymatch",
    };

    for variant in ["morer+almser", "morer+bs"] {
        println!("\n--- {variant} ---");
        print!("{:<4} {:>5}", "DS", "B");
        for (c, _) in &columns {
            print!(" {:>7}", c);
        }
        println!();
        for dataset in &datasets {
            for &b in &budgets {
                let Some(me) = find(matrix, dataset, variant, BudgetSpec::Labels(b)) else {
                    continue;
                };
                print!("{:<4} {:>5}", dataset_key(dataset), b);
                for (c, spec) in &columns {
                    let other_spec = match spec {
                        BudgetSpec::Labels(_) => BudgetSpec::Labels(b),
                        frac => *frac,
                    };
                    match find(matrix, dataset, column_method(c), other_spec) {
                        Some(other) => {
                            let speedup =
                                other.runtime.as_secs_f64() / me.runtime.as_secs_f64().max(1e-9);
                            print!(" {:>7.1}", speedup);
                        }
                        None => print!(" {:>7}", "-"),
                    }
                }
                println!();
            }
        }
    }
}
