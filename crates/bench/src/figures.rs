//! Printers for the paper's figures (textual series; each block prints the
//! data a plot would show).

use morer_core::prelude::*;
use morer_stats::Histogram;

use crate::runs::{load_benchmark, RunResult};
use crate::Options;

/// Fig. 2: per-ER-problem `jaccard(title)` histograms, matches vs
/// non-matches, on the WDC-computer dataset (log-scale counts in the paper;
/// we print raw bin counts).
pub fn fig2(opts: &Options) {
    println!("\n=== Fig. 2: jaccard(title) distributions per ER problem (WDC-computer) ===");
    let bench = load_benchmark("wdc", opts.scale, opts.seed);
    let bins = 10;
    for (title, want_match) in [("(a) Matches", true), ("(b) Non-Matches", false)] {
        println!("\n{title} — bin counts over [0,1], {bins} bins:");
        print!("{:<10}", "problem");
        for b in 0..bins {
            print!(" {:>6.2}", (b as f64 + 0.5) / bins as f64);
        }
        println!();
        for p in bench.initial_problems().iter().take(6) {
            let values: Vec<f64> = (0..p.num_pairs())
                .filter(|&i| p.labels[i] == want_match)
                .map(|i| p.features.get(i, 0))
                .collect();
            let h = Histogram::unit(&values, bins);
            print!("D{}-D{:<6}", p.sources.0, p.sources.1);
            for &c in h.counts() {
                print!(" {c:>6}");
            }
            println!();
        }
    }
}

/// Fig. 5: runtime comparison with the analysis/clustering (striped) and
/// selection (dotted) overheads of MoRER broken out.
pub fn fig5(matrix: &[RunResult]) {
    println!("\n=== Fig. 5: runtime comparison (seconds; log-scale in the paper) ===");
    let mut datasets: Vec<String> = Vec::new();
    for r in matrix {
        if !datasets.contains(&r.dataset) {
            datasets.push(r.dataset.clone());
        }
    }
    for dataset in &datasets {
        println!("\n--- {dataset} ---");
        println!(
            "{:<14} {:>7} {:>10} {:>10} {:>10} {:>9}",
            "method", "budget", "total s", "analysis s", "select s", "labels"
        );
        for r in matrix.iter().filter(|r| &r.dataset == dataset) {
            println!(
                "{:<14} {:>7} {:>10.2} {:>10.2} {:>10.2} {:>9}",
                r.method,
                format!("{}", r.budget),
                r.runtime.as_secs_f64(),
                r.overhead.as_secs_f64(),
                r.selection.as_secs_f64(),
                r.labels_used
            );
        }
    }
}

/// Fig. 6: F1 per distribution test (KS/WD/PSI/C2ST) × AL method × budget.
pub fn fig6(opts: &Options) {
    println!("\n=== Fig. 6: distribution tests x AL methods x budgets (F1) ===");
    for name in &opts.datasets {
        let bench = load_benchmark(name, opts.scale, opts.seed);
        println!("\n--- {} ---", bench.name);
        print!("{:<10} {:>6}", "AL", "B");
        for test in DistributionTest::all() {
            print!(" {:>6}", test.name());
        }
        println!();
        for (al_name, method) in [("BS", AlMethod::Bootstrap), ("Almser", AlMethod::Almser)] {
            for &b in &opts.budgets {
                print!("{al_name:<10} {b:>6}");
                for test in DistributionTest::all() {
                    let config = MorerConfig {
                        budget: b,
                        training: TrainingMode::ActiveLearning(method),
                        distribution_test: test,
                        seed: opts.seed,
                        ..MorerConfig::default()
                    };
                    let (mut morer, _) = Morer::build(bench.initial_problems(), &config);
                    let (counts, _) = morer.solve_and_score(&bench.unsolved_problems());
                    print!(" {:>6.3}", counts.f1());
                }
                println!();
            }
        }
    }
}

/// Fig. 7: selection strategies `sel_base` vs `sel_cov(t_cov)` — (a) F1 and
/// (b) total labeling effort, Bootstrap AL, budget 1000.
pub fn fig7(opts: &Options) {
    println!("\n=== Fig. 7: selection strategies (Bootstrap AL, b = 1000) ===");
    let strategies: [(&str, SelectionStrategy); 4] = [
        ("base", SelectionStrategy::Base),
        ("cov(0.1)", SelectionStrategy::Coverage { t_cov: 0.1 }),
        ("cov(0.25)", SelectionStrategy::Coverage { t_cov: 0.25 }),
        ("cov(0.5)", SelectionStrategy::Coverage { t_cov: 0.5 }),
    ];
    println!("{:<12} {:>10} {:>8} {:>8} {:>8} {:>10}", "dataset", "strategy", "P", "R", "F1", "labels");
    for name in &opts.datasets {
        let bench = load_benchmark(name, opts.scale, opts.seed);
        for (label, strategy) in strategies {
            let config = MorerConfig {
                budget: 1000,
                selection: strategy,
                seed: opts.seed,
                ..MorerConfig::default()
            };
            let (mut morer, _) = Morer::build(bench.initial_problems(), &config);
            let (counts, _) = morer.solve_and_score(&bench.unsolved_problems());
            println!(
                "{:<12} {:>10} {:>8.3} {:>8.3} {:>8.3} {:>10}",
                bench.name,
                label,
                counts.precision(),
                counts.recall(),
                counts.f1(),
                morer.labels_used()
            );
        }
    }
}

