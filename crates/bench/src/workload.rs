//! Reproducible featurization workloads.
//!
//! The `featurization` criterion bench and the `quick-bench` trajectory mode
//! both measure the same thing: pairs/second through `ErProblem` feature
//! generation on a product-catalog-shaped two-source dataset. This module
//! builds that workload deterministically so numbers are comparable across
//! runs and machines.

use morer_core::repository::ClusterEntry;
use morer_data::record::{DataSource, MultiSourceDataset, Record, Schema};
use morer_data::vocab::{CAMERA_BRANDS, PRODUCT_ADJECTIVES, SONG_WORDS};
use morer_data::ErProblem;
use morer_ml::dataset::FeatureMatrix;
use morer_ml::model::{ModelConfig, TrainedModel};
use morer_sim::{AttributeComparator, ComparisonScheme, SimilarityFunction};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A generated featurization workload: dataset, scheme and candidate pairs.
pub struct FeaturizationWorkload {
    /// Two-source dataset with `2 * records_per_source` records.
    pub dataset: MultiSourceDataset,
    /// Product-catalog comparison scheme (6 features across 4 attributes).
    pub scheme: ComparisonScheme,
    /// Candidate pairs (source 0 uid, source 1 uid), sorted and unique.
    pub pairs: Vec<(u32, u32)>,
}

/// The comparison scheme the workload featurizes under: a representative
/// product-catalog mix of token, edit, q-gram and numeric comparators.
pub fn product_scheme() -> ComparisonScheme {
    ComparisonScheme::new()
        .with(AttributeComparator::new(0, "title", SimilarityFunction::JaccardTokens))
        .with(AttributeComparator::new(0, "title", SimilarityFunction::Levenshtein))
        .with(AttributeComparator::new(0, "title", SimilarityFunction::CosineTokens))
        .with(AttributeComparator::new(1, "brand", SimilarityFunction::JaroWinkler))
        .with(AttributeComparator::new(2, "model", SimilarityFunction::JaccardQgrams(2)))
        .with(AttributeComparator::new(3, "price", SimilarityFunction::NumericDiff))
}

fn title(rng: &mut SmallRng) -> String {
    let n_words = rng.gen_range(3..7usize);
    let mut words = Vec::with_capacity(n_words + 1);
    words.push(*pick(PRODUCT_ADJECTIVES, rng));
    for _ in 0..n_words {
        words.push(*pick(SONG_WORDS, rng));
    }
    words.join(" ")
}

fn pick<'a>(items: &'a [&'a str], rng: &mut SmallRng) -> &'a &'a str {
    &items[rng.gen_range(0..items.len())]
}

/// A lightly corrupted copy of `s`: one word dropped or one character typo,
/// so matched pairs are similar-but-not-equal (the realistic hard case).
fn corrupt(s: &str, rng: &mut SmallRng) -> String {
    let words: Vec<&str> = s.split(' ').collect();
    if words.len() > 1 && rng.gen_bool(0.5) {
        let drop = rng.gen_range(0..words.len());
        let kept: Vec<&str> = words
            .iter()
            .enumerate()
            .filter_map(|(i, w)| (i != drop).then_some(*w))
            .collect();
        return kept.join(" ");
    }
    let mut chars: Vec<char> = s.chars().collect();
    if !chars.is_empty() {
        let pos = rng.gen_range(0..chars.len());
        chars[pos] = (b'a' + rng.gen_range(0..26u8)) as char;
    }
    chars.into_iter().collect()
}

/// Build a deterministic two-source workload: `records_per_source` records
/// per source (~60% of entities appear in both sources), `n_pairs` candidate
/// pairs sampled the way blocking would produce them — every record
/// participating in many pairs.
pub fn featurization_workload(
    records_per_source: usize,
    n_pairs: usize,
    seed: u64,
) -> FeaturizationWorkload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let schema = Schema::new(vec!["title", "brand", "model", "price"]);
    let make_record = |entity: u64, corrupted: bool, rng: &mut SmallRng| {
        let base_title = title(rng);
        let t = if corrupted { corrupt(&base_title, rng) } else { base_title };
        let model = format!(
            "{}{}-{}",
            (b'A' + rng.gen_range(0..26u8)) as char,
            (b'A' + rng.gen_range(0..26u8)) as char,
            rng.gen_range(100..999u32)
        );
        Record {
            uid: 0,
            source: 0,
            entity,
            values: vec![
                Some(t),
                Some((*pick(CAMERA_BRANDS, rng)).to_owned()),
                Some(model),
                Some(format!("{}.99", rng.gen_range(50..2500u32))),
            ],
        }
    };
    let records_a: Vec<Record> = (0..records_per_source)
        .map(|e| make_record(e as u64, false, &mut rng))
        .collect();
    let records_b: Vec<Record> = (0..records_per_source)
        .map(|i| {
            // ~60% of source-b records mention a source-a entity (a match
            // candidate), the rest are fresh entities
            let entity = if rng.gen_bool(0.6) {
                rng.gen_range(0..records_per_source) as u64
            } else {
                (records_per_source + i) as u64
            };
            make_record(entity, true, &mut rng)
        })
        .collect();
    let dataset = MultiSourceDataset::assemble(
        "featurization-workload",
        schema,
        vec![
            DataSource { id: 0, name: "a".into(), records: records_a },
            DataSource { id: 1, name: "b".into(), records: records_b },
        ],
    );
    let n = records_per_source as u32;
    let mut pairs: Vec<(u32, u32)> = (0..n_pairs * 11 / 10)
        .map(|_| (rng.gen_range(0..n), n + rng.gen_range(0..n)))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs.truncate(n_pairs);
    FeaturizationWorkload { dataset, scheme: product_scheme(), pairs }
}

/// Build a deterministic distribution-analysis workload: `n_problems` ER
/// problems of `rows` feature vectors each, drawn from a handful of
/// distribution families (distinct per-problem match/non-match locations)
/// so the resulting problem graph has real cluster structure.
///
/// The `analysis` criterion bench and the `quick-bench` trajectory mode
/// both run the O(P²) graph build and the model search over this workload.
pub fn analysis_workload(
    n_problems: usize,
    rows: usize,
    features: usize,
    seed: u64,
) -> Vec<ErProblem> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD157);
    (0..n_problems)
        .map(|id| {
            // four families of match/non-match locations, plus per-problem
            // jitter, mirroring the heterogeneous benchmarks of Fig. 2
            let family = id % 4;
            let match_mu: f64 = 0.55 + 0.1 * family as f64 + rng.gen_range(-0.02..0.02f64);
            let nonmatch_mu: f64 = 0.08 + 0.07 * family as f64 + rng.gen_range(-0.02..0.02f64);
            let spread: f64 = rng.gen_range(0.05..0.12);
            let mut matrix = FeatureMatrix::new(features);
            let mut labels = Vec::with_capacity(rows);
            let mut pairs = Vec::with_capacity(rows);
            for i in 0..rows {
                let is_match = i % 3 == 0;
                let mu = if is_match { match_mu } else { nonmatch_mu };
                let row: Vec<f64> = (0..features)
                    .map(|f| {
                        let jitter: f64 = rng.gen_range(-spread..spread);
                        (mu + 0.03 * f as f64 + jitter).clamp(0.0, 1.0)
                    })
                    .collect();
                matrix.push_row(&row);
                labels.push(is_match);
                pairs.push((i as u32, (i + rows) as u32));
            }
            ErProblem {
                id,
                sources: (id, id + 1),
                pairs,
                features: matrix,
                labels,
                feature_names: (0..features).map(|f| format!("f{f}")).collect(),
            }
        })
        .collect()
}

/// Build a deterministic repository-scale problem set: `n_problems` ER
/// problems drawn from **twelve** distribution families with per-problem
/// jitter in match/non-match locations, spread and match rate — a much
/// wider spread than [`analysis_workload`] so the coarse signatures of
/// [`morer_core::index`] actually separate the entries. This is the scale
/// knob behind the `search_index` bench and the indexed-search section of
/// `quick-bench` (≥500-entry repositories).
pub fn repository_problems(
    n_problems: usize,
    rows: usize,
    features: usize,
    seed: u64,
) -> Vec<ErProblem> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5CA1E);
    (0..n_problems)
        .map(|id| {
            let family = id % 12;
            let match_mu: f64 = 0.35 + 0.05 * family as f64 + rng.gen_range(-0.03..0.03f64);
            let nonmatch_mu: f64 = 0.04 + 0.02 * family as f64 + rng.gen_range(-0.015..0.015f64);
            let spread: f64 = rng.gen_range(0.03..0.15);
            // match rate varies 1/2..1/5 per family so PSI-bin proportions
            // (not just moments) differ across entries
            let match_every = 2 + family % 4;
            let mut matrix = FeatureMatrix::new(features);
            let mut labels = Vec::with_capacity(rows);
            let mut pairs = Vec::with_capacity(rows);
            for i in 0..rows {
                let is_match = i % match_every == 0;
                let mu = if is_match { match_mu } else { nonmatch_mu };
                let row: Vec<f64> = (0..features)
                    .map(|f| {
                        let jitter: f64 = rng.gen_range(-spread..spread);
                        (mu + 0.02 * f as f64 + jitter).clamp(0.0, 1.0)
                    })
                    .collect();
                matrix.push_row(&row);
                labels.push(is_match);
                pairs.push((i as u32, (i + rows) as u32));
            }
            ErProblem {
                id,
                sources: (id, id + 1),
                pairs,
                features: matrix,
                labels,
                feature_names: (0..features).map(|f| format!("f{f}")).collect(),
            }
        })
        .collect()
}

/// Build a deterministic model repository at a chosen scale: one
/// [`ClusterEntry`] per [`repository_problems`] problem, each holding a
/// trained `GaussianNb` model and the problem's labelled training set as
/// representatives. The entries are exactly what `Morer::build` would
/// store for singleton clusters, so searches over them exercise the real
/// `sel_base` path.
pub fn repository_workload(
    n_entries: usize,
    rows: usize,
    features: usize,
    seed: u64,
) -> Vec<ClusterEntry> {
    repository_problems(n_entries, rows, features, seed)
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let training = p.to_training_set();
            let model = TrainedModel::train(&ModelConfig::GaussianNb, &training);
            ClusterEntry::new(i, vec![i], model, training, 0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_sized() {
        let w1 = featurization_workload(200, 2000, 7);
        let w2 = featurization_workload(200, 2000, 7);
        assert_eq!(w1.pairs, w2.pairs);
        assert_eq!(w1.dataset.num_records(), 400);
        assert_eq!(w1.pairs.len(), 2000);
        assert_eq!(w1.scheme.num_features(), 6);
        // pairs are cross-source and in range
        assert!(w1.pairs.iter().all(|&(a, b)| a < 200 && (200..400).contains(&b)));
        // different seeds give different data
        let w3 = featurization_workload(200, 2000, 8);
        assert_ne!(w1.pairs, w3.pairs);
    }

    #[test]
    fn analysis_workload_is_deterministic_and_shaped() {
        let a = analysis_workload(8, 50, 3, 7);
        let b = analysis_workload(8, 50, 3, 7);
        assert_eq!(a.len(), 8);
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.features, pb.features);
            assert_eq!(pa.num_pairs(), 50);
            assert_eq!(pa.num_features(), 3);
            assert!(pa
                .features
                .iter_rows()
                .all(|r| r.iter().all(|v| (0.0..=1.0).contains(v))));
        }
        let c = analysis_workload(8, 50, 3, 8);
        assert_ne!(a[0].features, c[0].features);
    }

    #[test]
    fn repository_workload_is_deterministic_and_searchable() {
        let a = repository_workload(60, 80, 4, 7);
        let b = repository_workload(60, 80, 4, 7);
        assert_eq!(a.len(), 60);
        assert_eq!(a, b);
        // every entry is searchable (non-empty representatives) and the
        // twelve families give the index real signature spread
        assert!(a.iter().all(|e| !e.representatives.is_empty()));
        let c = repository_workload(60, 80, 4, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn workload_contains_true_matches() {
        let w = featurization_workload(300, 3000, 42);
        let matches = w
            .pairs
            .iter()
            .filter(|&&(a, b)| w.dataset.is_match(a, b))
            .count();
        assert!(matches > 0, "workload should contain some true matches");
    }
}
