//! Ablation benches for the design choices DESIGN.md calls out (beyond the
//! paper's own figures).

use std::time::Instant;

use morer_core::prelude::*;

use crate::runs::load_benchmark;
use crate::Options;

fn build_and_score(bench: &morer_data::Benchmark, config: &MorerConfig) -> (f64, usize, f64) {
    let start = Instant::now();
    let (mut morer, report) = Morer::build(bench.initial_problems(), config);
    let (counts, _) = morer.solve_and_score(&bench.unsolved_problems());
    (counts.f1(), report.num_clusters, start.elapsed().as_secs_f64())
}

/// Clustering-algorithm ablation: the paper reports Leiden ≈ Girvan-Newman ≈
/// label propagation in pre-experiments (§4.1); this reproduces that check.
pub fn clustering(opts: &Options) {
    println!("\n=== Ablation: clustering algorithm (Bootstrap AL, b = 1000) ===");
    println!("{:<12} {:<20} {:>8} {:>10} {:>10}", "dataset", "algorithm", "F1", "clusters", "time s");
    for name in &opts.datasets {
        let bench = load_benchmark(name, opts.scale, opts.seed);
        for algorithm in [
            ClusteringAlgorithm::default_leiden(),
            ClusteringAlgorithm::Louvain { gamma: 1.0 },
            ClusteringAlgorithm::LabelPropagation,
            ClusteringAlgorithm::GirvanNewman,
        ] {
            let config = MorerConfig {
                budget: 1000,
                clustering: algorithm,
                seed: opts.seed,
                ..MorerConfig::default()
            };
            let (f1, clusters, secs) = build_and_score(&bench, &config);
            println!(
                "{:<12} {:<20} {:>8.3} {:>10} {:>10.2}",
                bench.name,
                algorithm.name(),
                f1,
                clusters,
                secs
            );
        }
    }
}

/// Stddev feature weighting on/off in the `sim_p` aggregation (§4.2).
pub fn weighting(opts: &Options) {
    println!("\n=== Ablation: stddev feature weighting in sim_p (b = 1000) ===");
    println!("{:<12} {:<10} {:>8} {:>10}", "dataset", "weighting", "F1", "clusters");
    for name in &opts.datasets {
        let bench = load_benchmark(name, opts.scale, opts.seed);
        for weighted in [true, false] {
            let config = MorerConfig {
                budget: 1000,
                weight_features_by_stddev: weighted,
                seed: opts.seed,
                ..MorerConfig::default()
            };
            let (f1, clusters, _) = build_and_score(&bench, &config);
            println!(
                "{:<12} {:<10} {:>8.3} {:>10}",
                bench.name,
                if weighted { "stddev" } else { "uniform" },
                f1,
                clusters
            );
        }
    }
}

/// Record-uniqueness score (Eqs. 11-12) on/off for Bootstrap AL.
pub fn uniqueness(opts: &Options) {
    println!("\n=== Ablation: Bootstrap uniqueness score (Eqs. 11-12, b = 1000) ===");
    println!("{:<12} {:<12} {:>8}", "dataset", "uniqueness", "F1");
    for name in &opts.datasets {
        let bench = load_benchmark(name, opts.scale, opts.seed);
        for on in [false, true] {
            let config = MorerConfig {
                budget: 1000,
                use_uniqueness_score: on,
                seed: opts.seed,
                ..MorerConfig::default()
            };
            let (f1, _, _) = build_and_score(&bench, &config);
            println!("{:<12} {:<12} {:>8.3}", bench.name, if on { "on" } else { "off" }, f1);
        }
    }
}

/// Cluster stability vs model performance — the paper's §7 future work,
/// implemented: per-cluster cohesion / seed stability against the F1 the
/// cluster's model achieves on the unsolved problems routed to it.
pub fn stability(opts: &Options) {
    use morer_ml::metrics::PairCounts;
    use morer_stats::describe::pearson;
    println!("\n=== Extension: cluster stability vs model performance (§7 future work) ===");
    for name in &opts.datasets {
        let bench = load_benchmark(name, opts.scale, opts.seed);
        let config = MorerConfig { budget: 1000, seed: opts.seed, ..MorerConfig::default() };
        let (mut morer, _) = Morer::build(bench.initial_problems(), &config);
        let unsolved = bench.unsolved_problems();
        let (_, outcomes) = morer.solve_and_score(&unsolved);
        let report = morer.stability_report(5);

        // per-entry F1 over the problems routed to that entry
        let mut per_entry: std::collections::HashMap<usize, PairCounts> =
            std::collections::HashMap::new();
        for (p, o) in unsolved.iter().zip(&outcomes) {
            // problems the empty repository could not route have no entry
            let Some(entry) = o.entry else { continue };
            let counts = per_entry.entry(entry).or_default();
            for (&pred, &actual) in o.predictions.iter().zip(&p.labels) {
                counts.record(pred, actual);
            }
        }
        println!(
            "\n--- {} (seed stability ARI = {:.3}) ---",
            bench.name, report.seed_stability
        );
        println!(
            "{:<8} {:>6} {:>10} {:>10} {:>10} {:>8}",
            "cluster", "size", "intra", "inter", "cohesion", "F1"
        );
        let mut cohesions = Vec::new();
        let mut f1s = Vec::new();
        for c in &report.clusters {
            let f1 = per_entry.get(&c.entry_id).map(PairCounts::f1);
            println!(
                "{:<8} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>8}",
                c.entry_id,
                c.size,
                c.intra_similarity,
                c.inter_similarity,
                c.cohesion,
                f1.map_or("-".into(), |v| format!("{v:.3}"))
            );
            if let Some(f1) = f1 {
                cohesions.push(c.cohesion);
                f1s.push(f1);
            }
        }
        if let Some(r) = pearson(&cohesions, &f1s) {
            println!("pearson(cohesion, F1) = {r:.3}");
        }
    }
}

/// `ratio_init` ablation (Table 3: 50% vs 30% of problems solved up front).
pub fn ratio_init(opts: &Options) {
    println!("\n=== Ablation: ratio_init for the Dexter-style problem split ===");
    println!("{:<12} {:>10} {:>8} {:>10}", "dataset", "ratio_init", "F1", "clusters");
    for ratio in [0.5, 0.3] {
        let bench = morer_data::camera(opts.scale, ratio, opts.seed);
        let config = MorerConfig { budget: 1000, seed: opts.seed, ..MorerConfig::default() };
        let (f1, clusters, _) = build_and_score(&bench, &config);
        println!("{:<12} {:>9.0}% {:>8.3} {:>10}", bench.name, ratio * 100.0, f1, clusters);
    }
}

/// Budget sweep for MoRER+Bootstrap beyond the paper's three budgets.
pub fn budget_sweep(opts: &Options) {
    println!("\n=== Ablation: budget sweep (MoRER+Bootstrap) ===");
    println!("{:<12} {:>8} {:>8} {:>10}", "dataset", "budget", "F1", "labels");
    for name in &opts.datasets {
        let bench = load_benchmark(name, opts.scale, opts.seed);
        for budget in [250usize, 500, 1000, 2000, 4000] {
            let config = MorerConfig { budget, seed: opts.seed, ..MorerConfig::default() };
            
            let (mut morer, report) = Morer::build(bench.initial_problems(), &config);
            let start_labels = report.labels_used;
            let (counts, _) = morer.solve_and_score(&bench.unsolved_problems());
            println!(
                "{:<12} {:>8} {:>8.3} {:>10}",
                bench.name,
                budget,
                counts.f1(),
                start_labels
            );
        }
    }
}
