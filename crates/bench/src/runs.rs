//! Shared method runners: execute the (dataset × method × budget) matrix the
//! quality table (Table 4), speedup table (Table 5) and runtime figure
//! (Fig. 5) are all derived from.

use std::time::{Duration, Instant};

use morer_al::{ActiveLearner, AlPool, AlmserAl, AlmserConfig};
use morer_baselines::anymatch::AnyMatchSim;
use morer_baselines::ditto::DittoSim;
use morer_baselines::sudowoodo::SudowoodoSim;
use morer_baselines::transer::TransEr;
use morer_baselines::unicorn::UnicornSim;
use morer_baselines::{BaselineContext, ErBaseline};
use morer_core::prelude::*;
use morer_data::{camera, computer, music, Benchmark, DatasetScale};
use morer_ml::forest::{RandomForest, RandomForestConfig};
use morer_ml::metrics::PairCounts;

use crate::Options;

/// Labeling regime of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetSpec {
    /// Oracle-label budget (AL and semi-supervised methods).
    Labels(usize),
    /// Fraction of the initial problems' labels (supervised methods).
    Fraction(f64),
}

impl std::fmt::Display for BudgetSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Labels(n) => write!(f, "{n}"),
            Self::Fraction(x) if (*x - 1.0).abs() < 1e-9 => write!(f, "all"),
            Self::Fraction(x) => write!(f, "{:.0}%", x * 100.0),
        }
    }
}

/// One completed run of one method.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub dataset: String,
    pub method: String,
    pub budget: BudgetSpec,
    pub counts: PairCounts,
    pub runtime: Duration,
    /// MoRER overhead: distribution analysis + clustering (striped in Fig. 5).
    pub overhead: Duration,
    /// MoRER model-selection time (dotted in Fig. 5).
    pub selection: Duration,
    pub labels_used: usize,
}

/// Build one of the three benchmarks by name.
pub fn load_benchmark(name: &str, scale: DatasetScale, seed: u64) -> Benchmark {
    match name {
        "dexter" => camera(scale, 0.5, seed),
        "wdc" | "wdc-computer" => computer(scale, seed),
        "music" => music(scale, seed),
        other => panic!("unknown dataset {other:?} (expected dexter|wdc|music)"),
    }
}

/// Short display key for a dataset ("D", "W", "M" as in Table 4).
pub fn dataset_key(name: &str) -> &'static str {
    match name {
        "dexter" => "D",
        "wdc" | "wdc-computer" => "W",
        _ => "M",
    }
}

fn morer_config(training: TrainingMode, budget: usize, seed: u64) -> MorerConfig {
    MorerConfig { budget, training, seed, ..MorerConfig::default() }
}

/// MoRER with the given training mode; `sel_base` selection as in Table 4.
pub fn run_morer(bench: &Benchmark, training: TrainingMode, budget: BudgetSpec, seed: u64) -> RunResult {
    let config = match budget {
        BudgetSpec::Labels(b) => morer_config(training, b, seed),
        BudgetSpec::Fraction(f) => {
            morer_config(TrainingMode::Supervised { fraction: f }, 0, seed)
        }
    };
    let start = Instant::now();
    let (mut morer, report) = Morer::build(bench.initial_problems(), &config);
    let (counts, _) = morer.solve_and_score(&bench.unsolved_problems());
    let runtime = start.elapsed();
    let labels_used = match budget {
        BudgetSpec::Labels(_) => report.labels_used,
        BudgetSpec::Fraction(f) => {
            let total: usize = bench.initial_problems().iter().map(|p| p.num_pairs()).sum();
            ((total as f64) * f).round() as usize
        }
    };
    let method = match training {
        TrainingMode::ActiveLearning(AlMethod::Almser) => "morer+almser",
        TrainingMode::ActiveLearning(AlMethod::Bootstrap) => "morer+bs",
        TrainingMode::ActiveLearning(AlMethod::Random) => "morer+random",
        TrainingMode::Supervised { .. } => "morer",
    };
    RunResult {
        dataset: bench.name.clone(),
        method: method.into(),
        budget,
        counts,
        runtime,
        overhead: report.timings.analysis + report.timings.clustering,
        selection: morer.timings.selection,
        labels_used,
    }
}

/// Almser standalone: graph-boosted AL over the union of all initial
/// problems, one global model, classify all unsolved problems.
pub fn run_almser_standalone(bench: &Benchmark, budget: usize, seed: u64) -> RunResult {
    let start = Instant::now();
    let initial = bench.initial_problems();
    let learner = AlmserAl::new(AlmserConfig { seed, ..Default::default() });
    let mut pool = AlPool::from_problems(&initial);
    let result = learner.select(&mut pool, budget);
    let forest = RandomForest::fit(
        &result.training,
        &RandomForestConfig { seed, ..Default::default() },
    );
    let mut counts = PairCounts::new();
    for p in bench.unsolved_problems() {
        for i in 0..p.num_pairs() {
            counts.record(forest.predict(p.features.row(i)), p.labels[i]);
        }
    }
    RunResult {
        dataset: bench.name.clone(),
        method: "almser".into(),
        budget: BudgetSpec::Labels(budget),
        counts,
        runtime: start.elapsed(),
        overhead: Duration::ZERO,
        selection: Duration::ZERO,
        labels_used: result.labels_used,
    }
}

/// Run one of the baseline methods.
pub fn run_baseline(
    bench: &Benchmark,
    baseline: &dyn ErBaseline,
    budget: BudgetSpec,
    seed: u64,
) -> RunResult {
    let ctx = BaselineContext {
        dataset: &bench.dataset,
        initial: bench.initial_problems(),
        unsolved: bench.unsolved_problems(),
        budget: match budget {
            BudgetSpec::Labels(b) => b,
            BudgetSpec::Fraction(_) => 0,
        },
        train_fraction: match budget {
            BudgetSpec::Labels(_) => 1.0,
            BudgetSpec::Fraction(f) => f,
        },
        seed,
    };
    let start = Instant::now();
    let run = baseline.run(&ctx);
    RunResult {
        dataset: bench.name.clone(),
        method: baseline.name().into(),
        budget,
        counts: run.counts,
        runtime: start.elapsed(),
        overhead: Duration::ZERO,
        selection: Duration::ZERO,
        labels_used: run.labels_used,
    }
}

/// Execute the full evaluation matrix of Tables 4-5 / Fig. 5.
pub fn run_matrix(opts: &Options) -> Vec<RunResult> {
    let mut results = Vec::new();
    for name in &opts.datasets {
        let bench = load_benchmark(name, opts.scale, opts.seed);
        eprintln!("[matrix] dataset {name}: {:?}", bench.stats());
        // budget-limited methods
        for &b in &opts.budgets {
            let spec = BudgetSpec::Labels(b);
            for training in
                [TrainingMode::ActiveLearning(AlMethod::Almser), TrainingMode::ActiveLearning(AlMethod::Bootstrap)]
            {
                let r = run_morer(&bench, training, spec, opts.seed);
                eprintln!("[matrix]   {} b={b}: F1 {:.3} ({:?})", r.method, r.counts.f1(), r.runtime);
                results.push(r);
            }
            let r = run_almser_standalone(&bench, b, opts.seed);
            eprintln!("[matrix]   almser b={b}: F1 {:.3} ({:?})", r.counts.f1(), r.runtime);
            results.push(r);
            for baseline in [&SudowoodoSim::default() as &dyn ErBaseline, &AnyMatchSim::default()] {
                let r = run_baseline(&bench, baseline, spec, opts.seed);
                eprintln!(
                    "[matrix]   {} b={b}: F1 {:.3} ({:?})",
                    r.method,
                    r.counts.f1(),
                    r.runtime
                );
                results.push(r);
            }
        }
        // supervised methods at 50% and all
        for fraction in [0.5, 1.0] {
            let spec = BudgetSpec::Fraction(fraction);
            let r = run_morer(&bench, TrainingMode::Supervised { fraction }, spec, opts.seed);
            eprintln!(
                "[matrix]   morer sup {spec}: F1 {:.3} ({:?})",
                r.counts.f1(),
                r.runtime
            );
            results.push(r);
            for baseline in
                [&DittoSim::default() as &dyn ErBaseline, &UnicornSim::default(), &TransEr::default()]
            {
                let r = run_baseline(&bench, baseline, spec, opts.seed);
                eprintln!(
                    "[matrix]   {} {spec}: F1 {:.3} ({:?})",
                    r.method,
                    r.counts.f1(),
                    r.runtime
                );
                results.push(r);
            }
        }
    }
    results
}

/// Find one run in the matrix.
pub fn find<'a>(
    matrix: &'a [RunResult],
    dataset: &str,
    method: &str,
    budget: BudgetSpec,
) -> Option<&'a RunResult> {
    matrix
        .iter()
        .find(|r| r.dataset == dataset && r.method == method && r.budget == budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_spec_formats_like_the_paper() {
        assert_eq!(format!("{}", BudgetSpec::Labels(1500)), "1500");
        assert_eq!(format!("{}", BudgetSpec::Fraction(0.5)), "50%");
        assert_eq!(format!("{}", BudgetSpec::Fraction(1.0)), "all");
    }

    #[test]
    fn dataset_keys_match_table4() {
        assert_eq!(dataset_key("dexter"), "D");
        assert_eq!(dataset_key("wdc-computer"), "W");
        assert_eq!(dataset_key("music"), "M");
    }

    #[test]
    fn load_benchmark_resolves_names() {
        let b = load_benchmark("wdc", DatasetScale::Tiny, 3);
        assert_eq!(b.name, "wdc-computer");
        let b = load_benchmark("music", DatasetScale::Tiny, 3);
        assert_eq!(b.name, "music");
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        let _ = load_benchmark("nope", DatasetScale::Tiny, 3);
    }

    #[test]
    fn morer_run_produces_scored_result() {
        let bench = load_benchmark("wdc", DatasetScale::Tiny, 3);
        let r = run_morer(
            &bench,
            TrainingMode::ActiveLearning(AlMethod::Bootstrap),
            BudgetSpec::Labels(100),
            3,
        );
        assert_eq!(r.method, "morer+bs");
        assert!(r.counts.total() > 0);
        assert!(r.labels_used <= 100);
        assert!(find(&[r.clone()], "wdc-computer", "morer+bs", BudgetSpec::Labels(100)).is_some());
        assert!(find(&[r], "wdc-computer", "morer+bs", BudgetSpec::Labels(200)).is_none());
    }

    #[test]
    fn almser_standalone_run_is_scored() {
        let bench = load_benchmark("wdc", DatasetScale::Tiny, 3);
        let r = run_almser_standalone(&bench, 80, 3);
        assert_eq!(r.method, "almser");
        assert_eq!(r.labels_used, 80);
        assert!(r.counts.f1() > 0.5, "F1 = {}", r.counts.f1());
    }
}
