//! Property-based tests of the statistics substrate.

use proptest::prelude::*;

use morer_stats::describe::{mean, median, pearson, quantile, stddev, Moments, Summary};
use morer_stats::tests::{ks_statistic, psi, wasserstein_distance};
use morer_stats::{ColumnSketch, Ecdf, Histogram, UnivariateTest};

fn unit_samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..=1.0, 1..150)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn summary_mean_within_range(data in unit_samples()) {
        let s = Summary::of(&data);
        prop_assert!(s.mean >= s.min - 1e-12);
        prop_assert!(s.mean <= s.max + 1e-12);
        prop_assert!(s.variance >= 0.0);
        prop_assert!((s.stddev * s.stddev - s.variance).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_monotone(data in unit_samples(), q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let v_lo = quantile(&data, lo).unwrap();
        let v_hi = quantile(&data, hi).unwrap();
        prop_assert!(v_lo <= v_hi + 1e-12);
        // median consistency
        prop_assert_eq!(median(&data), quantile(&data, 0.5));
    }

    #[test]
    fn ks_satisfies_triangle_inequality(
        a in unit_samples(), b in unit_samples(), c in unit_samples()
    ) {
        // KS is the sup-metric on CDFs, hence a true metric
        let ab = ks_statistic(&a, &b);
        let ac = ks_statistic(&a, &c);
        let cb = ks_statistic(&c, &b);
        prop_assert!(ab <= ac + cb + 1e-9);
    }

    #[test]
    fn wasserstein_bounded_by_ks(a in unit_samples(), b in unit_samples()) {
        prop_assert!(wasserstein_distance(&a, &b) <= ks_statistic(&a, &b) + 1e-9);
    }

    #[test]
    fn psi_zero_iff_same_bins(data in unit_samples()) {
        prop_assert!(psi(&data, &data, 100) < 1e-12);
    }

    #[test]
    fn similarities_of_identical_samples_are_high(data in unit_samples()) {
        for t in UnivariateTest::all() {
            let s = t.similarity(&data, &data);
            prop_assert!(s > 0.999, "{:?}: {}", t, s);
        }
    }

    #[test]
    fn ecdf_eval_matches_manual_count(data in unit_samples(), x in 0.0f64..=1.0) {
        let e = Ecdf::new(&data);
        let expected = data.iter().filter(|&&v| v <= x).count() as f64 / data.len() as f64;
        prop_assert!((e.eval(x) - expected).abs() < 1e-12);
    }

    #[test]
    fn histogram_total_equals_sample_size(data in unit_samples(), bins in 1usize..64) {
        let h = Histogram::unit(&data, bins);
        prop_assert_eq!(h.total() as usize, data.len());
        prop_assert_eq!(h.counts().iter().sum::<u64>() as usize, data.len());
    }

    #[test]
    fn sketched_tests_are_bit_identical_to_slice_tests(
        a in unit_samples(), b in unit_samples()
    ) {
        let sa = ColumnSketch::new(&a);
        let sb = ColumnSketch::new(&b);
        for t in UnivariateTest::all() {
            prop_assert_eq!(sa.distance(&sb, t), t.distance(&a, &b), "{:?}", t);
            prop_assert_eq!(sa.similarity(&sb, t), t.similarity(&a, &b), "{:?}", t);
        }
    }

    #[test]
    fn sketched_distances_are_symmetric(a in unit_samples(), b in unit_samples()) {
        let sa = ColumnSketch::new(&a);
        let sb = ColumnSketch::new(&b);
        // KS / WD / CvM cores are exactly symmetric; PSI up to `ln` round-off
        for t in [
            UnivariateTest::KolmogorovSmirnov,
            UnivariateTest::Wasserstein,
            UnivariateTest::CramerVonMises,
        ] {
            prop_assert_eq!(sa.distance(&sb, t), sb.distance(&sa, t), "{:?}", t);
        }
        let (dab, dba) = (
            sa.distance(&sb, UnivariateTest::Psi),
            sb.distance(&sa, UnivariateTest::Psi),
        );
        prop_assert!((dab - dba).abs() < 1e-9, "PSI {} vs {}", dab, dba);
    }

    #[test]
    fn moments_merge_matches_pooled_welford(a in unit_samples(), b in unit_samples()) {
        let merged = Moments::of(&a).merge(&Moments::of(&b));
        let mut pooled = a.clone();
        pooled.extend_from_slice(&b);
        prop_assert_eq!(merged.count, pooled.len());
        prop_assert!((merged.stddev() - stddev(&pooled)).abs() < 1e-9);
        prop_assert!((merged.mean - mean(&pooled)).abs() < 1e-9);
        // commutative bit-for-bit
        prop_assert_eq!(merged, Moments::of(&b).merge(&Moments::of(&a)));
    }

    #[test]
    fn pearson_is_symmetric_and_bounded(
        pairs in proptest::collection::vec((0.0f64..=1.0, 0.0f64..=1.0), 3..50)
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&x, &y) {
            prop_assert!((-1.0..=1.0).contains(&r));
            prop_assert!((r - pearson(&y, &x).unwrap()).abs() < 1e-9);
            // scale invariance
            let y2: Vec<f64> = y.iter().map(|v| 3.0 * v + 1.0).collect();
            if let Some(r2) = pearson(&x, &y2) {
                prop_assert!((r - r2).abs() < 1e-9);
            }
        }
        // self correlation is 1 for non-constant samples
        if Summary::of(&x).stddev > 0.0 {
            prop_assert!((pearson(&x, &x).unwrap() - 1.0).abs() < 1e-9);
        }
        prop_assert!((mean(&x) - Summary::of(&x).mean).abs() < 1e-12);
    }
}
