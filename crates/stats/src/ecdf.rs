//! Empirical cumulative distribution functions.
//!
//! The paper's distribution tests operate on the CDFs `CDF_{k,l}^f` of a
//! similarity feature `f`. [`Ecdf`] stores the sorted sample and evaluates
//! `P(X <= x)` exactly; [`Ecdf::on_grid`] resamples it onto a fixed grid,
//! which is how two CDFs of different sample sizes are "adapted to the same
//! size" (paper §4.2, Wasserstein distance).

/// Evaluate the empirical CDF of an already-sorted finite sample at `x`.
/// Empty samples evaluate to 0.
///
/// This is the shared core behind [`Ecdf::eval`] and the pre-sorted
/// distribution-sketch path — both produce bit-identical values because
/// they *are* the same computation.
#[inline]
pub fn eval_sorted(sorted: &[f64], x: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    // partition_point returns the count of elements <= x.
    let n_le = sorted.partition_point(|&v| v <= x);
    n_le as f64 / sorted.len() as f64
}

/// Evaluate the empirical CDF of an already-sorted finite sample on `points`
/// equally spaced grid positions spanning `[lo, hi]` (inclusive) — the
/// shared core behind [`Ecdf::on_grid`].
pub fn grid_sorted(sorted: &[f64], points: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(points >= 2, "grid needs at least two points");
    (0..points)
        .map(|i| {
            let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
            eval_sorted(sorted, x)
        })
        .collect()
}

/// Sort `data` into ECDF order, dropping non-finite values — the
/// normalization step shared by [`Ecdf::new`] and the sketch builders.
pub fn sorted_finite(data: &[f64]) -> Vec<f64> {
    let mut sorted: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
    sorted.sort_by(f64::total_cmp);
    sorted
}

/// Empirical CDF of a finite sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build the ECDF of `data` (non-finite values are dropped).
    pub fn new(data: &[f64]) -> Self {
        Self { sorted: sorted_finite(data) }
    }

    /// Wrap an already-sorted finite sample (as produced by
    /// [`sorted_finite`]) without re-sorting.
    pub fn from_sorted(sorted: Vec<f64>) -> Self {
        debug_assert!(sorted.windows(2).all(|w| f64::total_cmp(&w[0], &w[1]).is_le()));
        debug_assert!(sorted.iter().all(|x| x.is_finite()));
        Self { sorted }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluate `F(x) = P(X <= x)`. Empty samples evaluate to 0.
    pub fn eval(&self, x: f64) -> f64 {
        eval_sorted(&self.sorted, x)
    }

    /// Evaluate the CDF on `points` equally spaced grid positions spanning
    /// `[lo, hi]` (inclusive).
    pub fn on_grid(&self, points: usize, lo: f64, hi: f64) -> Vec<f64> {
        grid_sorted(&self.sorted, points, lo, hi)
    }

    /// The sorted underlying sample.
    pub fn sample(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_steps_at_sample_points() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn handles_duplicates() {
        let e = Ecdf::new(&[1.0, 1.0, 2.0]);
        assert!((e.eval(1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_evaluates_to_zero() {
        let e = Ecdf::new(&[]);
        assert!(e.is_empty());
        assert_eq!(e.eval(0.5), 0.0);
    }

    #[test]
    fn grid_is_monotone_and_ends_at_one() {
        let data: Vec<f64> = (0..50).map(|i| i as f64 / 50.0).collect();
        let e = Ecdf::new(&data);
        let g = e.on_grid(11, 0.0, 1.0);
        assert_eq!(g.len(), 11);
        for w in g.windows(2) {
            assert!(w[1] >= w[0], "CDF grid must be monotone");
        }
        assert_eq!(*g.last().unwrap(), 1.0);
    }

    #[test]
    fn drops_non_finite() {
        let e = Ecdf::new(&[0.5, f64::NAN, f64::NEG_INFINITY]);
        assert_eq!(e.len(), 1);
    }
}
