//! Descriptive statistics over `f64` samples.

/// Summary statistics of a sample.
///
/// Construction scans the data once (two passes for quantiles, which need a
/// sort). Empty samples produce a summary full of zeros with `count == 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of (finite) observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance (divides by `n`, not `n − 1`).
    pub variance: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Compute summary statistics of `data`, ignoring non-finite entries.
    pub fn of(data: &[f64]) -> Self {
        let mut count = 0usize;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in data {
            if !x.is_finite() {
                continue;
            }
            count += 1;
            // Welford's online algorithm for numerically stable variance.
            let delta = x - mean;
            mean += delta / count as f64;
            m2 += delta * (x - mean);
            min = min.min(x);
            max = max.max(x);
        }
        if count == 0 {
            return Self { count: 0, mean: 0.0, variance: 0.0, stddev: 0.0, min: 0.0, max: 0.0 };
        }
        let variance = m2 / count as f64;
        Self { count, mean, variance, stddev: variance.sqrt(), min, max }
    }
}

/// Streaming `(count, mean, M2)` moments of a sample — the mergeable core of
/// Welford's variance algorithm.
///
/// Distribution sketches store one `Moments` per feature column so the
/// pooled standard deviation of *two* samples (the §4.2 "discriminative
/// power" weight) is an O(1) [`Moments::merge`] (Chan et al.'s parallel
/// update) instead of concatenating both columns into a fresh `Vec` per
/// pair. The merge formula is written in its commutative form
/// (`merge(a, b) == merge(b, a)` bit-for-bit), which keeps `sim_p`
/// exactly symmetric.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Moments {
    /// Number of (finite) observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sum of squared deviations from the mean (`M2` in Welford's terms).
    pub m2: f64,
}

impl Moments {
    /// Accumulate the moments of `data` (non-finite entries are skipped),
    /// in data order — the same Welford recurrence as [`Summary::of`].
    pub fn of(data: &[f64]) -> Self {
        let mut m = Self::default();
        for &x in data {
            m.push(x);
        }
        m
    }

    /// Add one observation (non-finite values are ignored).
    #[inline]
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Combine two moment sets as if their samples had been pooled
    /// (Chan/Welford parallel merge). Commutative, including in floating
    /// point: `a*x + b*y` and `x.min/max` style terms are all symmetric.
    pub fn merge(&self, other: &Self) -> Self {
        if self.count == 0 {
            return *other;
        }
        if other.count == 0 {
            return *self;
        }
        let (na, nb) = (self.count as f64, other.count as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        Self {
            count: self.count + other.count,
            mean: (na * self.mean + nb * other.mean) / n,
            m2: self.m2 + other.m2 + delta * delta * (na * nb / n),
        }
    }

    /// Population variance (0.0 for empty input).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        (self.m2 / self.count as f64).max(0.0)
    }

    /// Population standard deviation (0.0 for empty input).
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Population standard deviation of a sample (0.0 for empty input).
pub fn stddev(data: &[f64]) -> f64 {
    Summary::of(data).stddev
}

/// Arithmetic mean of a sample (0.0 for empty input).
pub fn mean(data: &[f64]) -> f64 {
    Summary::of(data).mean
}

/// Linear-interpolation quantile (`q ∈ [0,1]`) of a sample.
///
/// Returns `None` for empty input. Uses the "linear" (type 7) method, the
/// default in NumPy.
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    let mut v: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    v.sort_by(f64::total_cmp);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(v[lo]);
    }
    let frac = pos - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

/// Median of a sample.
pub fn median(data: &[f64]) -> Option<f64> {
    quantile(data, 0.5)
}

/// Weighted arithmetic mean. Returns the unweighted mean if all weights are
/// zero; returns 0.0 for empty input.
///
/// # Panics
/// Panics if `values` and `weights` differ in length.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(values.len(), weights.len(), "values/weights length mismatch");
    if values.is_empty() {
        return 0.0;
    }
    let wsum: f64 = weights.iter().sum();
    if wsum <= 0.0 {
        return mean(values);
    }
    values.iter().zip(weights).map(|(v, w)| v * w).sum::<f64>() / wsum
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `None` when fewer than two points or either sample is constant.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "pearson needs equal-length samples");
    if x.len() < 2 {
        return None;
    }
    let sx = Summary::of(x);
    let sy = Summary::of(y);
    if sx.stddev == 0.0 || sy.stddev == 0.0 {
        return None;
    }
    let cov: f64 = x
        .iter()
        .zip(y)
        .map(|(&a, &b)| (a - sx.mean) * (b - sy.mean))
        .sum::<f64>()
        / x.len() as f64;
    Some((cov / (sx.stddev * sy.stddev)).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_ignores_non_finite() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(4.0));
        assert_eq!(quantile(&data, 0.5), Some(2.5));
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn weighted_mean_behaviour() {
        assert_eq!(weighted_mean(&[1.0, 3.0], &[1.0, 1.0]), 2.0);
        assert_eq!(weighted_mean(&[1.0, 3.0], &[0.0, 1.0]), 3.0);
        // all-zero weights fall back to the unweighted mean
        assert_eq!(weighted_mean(&[1.0, 3.0], &[0.0, 0.0]), 2.0);
        assert_eq!(weighted_mean(&[], &[]), 0.0);
    }

    #[test]
    fn stddev_constant_sample_is_zero() {
        assert_eq!(stddev(&[2.0, 2.0, 2.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let inv = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &inv).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn moments_match_summary() {
        let data = [0.1, 0.7, 0.4, 0.9, f64::NAN, 0.2];
        let m = Moments::of(&data);
        let s = Summary::of(&data);
        assert_eq!(m.count, s.count);
        assert_eq!(m.mean, s.mean);
        assert_eq!(m.variance(), s.variance);
        assert_eq!(m.stddev(), s.stddev);
    }

    #[test]
    fn moments_merge_matches_pooled_allocation() {
        // the merge must agree with the old allocate-and-concatenate pooled
        // stddev up to fp round-off
        let a: Vec<f64> = (0..57).map(|i| (i as f64 * 0.017) % 1.0).collect();
        let b: Vec<f64> = (0..91).map(|i| (i as f64 * 0.029 + 0.3) % 1.0).collect();
        let merged = Moments::of(&a).merge(&Moments::of(&b));
        let mut pooled = a.clone();
        pooled.extend_from_slice(&b);
        assert_eq!(merged.count, pooled.len());
        assert!((merged.stddev() - stddev(&pooled)).abs() < 1e-12);
        assert!((merged.mean - mean(&pooled)).abs() < 1e-12);
    }

    #[test]
    fn moments_merge_is_commutative_bitwise() {
        let a = Moments::of(&[0.1, 0.5, 0.9, 0.3]);
        let b = Moments::of(&[0.2, 0.8, 0.6]);
        assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn moments_merge_with_empty_is_identity() {
        let a = Moments::of(&[0.4, 0.6]);
        let e = Moments::default();
        assert_eq!(a.merge(&e), a);
        assert_eq!(e.merge(&a), a);
        assert_eq!(e.merge(&e).count, 0);
        assert_eq!(e.stddev(), 0.0);
    }

    #[test]
    fn pearson_degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None);
        let x = [1.0, 2.0, 3.0];
        let uncorrelated = [5.0, 1.0, 5.0];
        let r = pearson(&x, &uncorrelated).unwrap();
        assert!(r.abs() < 0.5, "got {r}");
    }
}
