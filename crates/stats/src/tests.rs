//! Two-sample univariate distribution tests (paper §4.2).
//!
//! Each test compares the distributions of one similarity feature from two ER
//! problems and yields a *distance*; [`UnivariateTest::similarity`] converts
//! it into a similarity in `[0, 1]` used as the ER-problem-graph edge weight:
//!
//! * Kolmogorov-Smirnov (Eq. 1): `sim = 1 − sup |CDF_a − CDF_b|`.
//! * Wasserstein (Eq. 2): the CDFs are evaluated on a shared grid and the
//!   distance is the *mean* absolute CDF difference (the paper's sum,
//!   normalized by grid size so it is sample-size independent and bounded by
//!   the feature range); `sim = 1 − distance` for features on `[0, 1]`.
//! * Population Stability Index (Eq. 3) with the conventional 100 bins and
//!   ε-smoothing of empty bins; `sim = exp(−PSI)` maps the unbounded index
//!   onto `(0, 1]`.
//!
//! Every test is factored into a core that operates on *pre-processed* data
//! — [`ks_statistic_sorted`] on sorted samples, [`wasserstein_on_grid_pregrid`]
//! / [`cramer_von_mises_pregrid`] on precomputed CDF grids,
//! [`psi_from_histograms`] on prebuilt histograms — and a slice-based public
//! wrapper that does the preprocessing and delegates. [`crate::sketch`]
//! precomputes the same artifacts once per sample and calls the same cores,
//! so the sketched path is bit-identical to the slice path by construction
//! (the PR 1 shared-cores discipline applied to distribution analysis).

use crate::ecdf::{sorted_finite, Ecdf};
use crate::histogram::Histogram;

/// Number of grid points used to align two CDFs of different sample sizes.
pub const CDF_GRID: usize = 101;

/// Number of bins used by the PSI, "where 100 is a commonly used number of
/// bins" (paper Eq. 3).
pub const PSI_BINS: usize = 100;

/// Smoothing floor applied to empty-bin proportions so `ln` stays finite.
pub const PSI_EPSILON: f64 = 1e-4;

/// The univariate two-sample distribution tests evaluated in the paper,
/// plus Cramér-von Mises as an extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnivariateTest {
    /// Kolmogorov-Smirnov statistic (supremum CDF distance).
    KolmogorovSmirnov,
    /// Wasserstein / earth-mover distance via aligned CDFs.
    Wasserstein,
    /// Population Stability Index.
    Psi,
    /// Cramér-von Mises (mean *squared* CDF distance) — between KS's
    /// supremum and WD's mean in spike sensitivity; not in the paper's
    /// sweep but provided for experimentation.
    CramerVonMises,
}

impl UnivariateTest {
    /// Short name as used in the paper's figures (KS / WD / PSI).
    pub fn short_name(self) -> &'static str {
        match self {
            Self::KolmogorovSmirnov => "KS",
            Self::Wasserstein => "WD",
            Self::Psi => "PSI",
            Self::CramerVonMises => "CvM",
        }
    }

    /// Raw distance between the two samples (lower = more similar).
    pub fn distance(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Self::KolmogorovSmirnov => ks_statistic(a, b),
            Self::Wasserstein => wasserstein_distance(a, b),
            Self::Psi => psi(a, b, PSI_BINS),
            Self::CramerVonMises => cramer_von_mises(a, b),
        }
    }

    /// Map a raw distance onto the similarity scale in `[0, 1]` — shared by
    /// the slice-based [`Self::similarity`] and the sketched path so both
    /// apply the identical transform.
    pub fn similarity_from_distance(self, d: f64) -> f64 {
        let s = match self {
            Self::KolmogorovSmirnov | Self::Wasserstein | Self::CramerVonMises => 1.0 - d,
            Self::Psi => (-d).exp(),
        };
        s.clamp(0.0, 1.0)
    }

    /// Similarity in `[0, 1]` (`1` = same distribution), assuming samples
    /// live on the unit interval (true for similarity features).
    pub fn similarity(self, a: &[f64], b: &[f64]) -> f64 {
        self.similarity_from_distance(self.distance(a, b))
    }

    /// All tests, for sweeps.
    pub fn all() -> [Self; 4] {
        [Self::KolmogorovSmirnov, Self::Wasserstein, Self::Psi, Self::CramerVonMises]
    }
}

/// Distance of a pair where at least one side is empty, or `None` when both
/// sides have data. `unit_scale` tests (KS/WD/CvM) use 1.0 for
/// empty-vs-non-empty; PSI uses +∞ (its callers map that to similarity 0).
/// Shared by the slice-based wrappers here and [`crate::sketch`].
#[inline]
pub(crate) fn empty_gate(a_empty: bool, b_empty: bool, one_sided: f64) -> Option<f64> {
    match (a_empty, b_empty) {
        (true, true) => Some(0.0),
        (true, false) | (false, true) => Some(one_sided),
        (false, false) => None,
    }
}

/// Two-sample Kolmogorov-Smirnov statistic
/// `sup_x |CDF_a(x) − CDF_b(x)|` (paper Eq. 1).
///
/// Computed exactly by merging the two sorted samples. Empty-vs-non-empty
/// yields 1.0; empty-vs-empty yields 0.0.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    let sa = sorted_finite(a);
    let sb = sorted_finite(b);
    if let Some(d) = empty_gate(sa.is_empty(), sb.is_empty(), 1.0) {
        return d;
    }
    ks_statistic_sorted(&sa, &sb)
}

/// [`ks_statistic`] core on pre-sorted finite non-empty samples: a single
/// O(|a| + |b|) merge walk over the two step functions (no per-point binary
/// searches, no allocation). The supremum is evaluated after each distinct
/// merged value, which covers every sample point of either side — exactly
/// the candidate set of the textbook definition.
///
/// The CDF difference `|i/n_a − j/n_b|` is tracked as the *integer*
/// `|i·n_b − j·n_a|` and divided once at the end, so the walk is exact
/// (no per-step rounding) and free of per-step divisions. Counts are
/// bounded by `n_a · n_b`, which fits `u64` for any realistic sample.
///
/// Once one sample is exhausted its CDF is 1 and the other's only climbs
/// toward 1, so the loop-exit difference dominates the tail — no tail scan
/// is needed.
pub fn ks_statistic_sorted(a: &[f64], b: &[f64]) -> f64 {
    let (na, nb) = (a.len(), b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut sup: u64 = 0;
    while i < na && j < nb {
        // next distinct value of the merged sample
        let x = if a[i] <= b[j] { a[i] } else { b[j] };
        while i < na && a[i] <= x {
            i += 1;
        }
        while j < nb && b[j] <= x {
            j += 1;
        }
        let d = ((i * nb) as i64 - (j * na) as i64).unsigned_abs();
        if d > sup {
            sup = d;
        }
    }
    sup as f64 / (na as f64 * nb as f64)
}

/// Wasserstein distance per the paper's Eq. 2: both CDFs are evaluated on a
/// shared [`CDF_GRID`]-point grid over `[0, 1]` and the absolute differences
/// are averaged.
///
/// For samples on the unit interval this equals the classical 1-Wasserstein
/// distance (∫|CDF_a − CDF_b|) up to grid resolution, and is bounded by 1.
pub fn wasserstein_distance(a: &[f64], b: &[f64]) -> f64 {
    wasserstein_on_grid(a, b, CDF_GRID, 0.0, 1.0)
}

/// Grid-parameterized variant of [`wasserstein_distance`].
pub fn wasserstein_on_grid(a: &[f64], b: &[f64], points: usize, lo: f64, hi: f64) -> f64 {
    let ea = Ecdf::new(a);
    let eb = Ecdf::new(b);
    if let Some(d) = empty_gate(ea.is_empty(), eb.is_empty(), 1.0) {
        return d;
    }
    wasserstein_on_grid_pregrid(&ea.on_grid(points, lo, hi), &eb.on_grid(points, lo, hi))
}

/// [`wasserstein_on_grid`] core on two precomputed equal-length CDF grids.
///
/// # Panics
/// Panics if the grids differ in length.
pub fn wasserstein_on_grid_pregrid(ga: &[f64], gb: &[f64]) -> f64 {
    assert_eq!(ga.len(), gb.len(), "CDF grids must have equal length");
    let sum: f64 = ga.iter().zip(gb).map(|(x, y)| (x - y).abs()).sum();
    sum / ga.len() as f64
}

/// Cramér-von Mises distance: the mean *squared* absolute difference of the
/// two CDFs on the shared grid, square-rooted so it lives on `[0, 1]` like
/// KS and WD. Satisfies `WD <= CvM <= KS` pointwise on the grid.
pub fn cramer_von_mises(a: &[f64], b: &[f64]) -> f64 {
    let ea = Ecdf::new(a);
    let eb = Ecdf::new(b);
    if let Some(d) = empty_gate(ea.is_empty(), eb.is_empty(), 1.0) {
        return d;
    }
    cramer_von_mises_pregrid(&ea.on_grid(CDF_GRID, 0.0, 1.0), &eb.on_grid(CDF_GRID, 0.0, 1.0))
}

/// [`cramer_von_mises`] core on two precomputed equal-length CDF grids.
///
/// # Panics
/// Panics if the grids differ in length.
pub fn cramer_von_mises_pregrid(ga: &[f64], gb: &[f64]) -> f64 {
    assert_eq!(ga.len(), gb.len(), "CDF grids must have equal length");
    let sum: f64 = ga.iter().zip(gb).map(|(x, y)| (x - y) * (x - y)).sum();
    (sum / ga.len() as f64).sqrt()
}

/// Population Stability Index (paper Eq. 3):
/// `Σ_i (prop_a(i) − prop_b(i)) · ln(prop_a(i) / prop_b(i))`
/// over `bins` equal-width bins on `[0, 1]`, with proportions floored at
/// [`PSI_EPSILON`] so empty bins do not blow up the logarithm.
///
/// PSI is symmetric and non-negative; identical samples give 0.
pub fn psi(a: &[f64], b: &[f64], bins: usize) -> f64 {
    psi_from_histograms(&Histogram::unit(a, bins), &Histogram::unit(b, bins))
}

/// [`psi`] core on two prebuilt histograms (same binning assumed).
pub fn psi_from_histograms(ha: &Histogram, hb: &Histogram) -> f64 {
    if let Some(d) = empty_gate(ha.total() == 0, hb.total() == 0, f64::INFINITY) {
        return d;
    }
    psi_from_proportions(&ha.proportions(), &hb.proportions())
}

/// [`psi`] core on two precomputed non-empty proportion vectors (as produced
/// by [`Histogram::proportions`]) — the allocation-free innermost loop
/// shared with the sketched path.
pub fn psi_from_proportions(pa: &[f64], pb: &[f64]) -> f64 {
    pa.iter()
        .zip(pb)
        .map(|(&x, &y)| {
            let x = x.max(PSI_EPSILON);
            let y = y.max(PSI_EPSILON);
            (x - y) * (x / y).ln()
        })
        .sum()
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn uniform(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect()
    }

    fn shifted(n: usize, delta: f64) -> Vec<f64> {
        uniform(n).iter().map(|x| (x + delta).min(1.0)).collect()
    }

    #[test]
    fn ks_identical_is_zero() {
        let a = uniform(200);
        assert!(ks_statistic(&a, &a) < 1e-12);
    }

    #[test]
    fn ks_disjoint_is_one() {
        let a = vec![0.1, 0.15, 0.2];
        let b = vec![0.8, 0.85, 0.9];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_known_half_overlap() {
        // a = {0.25}, b = {0.25, 0.75}: sup diff = 0.5 at x in [0.25, 0.75)
        let d = ks_statistic(&[0.25], &[0.25, 0.75]);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_empty_handling() {
        assert_eq!(ks_statistic(&[], &[]), 0.0);
        assert_eq!(ks_statistic(&[], &[0.5]), 1.0);
    }

    #[test]
    fn ks_merge_walk_matches_per_point_supremum() {
        // reference implementation: evaluate |Fa - Fb| at every sample point
        // via the Ecdf binary-search evaluator (the pre-refactor algorithm)
        let cases: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (uniform(37), shifted(53, 0.2)),
            (vec![0.5; 10], uniform(7)),
            (uniform(100), uniform(100)),
            (vec![0.1, 0.1, 0.9], vec![0.1, 0.9, 0.9]),
            (vec![0.3], vec![0.7]),
        ];
        for (a, b) in cases {
            let ea = Ecdf::new(&a);
            let eb = Ecdf::new(&b);
            let mut sup: f64 = 0.0;
            for &x in ea.sample().iter().chain(eb.sample()) {
                sup = sup.max((ea.eval(x) - eb.eval(x)).abs());
            }
            // the merge walk tracks integer counts and divides once at the
            // end, so it may differ from the per-point fp reference by ulps
            let d = ks_statistic(&a, &b);
            assert!((d - sup).abs() < 1e-12, "a={a:?} b={b:?}: {d} vs {sup}");
        }
    }

    #[test]
    fn wasserstein_shift_detection() {
        let a = uniform(500);
        let b = shifted(500, 0.2);
        let d = wasserstein_distance(&a, &b);
        // shifting a uniform by 0.2 (clipped) moves mass by ~0.2 on average
        assert!(d > 0.15 && d < 0.25, "got {d}");
        assert!(wasserstein_distance(&a, &a) < 1e-9);
    }

    #[test]
    fn wasserstein_less_sensitive_than_ks_to_local_spikes() {
        // Concentrated local difference: KS sees the spike, WD integrates it.
        let mut a = uniform(1000);
        let b = a.clone();
        for x in a.iter_mut().take(100) {
            *x = 0.5; // move 10% of mass to a point
        }
        let ks = ks_statistic(&a, &b);
        let wd = wasserstein_distance(&a, &b);
        assert!(ks > wd, "ks={ks} wd={wd}");
    }

    #[test]
    fn psi_identical_is_zero_and_symmetric() {
        let a = uniform(300);
        assert!(psi(&a, &a, 100) < 1e-12);
        let b = shifted(300, 0.3);
        let d1 = psi(&a, &b, 100);
        let d2 = psi(&b, &a, 100);
        assert!((d1 - d2).abs() < 1e-9, "PSI must be symmetric");
        assert!(d1 > 0.0);
    }

    #[test]
    fn psi_monotone_in_shift() {
        let a = uniform(500);
        let d_small = psi(&a, &shifted(500, 0.05), 100);
        let d_large = psi(&a, &shifted(500, 0.4), 100);
        assert!(d_large > d_small, "small={d_small} large={d_large}");
    }

    #[test]
    fn similarities_bounded_and_ordered() {
        let a = uniform(400);
        let near = shifted(400, 0.02);
        let far = shifted(400, 0.5);
        for t in UnivariateTest::all() {
            let s_self = t.similarity(&a, &a);
            let s_near = t.similarity(&a, &near);
            let s_far = t.similarity(&a, &far);
            assert!(s_self > 0.99, "{t:?} self sim {s_self}");
            assert!(s_near > s_far, "{t:?}: near {s_near} far {s_far}");
            for s in [s_self, s_near, s_far] {
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn similarity_from_distance_matches_similarity() {
        let a = uniform(64);
        let b = shifted(64, 0.15);
        for t in UnivariateTest::all() {
            assert_eq!(t.similarity(&a, &b), t.similarity_from_distance(t.distance(&a, &b)));
        }
        // PSI's infinite distance (one empty side) maps to similarity 0
        assert_eq!(UnivariateTest::Psi.similarity_from_distance(f64::INFINITY), 0.0);
    }

    #[test]
    fn short_names() {
        assert_eq!(UnivariateTest::KolmogorovSmirnov.short_name(), "KS");
        assert_eq!(UnivariateTest::Wasserstein.short_name(), "WD");
        assert_eq!(UnivariateTest::Psi.short_name(), "PSI");
        assert_eq!(UnivariateTest::CramerVonMises.short_name(), "CvM");
    }

    #[test]
    fn cvm_sits_between_wd_and_ks() {
        let a = uniform(500);
        let mut b = a.clone();
        for x in b.iter_mut().take(50) {
            *x = 0.5; // local spike
        }
        let ks = ks_statistic(&a, &b);
        let wd = wasserstein_distance(&a, &b);
        let cvm = cramer_von_mises(&a, &b);
        assert!(cvm <= ks + 1e-9, "cvm {cvm} > ks {ks}");
        assert!(cvm + 1e-9 >= wd, "cvm {cvm} < wd {wd}");
        assert!(cramer_von_mises(&a, &a) < 1e-12);
        assert_eq!(cramer_von_mises(&[], &[]), 0.0);
        assert_eq!(cramer_von_mises(&[], &[0.5]), 1.0);
    }
}
