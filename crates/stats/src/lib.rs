//! # morer-stats — distribution analysis substrate
//!
//! Statistical machinery backing MoRER's *similarity distribution analysis*
//! (paper §4.2): descriptive statistics, fixed-bin histograms over the unit
//! interval, empirical cumulative distribution functions, and the three
//! univariate two-sample distribution tests the paper evaluates —
//! Kolmogorov-Smirnov, Wasserstein distance (the paper's Eq. 2 CDF-grid
//! formulation), and the Population Stability Index (Eq. 3).
//!
//! Each test exposes both a raw *distance* and a *similarity* in `[0, 1]`
//! (`1` = identically distributed), which is what the ER problem graph edges
//! are weighted with.
//!
//! Every test is split into a preprocessing step and a core that operates on
//! pre-sorted / pre-gridded / pre-binned data; [`sketch::ColumnSketch`]
//! caches the preprocessed artifacts once per sample so pairwise loops pay
//! only the core (see the module docs of [`sketch`]).
//!
//! ```
//! use morer_stats::tests::UnivariateTest;
//!
//! let a: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
//! let b = a.clone();
//! let sim = UnivariateTest::KolmogorovSmirnov.similarity(&a, &b);
//! assert!((sim - 1.0).abs() < 1e-9);
//! ```

pub mod describe;
pub mod ecdf;
pub mod histogram;
pub mod sketch;
pub mod tests;

pub use describe::{Moments, Summary};
pub use ecdf::Ecdf;
pub use histogram::Histogram;
pub use sketch::ColumnSketch;
pub use tests::UnivariateTest;
