//! Fixed-width histograms over a bounded interval.
//!
//! Used for the Population Stability Index (which bins both samples the same
//! way) and for regenerating the paper's Fig. 2 similarity histograms.

/// Equal-width histogram over `[lo, hi]`.
///
/// Values outside the range are clamped into the first/last bin; non-finite
/// values are skipped.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Build a histogram of `data` with `bins` equal-width bins over
    /// `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(data: &[f64], bins: usize, lo: f64, hi: f64) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "invalid histogram range [{lo}, {hi}]");
        let mut counts = vec![0u64; bins];
        let mut total = 0u64;
        let width = (hi - lo) / bins as f64;
        for &x in data {
            if !x.is_finite() {
                continue;
            }
            let idx = (((x - lo) / width) as isize).clamp(0, bins as isize - 1) as usize;
            counts[idx] += 1;
            total += 1;
        }
        Self { lo, hi, counts, total }
    }

    /// Histogram over the unit interval — the domain of similarity features.
    pub fn unit(data: &[f64], bins: usize) -> Self {
        Self::new(data, bins, 0.0, 1.0)
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of binned observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Per-bin proportions, i.e. `counts / total`. All zeros when empty.
    pub fn proportions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / self.total as f64).collect()
    }

    /// Midpoint of bin `i` (for plotting/printing).
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }

    /// Lower edge of bin `i`.
    pub fn bin_edge(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + i as f64 * width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_expected_bins() {
        let h = Histogram::unit(&[0.05, 0.15, 0.15, 0.95], 10);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn boundary_value_goes_to_last_bin() {
        let h = Histogram::unit(&[1.0], 10);
        assert_eq!(h.counts()[9], 1);
        let h = Histogram::unit(&[0.0], 10);
        assert_eq!(h.counts()[0], 1);
    }

    #[test]
    fn out_of_range_clamped_non_finite_skipped() {
        let h = Histogram::unit(&[-0.5, 1.5, f64::NAN], 4);
        assert_eq!(h.counts(), &[1, 0, 0, 1]);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn proportions_sum_to_one() {
        let data: Vec<f64> = (0..97).map(|i| i as f64 / 97.0).collect();
        let h = Histogram::unit(&data, 10);
        let s: f64 = h.proportions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_all_zero() {
        let h = Histogram::unit(&[], 5);
        assert_eq!(h.total(), 0);
        assert!(h.proportions().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn bin_centers_and_edges() {
        let h = Histogram::unit(&[], 4);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
        assert!((h.bin_edge(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::unit(&[1.0], 0);
    }
}
