//! Per-column distribution sketches: the O(problems) precomputation behind
//! MoRER's pairwise distribution analysis.
//!
//! The pairwise `sim_p` loops (repository construction's O(P²) problem graph
//! and every model-search solve) repeatedly need the *same* per-sample
//! artifacts — a sorted copy of each feature column, its ECDF evaluated on
//! the shared Wasserstein grid, its PSI histogram, and its `(count, mean,
//! M2)` moments for the pooled-stddev feature weight. A [`ColumnSketch`]
//! computes all of them once (O(n log n) per column), after which any
//! two-sample test against another sketch is allocation-free:
//!
//! * KS: an O(n_a + n_b) merge walk over the two sorted samples
//!   ([`crate::tests::ks_statistic_sorted`]);
//! * WD / CvM: an O(grid) pass over the precomputed CDF grids;
//! * PSI: an O(bins) pass over the precomputed histograms;
//! * pooled stddev: an O(1) [`Moments::merge`].
//!
//! Because the slice-based public test functions delegate to the *same*
//! cores, a sketch comparison is bit-identical to the corresponding slice
//! computation on the same data.

use crate::describe::Moments;
use crate::ecdf::{sorted_finite, Ecdf};
use crate::histogram::Histogram;
use crate::tests::{
    cramer_von_mises_pregrid, empty_gate, ks_statistic_sorted, psi_from_proportions,
    wasserstein_on_grid_pregrid, UnivariateTest, CDF_GRID, PSI_BINS,
};

/// Precomputed distribution artifacts of one feature column (assumed to live
/// on the unit interval, as similarity features do).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSketch {
    /// Sorted finite sample (the ECDF support).
    ecdf: Ecdf,
    /// ECDF evaluated on the shared [`CDF_GRID`]-point grid over `[0, 1]`.
    grid: Vec<f64>,
    /// [`PSI_BINS`]-bin unit-interval histogram proportions
    /// ([`Histogram::proportions`]), plus the binned count for the
    /// empty-sample gate.
    props: Vec<f64>,
    hist_total: u64,
    /// Data-order Welford moments (for pooled-stddev weighting).
    moments: Moments,
}

impl ColumnSketch {
    /// Sketch one column. `column` is consumed in data order for the
    /// moments (matching a direct Welford pass over the same slice), then
    /// sorted for the ECDF.
    pub fn new(column: &[f64]) -> Self {
        let moments = Moments::of(column);
        let hist = Histogram::unit(column, PSI_BINS);
        let (props, hist_total) = (hist.proportions(), hist.total());
        let ecdf = Ecdf::from_sorted(sorted_finite(column));
        let grid = ecdf.on_grid(CDF_GRID, 0.0, 1.0);
        Self { ecdf, grid, props, hist_total, moments }
    }

    /// Number of (finite) observations backing the sketch.
    pub fn len(&self) -> usize {
        self.ecdf.len()
    }

    /// True when the sketched sample is empty.
    pub fn is_empty(&self) -> bool {
        self.ecdf.is_empty()
    }

    /// The sorted sample.
    pub fn sorted(&self) -> &[f64] {
        self.ecdf.sample()
    }

    /// The column's Welford moments.
    pub fn moments(&self) -> &Moments {
        &self.moments
    }

    /// The ECDF evaluated on the shared [`CDF_GRID`]-point grid over
    /// `[0, 1]` — the exact vector [`ColumnSketch::distance`] consumes for
    /// WD/CvM, exposed so index layers can derive distance *lower bounds*
    /// from grid subsets (any `|grid_a[k] - grid_b[k]|` lower-bounds the KS
    /// sup, any partial L1 sum over the grid lower-bounds the full WD sum).
    pub fn grid(&self) -> &[f64] {
        &self.grid
    }

    /// The [`PSI_BINS`]-bin histogram proportions — the exact vector the
    /// PSI distance consumes. Every per-bin PSI term is non-negative, so a
    /// partial sum over any bin subset lower-bounds the full PSI distance.
    pub fn props(&self) -> &[f64] {
        &self.props
    }

    /// Total binned count behind [`ColumnSketch::props`] (the PSI
    /// empty-sample gate fires on `hist_total() == 0`).
    pub fn hist_total(&self) -> u64 {
        self.hist_total
    }

    /// Pooled standard deviation of this column and `other` as if both
    /// samples were concatenated — the §4.2 "discriminative power" weight,
    /// via an O(1) moments merge.
    pub fn pooled_stddev(&self, other: &Self) -> f64 {
        self.moments.merge(&other.moments).stddev()
    }

    /// Raw two-sample distance against `other` under `test` — identical to
    /// `test.distance(column_a, column_b)` on the underlying samples.
    pub fn distance(&self, other: &Self, test: UnivariateTest) -> f64 {
        // the same empty-sample gate the slice-based wrappers apply (PSI
        // gates on binned totals and maps one-empty to +∞)
        let gated = match test {
            UnivariateTest::Psi => {
                empty_gate(self.hist_total == 0, other.hist_total == 0, f64::INFINITY)
            }
            _ => empty_gate(self.is_empty(), other.is_empty(), 1.0),
        };
        if let Some(d) = gated {
            return d;
        }
        match test {
            UnivariateTest::KolmogorovSmirnov => ks_statistic_sorted(self.sorted(), other.sorted()),
            UnivariateTest::Wasserstein => wasserstein_on_grid_pregrid(&self.grid, &other.grid),
            UnivariateTest::CramerVonMises => cramer_von_mises_pregrid(&self.grid, &other.grid),
            UnivariateTest::Psi => psi_from_proportions(&self.props, &other.props),
        }
    }

    /// Similarity in `[0, 1]` against `other` — identical to
    /// `test.similarity(column_a, column_b)` on the underlying samples.
    pub fn similarity(&self, other: &Self, test: UnivariateTest) -> f64 {
        test.similarity_from_distance(self.distance(other, test))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::stddev;

    fn col(n: usize, offset: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 * 0.731 + offset) % 1.0).abs()).collect()
    }

    #[test]
    fn sketch_distances_match_slice_functions_bitwise() {
        let a = col(173, 0.0);
        let b = col(211, 0.37);
        let sa = ColumnSketch::new(&a);
        let sb = ColumnSketch::new(&b);
        for t in UnivariateTest::all() {
            assert_eq!(sa.distance(&sb, t), t.distance(&a, &b), "{t:?} distance");
            assert_eq!(sa.similarity(&sb, t), t.similarity(&a, &b), "{t:?} similarity");
        }
    }

    #[test]
    fn sketch_empty_gates_match_slice_functions() {
        let a = col(31, 0.1);
        let sa = ColumnSketch::new(&a);
        let se = ColumnSketch::new(&[]);
        assert!(se.is_empty());
        for t in UnivariateTest::all() {
            assert_eq!(se.distance(&se, t), t.distance(&[], &[]), "{t:?} both empty");
            assert_eq!(sa.distance(&se, t), t.distance(&a, &[]), "{t:?} one empty");
            assert_eq!(se.similarity(&sa, t), t.similarity(&[], &a), "{t:?} sim");
        }
    }

    #[test]
    fn pooled_stddev_matches_concatenation() {
        let a = col(64, 0.2);
        let b = col(48, 0.6);
        let sa = ColumnSketch::new(&a);
        let sb = ColumnSketch::new(&b);
        let mut pooled = a.clone();
        pooled.extend_from_slice(&b);
        assert!((sa.pooled_stddev(&sb) - stddev(&pooled)).abs() < 1e-12);
        // symmetric bit-for-bit (commutative moments merge)
        assert_eq!(sa.pooled_stddev(&sb), sb.pooled_stddev(&sa));
    }

    #[test]
    fn sketch_drops_non_finite_like_the_slice_path() {
        let a = vec![0.5, f64::NAN, 0.25, f64::INFINITY, 0.75];
        let b = col(10, 0.4);
        let sa = ColumnSketch::new(&a);
        assert_eq!(sa.len(), 3);
        let sb = ColumnSketch::new(&b);
        for t in UnivariateTest::all() {
            assert_eq!(sa.distance(&sb, t), t.distance(&a, &b), "{t:?}");
        }
    }
}
