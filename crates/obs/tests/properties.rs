//! Property tests for the histogram contract documented in
//! `morer_obs::hist`: bounded relative error on quantiles, lossless
//! concurrent recording, and merge == recording into one.

use morer_obs::hist::Histogram;
use proptest::prelude::*;

fn values() -> impl Strategy<Value = Vec<u64>> {
    // mixed magnitudes: sub-16 exact range, realistic micros, and the
    // far tail, so every bucket regime is exercised
    proptest::collection::vec(any::<u64>().prop_map(|v| v >> (v % 60)), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any reported quantile shares a bucket with an actually-recorded
    /// value, and is therefore within the documented 6.25% relative
    /// error of it (exact below 16).
    #[test]
    fn quantiles_stay_within_the_relative_error_bound(
        vals in values(),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, vals.len() as u64);
        let r = snap.quantile(q);
        let bucket = Histogram::index_of(r);
        let witness = vals.iter().copied().find(|&v| Histogram::index_of(v) == bucket);
        prop_assert!(witness.is_some(), "quantile {r} in bucket {bucket} has no recorded witness");
        let v = witness.unwrap();
        if v < 16 {
            prop_assert_eq!(r, v);
        } else {
            let err = (r as f64 - v as f64).abs() / v as f64;
            prop_assert!(err <= 1.0 / 16.0, "relative error {err} for quantile {r} vs {v}");
        }
    }

    /// Rank correctness, not just bucket membership: at least
    /// `ceil(q * n)` recorded values are <= the reported quantile's
    /// bucket upper bound, and the quantile never exceeds the max.
    #[test]
    fn quantiles_cover_the_requested_rank(
        vals in values(),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let snap = h.snapshot();
        let r = snap.quantile(q);
        prop_assert!(r <= snap.max);
        let target = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
        let covered = vals.iter().filter(|&&v| v <= Histogram::bucket_upper(Histogram::index_of(r))).count();
        prop_assert!(covered >= target, "rank {target} not covered: only {covered} of {} <= {r}", vals.len());
    }

    /// Merging two histograms is indistinguishable from recording both
    /// value streams into one.
    #[test]
    fn merge_equals_recording_into_one(a in values(), b in values()) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hall = Histogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        ha.merge(&hb);
        let (m, all) = (ha.snapshot(), hall.snapshot());
        prop_assert_eq!(m.buckets, all.buckets);
        prop_assert_eq!(m.count, all.count);
        prop_assert_eq!(m.sum, all.sum);
        prop_assert_eq!(m.max, all.max);
    }
}

/// Concurrent recording loses nothing: every value recorded by any
/// thread lands in exactly one bucket, and count/sum agree.
#[test]
fn concurrent_recording_loses_nothing() {
    use std::sync::Arc;
    let h = Arc::new(Histogram::new());
    let threads = 8u64;
    let per_thread = 10_000u64;
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    h.record(t * per_thread + i);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let snap = h.snapshot();
    let total = threads * per_thread;
    assert_eq!(snap.count, total);
    assert_eq!(snap.buckets.iter().sum::<u64>(), total);
    assert_eq!(snap.sum, total * (total - 1) / 2);
    assert_eq!(snap.max, total - 1);
}
