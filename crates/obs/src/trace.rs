//! The flight recorder: a bounded, lock-free ring of span records.
//!
//! ## Overwrite semantics
//!
//! The ring keeps (approximately) the **newest** `capacity` spans. A
//! writer claims a monotonically increasing ticket `t` and overwrites
//! slot `t % capacity` — old records are silently replaced, never queued
//! or dropped-at-the-tail. That is the flight-recorder contract:
//! constant memory forever, and when you look, you see the most recent
//! window of activity.
//!
//! ## Consistency protocol (per-slot seqlock, CAS-claimed)
//!
//! Each slot carries a version word: even = complete, odd = a writer is
//! mid-write. A writer CASes the version from even `v` to odd `v + 1`
//! (claiming *exclusive* write access to the slot), stores the span
//! fields, then publishes `v + 2`. A reader loads the version, skips
//! odd or never-written slots, copies the fields, and re-checks the
//! version — any change means a writer ran underneath and the copy is
//! discarded. Because field stores only ever happen under a won CAS,
//! **a returned record is never torn**, no matter how writers are
//! scheduled.
//!
//! The price is that recording is *best-effort under lap pressure*: a
//! writer that finds its slot claimed by another writer, or already
//! holding a newer ticket (it was lapped while the ring wrapped), drops
//! its own record instead of contending. That only happens when
//! `capacity` pushes race one ~100ns write window; at sane capacities
//! (≥ 64) it is vanishingly rare, and the loss is one diagnostic span,
//! never a block or a torn read.

use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};

/// One traced unit of work: a stage of a request (or the request
/// itself), with its position on the service's own clock.
///
/// `stage` and `code` are opaque to this crate — the embedding layer
/// owns the stage-name table and the outcome encoding (morer-serve uses
/// HTTP status for root spans, 0 for interior stages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Id shared by every span of one request (echoed to clients as
    /// `x-morer-trace-id`).
    pub trace_id: u64,
    /// Which pipeline stage this span measures (embedder-defined enum).
    pub stage: u32,
    /// Start time in microseconds since the recorder owner's epoch.
    pub start_micros: u64,
    /// Wall-clock duration of the stage in microseconds.
    pub duration_micros: u64,
    /// Outcome code (embedder-defined; HTTP status for request spans).
    pub code: u32,
}

struct Slot {
    /// `0` = never written; odd = claimed by a writer; even `>= 2` = a
    /// complete record.
    version: AtomicU64,
    /// Ticket of the record in the slot (written under the seqlock;
    /// used to order snapshots and to detect being lapped).
    ticket: AtomicU64,
    trace_id: AtomicU64,
    stage: AtomicU32,
    start_micros: AtomicU64,
    duration_micros: AtomicU64,
    code: AtomicU32,
}

impl Slot {
    const fn new() -> Self {
        Self {
            version: AtomicU64::new(0),
            ticket: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            stage: AtomicU32::new(0),
            start_micros: AtomicU64::new(0),
            duration_micros: AtomicU64::new(0),
            code: AtomicU32::new(0),
        }
    }
}

/// A bounded lock-free ring buffer of [`Span`]s. See the
/// [module docs](self) for the overwrite and consistency contract.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    /// Tickets issued so far (== total pushes attempted).
    head: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl FlightRecorder {
    /// A ring holding the newest `capacity` spans (`capacity` is clamped
    /// to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever pushed (monotonic; `min(recorded, capacity)`
    /// bounds how many a snapshot can return).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Record one span. Lock-free and allocation-free; overwrites the
    /// oldest record once the ring is full. Best-effort: the span is
    /// dropped (never blocked on) if its slot is being written or was
    /// already lapped by a newer ticket — see the module docs.
    pub fn push(&self, span: &Span) {
        let t = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(t % self.slots.len() as u64) as usize];
        let v = slot.version.load(Ordering::Relaxed);
        if v & 1 == 1 || slot.ticket.load(Ordering::Relaxed) > t {
            return; // claimed by another writer, or we were lapped
        }
        if slot.version.compare_exchange(v, v + 1, Ordering::Relaxed, Ordering::Relaxed).is_err() {
            return; // lost the claim race
        }
        // The odd version must become visible before any field store so
        // a concurrent reader can't pair old-version/new-fields.
        fence(Ordering::Release);
        slot.ticket.store(t, Ordering::Relaxed);
        slot.trace_id.store(span.trace_id, Ordering::Relaxed);
        slot.stage.store(span.stage, Ordering::Relaxed);
        slot.start_micros.store(span.start_micros, Ordering::Relaxed);
        slot.duration_micros.store(span.duration_micros, Ordering::Relaxed);
        slot.code.store(span.code, Ordering::Relaxed);
        slot.version.store(v + 2, Ordering::Release);
    }

    /// Copy out every currently-complete record, oldest first. Never
    /// blocks writers; records overwritten mid-read are skipped, not
    /// returned torn.
    pub fn snapshot(&self) -> Vec<Span> {
        let mut out: Vec<(u64, Span)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 == 0 || v1 & 1 == 1 {
                continue; // empty or mid-write
            }
            let ticket = slot.ticket.load(Ordering::Relaxed);
            let span = Span {
                trace_id: slot.trace_id.load(Ordering::Relaxed),
                stage: slot.stage.load(Ordering::Relaxed),
                start_micros: slot.start_micros.load(Ordering::Relaxed),
                duration_micros: slot.duration_micros.load(Ordering::Relaxed),
                code: slot.code.load(Ordering::Relaxed),
            };
            fence(Ordering::Acquire);
            if slot.version.load(Ordering::Relaxed) == v1 {
                out.push((ticket, span));
            }
        }
        out.sort_unstable_by_key(|(ticket, _)| *ticket);
        out.into_iter().map(|(_, span)| span).collect()
    }
}

/// Generator of request trace ids: a relaxed atomic counter finalized
/// through SplitMix64, so ids are unique per process, well-mixed (no
/// visible sequence), cheap (one RMW + a few multiplies), and never 0.
#[derive(Debug)]
pub struct TraceIds {
    seed: u64,
    counter: AtomicU64,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TraceIds {
    /// A generator whose id stream is a pure function of `seed`.
    pub const fn with_seed(seed: u64) -> Self {
        Self { seed, counter: AtomicU64::new(0) }
    }

    /// A generator seeded from process-random state, so two server
    /// processes don't mint colliding id streams.
    pub fn new() -> Self {
        use std::hash::{BuildHasher, Hasher};
        let seed = std::collections::hash_map::RandomState::new().build_hasher().finish();
        Self::with_seed(seed)
    }

    /// Mint the next id (never 0, so 0 can mean "untraced").
    pub fn next(&self) -> u64 {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if id == 0 {
            0x2545_F491_4F6C_DD1D
        } else {
            id
        }
    }
}

impl Default for TraceIds {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace_id: u64, stage: u32) -> Span {
        Span { trace_id, stage, start_micros: 10 * trace_id, duration_micros: 5, code: 200 }
    }

    #[test]
    fn ring_keeps_the_newest_capacity_records_in_order() {
        let ring = FlightRecorder::new(4);
        assert!(ring.snapshot().is_empty());
        for i in 0..10u64 {
            ring.push(&span(i, i as u32));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 4);
        assert_eq!(got.iter().map(|s| s.trace_id).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn concurrent_pushes_never_yield_torn_records() {
        use std::sync::Arc;
        let ring = Arc::new(FlightRecorder::new(64));
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        // every field derived from trace_id, so a reader
                        // can detect any cross-record mixing
                        let id = w * 1_000_000 + i + 1;
                        ring.push(&Span {
                            trace_id: id,
                            stage: (id % 7) as u32,
                            start_micros: id * 3,
                            duration_micros: id * 5,
                            code: (id % 13) as u32,
                        });
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            for s in ring.snapshot() {
                assert_eq!(s.stage, (s.trace_id % 7) as u32);
                assert_eq!(s.start_micros, s.trace_id * 3);
                assert_eq!(s.duration_micros, s.trace_id * 5);
                assert_eq!(s.code, (s.trace_id % 13) as u32);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(ring.recorded(), 8_000);
        // every slot holds a complete record once the dust settles
        // (pushes dropped under lap pressure don't leave holes — the
        // slot keeps its previous complete record)
        for s in ring.snapshot() {
            assert_eq!(s.start_micros, s.trace_id * 3);
        }
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let ids = TraceIds::with_seed(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = ids.next();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:#x}");
        }
    }
}
