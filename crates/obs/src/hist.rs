//! Lock-free log-linear histograms (HDR-style) over `u64` values.
//!
//! ## Bucket math
//!
//! Values below 16 get one bucket each (exact). From 16 up, every
//! power-of-two octave `[2^e, 2^(e+1))` is split into 16 equal linear
//! sub-buckets, so a value `v >= 16` with top bit `e` lands in
//!
//! ```text
//! index(v) = (e - 3) * 16 + ((v >> (e - 4)) & 15)
//! ```
//!
//! which continues the exact range seamlessly (`index(15) = 15`,
//! `index(16) = 16`) and tops out at `index(u64::MAX) = 975`, for a fixed
//! array of 976 `AtomicU64` buckets (~7.6 KiB per histogram). A bucket
//! starting at `(16 + sub) << (e - 4)` is `1 << (e - 4)` wide, so its
//! width is at most 1/16 of its lower bound: **any value reported from a
//! bucket is within 6.25% relative error of every value recorded into
//! it** (and exact below 16). That bound is what
//! [`HistogramSnapshot::quantile`] inherits, and it is property-tested in
//! `tests/properties.rs`.
//!
//! ## Concurrency
//!
//! [`Histogram::record`] is four `Relaxed` atomic RMWs (bucket, count,
//! sum, max) — wait-free, allocation-free, no locks, safe from any number
//! of threads. Counters only ever grow, so a [`Histogram::snapshot`]
//! taken while writers run is a consistent-enough point-in-time view:
//! every recorded value is in exactly one bucket, nothing is lost
//! (property-tested with concurrent recorders). [`Histogram::merge`] is a
//! bucket-wise add, making per-shard histograms foldable into a global
//! one with no precision loss.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per power-of-two octave (`2^SUB_BITS`).
const SUB_BITS: u32 = 4;
/// Sub-bucket count per octave.
const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count: 16 exact unit buckets for `0..16`, then 16
/// sub-buckets for each octave `2^4 ..= 2^63`.
pub const NUM_BUCKETS: usize = (SUB as usize) * 61;

/// A fixed-size, mergeable, lock-free log-linear histogram.
///
/// See the [module docs](self) for the bucket math and the error bound.
/// Typical uses in this workspace record **microseconds** (latencies) or
/// **plain counts** (batch sizes, queue depths) — the histogram is
/// unit-agnostic; the metric name carries the unit.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram. `const`, so histograms can live in statics.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for `value` (total order: `v <= w` implies
    /// `index_of(v) <= index_of(w)`).
    #[inline]
    pub fn index_of(value: u64) -> usize {
        if value < SUB {
            value as usize
        } else {
            let exp = 63 - value.leading_zeros() as u64;
            (((exp + 1 - SUB_BITS as u64) << SUB_BITS) | ((value >> (exp - SUB_BITS as u64)) & (SUB - 1)))
                as usize
        }
    }

    /// Lowest value mapping to bucket `index`.
    #[inline]
    pub fn bucket_lower(index: usize) -> u64 {
        let index = index as u64;
        if index < SUB {
            index
        } else {
            let exp = (index >> SUB_BITS) + SUB_BITS as u64 - 1;
            (SUB + (index & (SUB - 1))) << (exp - SUB_BITS as u64)
        }
    }

    /// Highest value mapping to bucket `index` (inclusive).
    #[inline]
    pub fn bucket_upper(index: usize) -> u64 {
        if index + 1 >= NUM_BUCKETS {
            u64::MAX
        } else {
            Self::bucket_lower(index + 1) - 1
        }
    }

    /// Record one value. Wait-free: four `Relaxed` atomic RMWs, no locks,
    /// no allocation — safe on the hottest request path.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::index_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration in whole microseconds (saturating).
    #[inline]
    pub fn record_micros(&self, elapsed: Duration) {
        self.record(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Fold `other`'s counts into `self` (bucket-wise add; lossless).
    /// Concurrent recording into either side during the merge is safe:
    /// nothing is lost, merged-in values simply land when they land.
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Point-in-time copy of all counters, for quantile math and
    /// exposition off the hot path.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, immutable copy of a [`Histogram`]'s counters.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, indexed like [`Histogram::bucket_lower`].
    pub buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q * count)`,
    /// clamped to the recorded max. Within 6.25% relative error of an
    /// actually-recorded value (exact for values below 16); `0` when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return Histogram::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean of recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Number of recorded values strictly below `bound`, summed over
    /// whole buckets: exact whenever `bound` is a bucket boundary (all
    /// powers of two are), otherwise rounded down to the nearest
    /// boundary. This is the Prometheus `_bucket{le=..}` series source.
    pub fn cumulative_below(&self, bound: u64) -> u64 {
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if Histogram::bucket_upper(i) >= bound {
                break;
            }
            cum += n;
        }
        cum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact_and_indices_are_monotone() {
        for v in 0..16u64 {
            assert_eq!(Histogram::index_of(v), v as usize);
            assert_eq!(Histogram::bucket_lower(v as usize), v);
            assert_eq!(Histogram::bucket_upper(v as usize), v);
        }
        let mut last = 0;
        for shift in 0..64 {
            for near in [1u64 << shift, (1u64 << shift) + 1, (1u64 << shift).wrapping_sub(1)] {
                let i = Histogram::index_of(near);
                assert!(i < NUM_BUCKETS, "index {i} for {near}");
                assert!(Histogram::bucket_lower(i) <= near);
                assert!(near <= Histogram::bucket_upper(i));
                let _ = last; // monotonicity checked below on a sorted sweep
                last = i;
            }
        }
        assert_eq!(Histogram::index_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_partition_the_u64_line() {
        for i in 0..NUM_BUCKETS {
            assert_eq!(Histogram::index_of(Histogram::bucket_lower(i)), i);
            assert_eq!(Histogram::index_of(Histogram::bucket_upper(i)), i);
            if i + 1 < NUM_BUCKETS {
                assert_eq!(Histogram::bucket_upper(i) + 1, Histogram::bucket_lower(i + 1));
            }
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 500_500);
        for (q, exact) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0), (0.999, 999.0)] {
            let got = s.quantile(q) as f64;
            assert!(
                (got - exact).abs() / exact <= 1.0 / 16.0,
                "q{q}: got {got}, exact {exact}"
            );
        }
        assert_eq!(s.quantile(1.0), 1000);
        assert_eq!(s.quantile(0.0), 1); // smallest recorded value's bucket
    }

    #[test]
    fn cumulative_below_is_exact_at_powers_of_two() {
        let h = Histogram::new();
        for v in 0..256u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for k in 0..10 {
            let bound = 1u64 << k;
            assert_eq!(s.cumulative_below(bound), bound.min(256), "le {bound}");
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [0, 1, 15, 16, 17, 1000, 123_456, u64::MAX] {
            a.record(v);
            all.record(v);
        }
        for v in [3, 99, 7777, 1 << 40] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        let (ma, mall) = (a.snapshot(), all.snapshot());
        assert_eq!(ma.buckets, mall.buckets);
        assert_eq!(ma.count, mall.count);
        assert_eq!(ma.sum, mall.sum);
        assert_eq!(ma.max, mall.max);
    }
}
