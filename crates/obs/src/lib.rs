//! # morer-obs — lock-free observability primitives for the MoRER stack
//!
//! The serving layer's north star is a production service under heavy
//! traffic; this crate is the flight instrumentation it records itself
//! with. It is **std-only** (the build environment has no crates.io
//! access, see `crates/vendor/README.md`) and sits at the bottom of the
//! workspace dependency graph so both `morer-core` (WAL, search index) and
//! `morer-serve` (request handling, writer thread, reactor) can record
//! into the same primitives.
//!
//! Three pieces, each wait-free on the record path:
//!
//! * [`hist::Histogram`] — an HDR-style **log-linear histogram** over
//!   `u64` values (latencies in micros, batch sizes, queue depths). A
//!   fixed array of `AtomicU64` buckets, 16 linear sub-buckets per
//!   power-of-two octave, so any reported quantile is within **6.25%
//!   relative error** of a recorded value (exact below 16). Recording is
//!   a handful of `Relaxed` atomic adds: no locks, no allocation, no
//!   resizing. Histograms merge losslessly (bucket-wise add), so
//!   per-shard recorders can be folded into one view.
//! * [`trace::FlightRecorder`] — a bounded **seqlock ring buffer** of
//!   [`trace::Span`] records (trace id, stage, start, duration, outcome).
//!   Writers claim a monotonically increasing ticket and overwrite the
//!   slot `ticket % capacity` under a per-slot version word; readers
//!   snapshot without blocking writers and drop any record they observe
//!   mid-overwrite. The ring keeps the newest `capacity` spans — old
//!   records are overwritten, never queued (a flight recorder, not a log
//!   shipper).
//! * [`prom::PromWriter`] — a minimal **Prometheus text exposition**
//!   (version 0.0.4) builder: `# HELP`/`# TYPE` headers, counters,
//!   gauges, and histogram series (`_bucket{le=..}`/`_sum`/`_count`)
//!   with label escaping.
//!
//! ## Naming conventions
//!
//! Exported metric names follow Prometheus conventions: a `morer_`
//! namespace prefix, snake-case names, base-unit suffixes spelled out
//! (`_micros`, `_bytes`), and `_total` on monotonic counters. Label keys
//! are stable, low-cardinality enums (`endpoint`, `stage`, `class`) —
//! never request-scoped values like trace ids (those belong in the
//! flight recorder, which is bounded by construction).

pub mod hist;
pub mod prom;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot};
pub use prom::PromWriter;
pub use trace::{FlightRecorder, Span, TraceIds};
