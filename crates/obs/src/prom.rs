//! Minimal Prometheus text-exposition (version 0.0.4) builder.
//!
//! Produces the line format scraped by Prometheus and its ecosystem:
//!
//! ```text
//! # HELP morer_requests_total Requests answered.
//! # TYPE morer_requests_total counter
//! morer_requests_total{endpoint="solve",class="2xx"} 42
//! ```
//!
//! Kept deliberately small: headers, samples with escaped labels, and a
//! histogram emitter that coarsens a [`HistogramSnapshot`]'s native
//! log-linear buckets onto a stable power-of-two `le` ladder (every
//! power of two is a native bucket boundary, so the cumulative counts
//! are exact — see [`HistogramSnapshot::cumulative_below`]).

use crate::hist::HistogramSnapshot;
use std::fmt::Write as _;

/// Cumulative `le` bounds emitted for histogram series: powers of two
/// from 1 to 2^30 (covers ~18 minutes when recording micros), plus
/// `+Inf`. Fixed, so dashboards see stable series across restarts.
pub const LE_BOUNDS: [u64; 31] = {
    let mut bounds = [0u64; 31];
    let mut i = 0;
    while i < 31 {
        bounds[i] = 1u64 << i;
        i += 1;
    }
    bounds
};

/// Builder for one exposition document.
#[derive(Debug, Default)]
pub struct PromWriter {
    buf: String,
}

fn escape_label(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

impl PromWriter {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit the `# HELP` / `# TYPE` header for a metric family. Call
    /// once per family, before its samples; `kind` is `counter`,
    /// `gauge`, or `histogram`.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.buf, "# HELP {name} {help}");
        let _ = writeln!(self.buf, "# TYPE {name} {kind}");
    }

    /// Emit one sample line. Integer-valued f64s print without a
    /// fractional part (`42`, not `42.0`).
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.buf.push_str(name);
        self.write_labels(labels, &[]);
        if value.fract() == 0.0 && value.abs() < 9.0e15 {
            let _ = writeln!(self.buf, " {}", value as i64);
        } else {
            let _ = writeln!(self.buf, " {value}");
        }
    }

    /// Emit a whole histogram family for one label set:
    /// `name_bucket{..,le="1"} ..` through `le="+Inf"`, then `name_sum`
    /// and `name_count`. Emit [`PromWriter::header`] (`histogram`) once
    /// before the first label set of the family.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        let mut le = String::new();
        for bound in LE_BOUNDS {
            le.clear();
            let _ = write!(le, "{bound}");
            self.buf.push_str(name);
            self.buf.push_str("_bucket");
            self.write_labels(labels, &[("le", &le)]);
            let _ = writeln!(self.buf, " {}", snap.cumulative_below(bound));
        }
        self.buf.push_str(name);
        self.buf.push_str("_bucket");
        self.write_labels(labels, &[("le", "+Inf")]);
        let _ = writeln!(self.buf, " {}", snap.count);
        let _ = writeln!(self.buf, "{name}_sum{} {}", Labels(labels), snap.sum);
        let _ = writeln!(self.buf, "{name}_count{} {}", Labels(labels), snap.count);
    }

    fn write_labels(&mut self, labels: &[(&str, &str)], extra: &[(&str, &str)]) {
        if labels.is_empty() && extra.is_empty() {
            return;
        }
        self.buf.push('{');
        let mut first = true;
        for (k, v) in labels.iter().chain(extra.iter()) {
            if !first {
                self.buf.push(',');
            }
            first = false;
            self.buf.push_str(k);
            self.buf.push_str("=\"");
            escape_label(v, &mut self.buf);
            self.buf.push('"');
        }
        self.buf.push('}');
    }

    /// The finished exposition document.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Display adapter for a label set (used for `_sum`/`_count` lines).
struct Labels<'a>(&'a [(&'a str, &'a str)]);

impl std::fmt::Display for Labels<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_empty() {
            return Ok(());
        }
        f.write_str("{")?;
        let mut first = true;
        for (k, v) in self.0 {
            if !first {
                f.write_str(",")?;
            }
            first = false;
            let mut escaped = String::new();
            escape_label(v, &mut escaped);
            write!(f, "{k}=\"{escaped}\"")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn counters_and_gauges_format_canonically() {
        let mut w = PromWriter::new();
        w.header("morer_requests_total", "counter", "Requests answered.");
        w.sample("morer_requests_total", &[("endpoint", "solve"), ("class", "2xx")], 42.0);
        w.sample("morer_requests_total", &[], 7.0);
        w.header("morer_load", "gauge", "A float gauge.");
        w.sample("morer_load", &[], 0.5);
        let text = w.finish();
        assert!(text.contains("# TYPE morer_requests_total counter\n"));
        assert!(text.contains("morer_requests_total{endpoint=\"solve\",class=\"2xx\"} 42\n"));
        assert!(text.contains("\nmorer_requests_total 7\n"));
        assert!(text.contains("morer_load 0.5\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.sample("m", &[("k", "a\"b\\c\nd")], 1.0);
        assert_eq!(w.finish(), "m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
    }

    #[test]
    fn histogram_series_are_cumulative_and_end_at_inf() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 500, 2_000_000] {
            h.record(v);
        }
        let mut w = PromWriter::new();
        w.header("lat_micros", "histogram", "Latency.");
        w.histogram("lat_micros", &[("endpoint", "solve")], &h.snapshot());
        let text = w.finish();
        assert!(text.contains("lat_micros_bucket{endpoint=\"solve\",le=\"1\"} 1\n")); // the 0
        assert!(text.contains("lat_micros_bucket{endpoint=\"solve\",le=\"4\"} 4\n"));
        assert!(text.contains("lat_micros_bucket{endpoint=\"solve\",le=\"1024\"} 5\n"));
        assert!(text.contains("lat_micros_bucket{endpoint=\"solve\",le=\"+Inf\"} 6\n"));
        assert!(text.contains("lat_micros_sum{endpoint=\"solve\"} 2000506\n"));
        assert!(text.contains("lat_micros_count{endpoint=\"solve\"} 6\n"));
        // cumulative counts never decrease along the ladder
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }
}
