//! Property-based tests of the graph substrate.

use proptest::prelude::*;

use morer_graph::community::{
    adjusted_rand_index, label_propagation, leiden, louvain, modularity, Clustering,
    LabelPropagationConfig, LeidenConfig, LouvainConfig,
};
use morer_graph::components::{component_members, connected_components};
use morer_graph::mincut::stoer_wagner;
use morer_graph::{Graph, UnionFind};

const N: usize = 16;

fn edges() -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    proptest::collection::vec((0usize..N, 0usize..N, 0.05f64..1.0), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn union_find_counts_components_like_bfs(es in edges()) {
        let g = Graph::from_edges(N, &es);
        let cc = connected_components(&g);
        let mut uf = UnionFind::new(N);
        for (u, v, _) in g.edges() {
            uf.union(u, v);
        }
        let distinct: std::collections::HashSet<usize> = cc.iter().copied().collect();
        prop_assert_eq!(distinct.len(), uf.num_sets());
        // component_members inverts the assignment
        let members = component_members(&cc);
        for (c, group) in members.iter().enumerate() {
            for &node in group {
                prop_assert_eq!(cc[node], c);
            }
        }
    }

    #[test]
    fn community_labels_are_dense(es in edges()) {
        for clustering in [
            leiden(&Graph::from_edges(N, &es), &LeidenConfig::default()),
            louvain(&Graph::from_edges(N, &es), &LouvainConfig::default()),
            label_propagation(&Graph::from_edges(N, &es), &LabelPropagationConfig::default()),
        ] {
            let k = clustering.num_clusters();
            let used: std::collections::HashSet<usize> =
                clustering.assignment().iter().copied().collect();
            prop_assert_eq!(used.len(), k);
            prop_assert!(used.iter().all(|&c| c < k));
        }
    }

    #[test]
    fn leiden_never_worse_than_singletons(es in edges()) {
        let g = Graph::from_edges(N, &es);
        let c = leiden(&g, &LeidenConfig::default());
        let q = modularity(&g, &c, 1.0);
        let q_singletons = modularity(&g, &Clustering::singletons(N), 1.0);
        prop_assert!(q + 1e-9 >= q_singletons, "q={q} singletons={q_singletons}");
    }

    #[test]
    fn mincut_is_at_most_any_single_node_cut(es in edges()) {
        let g = Graph::from_edges(N, &es);
        if let Some(cut) = stoer_wagner(&g) {
            // the cut separating any single node is an upper bound
            for v in 0..N {
                let node_cut: f64 = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&(u, _)| u != v)
                    .map(|&(_, w)| w)
                    .sum();
                prop_assert!(cut.weight <= node_cut + 1e-9);
            }
            prop_assert!(!cut.partition.is_empty());
            prop_assert!(cut.partition.len() < N);
        }
    }

    #[test]
    fn ari_bounds_and_self_identity(
        a in proptest::collection::vec(0usize..4, N..=N),
        b in proptest::collection::vec(0usize..4, N..=N),
    ) {
        let ca = Clustering::from_assignment(&a);
        let cb = Clustering::from_assignment(&b);
        let ari = adjusted_rand_index(&ca, &cb);
        prop_assert!(ari <= 1.0 + 1e-9);
        prop_assert!((adjusted_rand_index(&ca, &ca) - 1.0).abs() < 1e-9);
        // symmetry
        prop_assert!((ari - adjusted_rand_index(&cb, &ca)).abs() < 1e-9);
    }

    #[test]
    fn strength_consistency_after_edge_insertions(es in edges()) {
        let g = Graph::from_edges(N, &es);
        let strengths: f64 = (0..N).map(|v| g.strength(v)).sum();
        prop_assert!((strengths - 2.0 * g.total_weight()).abs() < 1e-9);
        // degree is the neighbor list length
        for v in 0..N {
            prop_assert_eq!(g.degree(v), g.neighbors(v).len());
        }
    }
}
