//! Brandes' algorithm for edge betweenness centrality (unweighted shortest
//! paths), the inner loop of Girvan-Newman community detection.

use std::collections::{HashMap, VecDeque};

use crate::graph::Graph;

/// Canonical undirected edge key with `u <= v`.
#[inline]
fn key(u: usize, v: usize) -> (usize, usize) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Edge betweenness centrality of every edge, using unweighted shortest
/// paths (Brandes 2001, edge variant). Self-loops get betweenness 0.
///
/// Each unordered pair of endpoints contributes once, so values are halved
/// relative to the directed-count convention.
pub fn edge_betweenness(g: &Graph) -> HashMap<(usize, usize), f64> {
    let n = g.num_nodes();
    let mut centrality: HashMap<(usize, usize), f64> = HashMap::new();
    for (u, v, _) in g.edges() {
        if u != v {
            centrality.insert(key(u, v), 0.0);
        }
    }
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];

    for s in 0..n {
        // single-source shortest paths (BFS)
        for v in 0..n {
            sigma[v] = 0.0;
            dist[v] = -1;
            delta[v] = 0.0;
            preds[v].clear();
        }
        sigma[s] = 1.0;
        dist[s] = 0;
        let mut queue = VecDeque::from([s]);
        let mut stack: Vec<usize> = Vec::new();
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &(w, _) in g.neighbors(v) {
                if w == v {
                    continue;
                }
                if dist[w] < 0 {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v);
                }
            }
        }
        // dependency accumulation
        while let Some(w) = stack.pop() {
            for &v in &preds[w] {
                let c = sigma[v] / sigma[w] * (1.0 + delta[w]);
                *centrality.get_mut(&key(v, w)).expect("edge present") += c;
                delta[v] += c;
            }
        }
    }
    // undirected: every pair (s, t) was counted from both endpoints
    for val in centrality.values_mut() {
        *val /= 2.0;
    }
    centrality
}

/// The edge with the highest betweenness, if the graph has any non-loop edge.
pub fn max_betweenness_edge(g: &Graph) -> Option<(usize, usize, f64)> {
    edge_betweenness(g)
        .into_iter()
        .max_by(|a, b| {
            a.1.total_cmp(&b.1)
                // deterministic tie-break on the edge key
                .then_with(|| b.0.cmp(&a.0))
        })
        .map(|((u, v), c)| (u, v, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_middle_edge_highest() {
        // 0-1-2-3: edge (1,2) carries the most shortest paths
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let eb = edge_betweenness(&g);
        // (1,2) lies on paths 0-2, 0-3, 1-2, 1-3 => 4
        assert!((eb[&(1, 2)] - 4.0).abs() < 1e-9);
        // (0,1) lies on 0-1, 0-2, 0-3 => 3
        assert!((eb[&(0, 1)] - 3.0).abs() < 1e-9);
        let (u, v, _) = max_betweenness_edge(&g).unwrap();
        assert_eq!((u, v), (1, 2));
    }

    #[test]
    fn bridge_between_cliques_dominates() {
        let mut g = Graph::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 1.0);
        }
        g.add_edge(2, 3, 1.0);
        let (u, v, c) = max_betweenness_edge(&g).unwrap();
        assert_eq!((u, v), (2, 3));
        // bridge carries all 9 cross-clique pairs
        assert!((c - 9.0).abs() < 1e-9);
    }

    #[test]
    fn triangle_symmetric() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let eb = edge_betweenness(&g);
        for (_, &c) in eb.iter() {
            assert!((c - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_and_loops() {
        let g = Graph::new(3);
        assert!(max_betweenness_edge(&g).is_none());
        let mut g = Graph::new(2);
        g.add_edge(0, 0, 1.0);
        assert!(max_betweenness_edge(&g).is_none());
    }
}
