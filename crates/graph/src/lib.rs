//! # morer-graph — graph substrate for MoRER
//!
//! Weighted undirected graphs plus the algorithms the MoRER pipeline and the
//! Almser active-learning baseline need:
//!
//! * [`Graph`]: adjacency-list weighted undirected graph (self-loops allowed,
//!   parallel edges merged by weight accumulation);
//! * [`components`]: union-find and connected components (the transitive
//!   closure of a match graph);
//! * [`mincut`]: Stoer-Wagner global minimum cut (Almser's false-positive
//!   signal) and [`bridges`]: its O(V + E) single-edge special case;
//! * [`betweenness`]: Brandes edge betweenness (for Girvan-Newman);
//! * [`community`]: Leiden (the paper's clustering algorithm for the ER
//!   problem graph, §4.3), Louvain, label propagation and Girvan-Newman, all
//!   seeded and deterministic.
//!
//! ```
//! use morer_graph::{Graph, community::{leiden, LeidenConfig}};
//!
//! // two triangles joined by one weak edge
//! let mut g = Graph::new(6);
//! for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
//!     g.add_edge(u, v, 1.0);
//! }
//! g.add_edge(2, 3, 0.1);
//! let clustering = leiden(&g, &LeidenConfig::default());
//! assert_eq!(clustering.num_clusters(), 2);
//! assert_eq!(clustering.cluster_of(0), clustering.cluster_of(1));
//! assert_ne!(clustering.cluster_of(0), clustering.cluster_of(5));
//! ```

pub mod betweenness;
pub mod bridges;
pub mod community;
pub mod components;
pub mod graph;
pub mod mincut;

pub use community::Clustering;
pub use components::UnionFind;
pub use graph::Graph;
