//! Union-find and connected components.
//!
//! Connected components over a *match graph* are the transitive closure the
//! Almser method reasons about: records in the same component are implied
//! matches even when no direct edge was predicted.

use crate::graph::Graph;

/// Disjoint-set forest with path compression and union by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    count: usize,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n).collect(), rank: vec![0; n], count: n }
    }

    /// Find the representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // path compression
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets containing `a` and `b`; returns true if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        self.count -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.count
    }
}

/// Connected components of a graph. Returns a dense component id per node
/// (ids are `0..k`, assigned in order of first appearance).
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let n = g.num_nodes();
    let mut uf = UnionFind::new(n);
    for (u, v, _) in g.edges() {
        uf.union(u, v);
    }
    compress_labels(&mut uf, n)
}

/// Connected components, thresholded: only edges with weight strictly above
/// `min_weight` connect nodes.
pub fn connected_components_above(g: &Graph, min_weight: f64) -> Vec<usize> {
    let n = g.num_nodes();
    let mut uf = UnionFind::new(n);
    for (u, v, w) in g.edges() {
        if w > min_weight {
            uf.union(u, v);
        }
    }
    compress_labels(&mut uf, n)
}

fn compress_labels(uf: &mut UnionFind, n: usize) -> Vec<usize> {
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut out = vec![0usize; n];
    for node in 0..n {
        let root = uf.find(node);
        if label[root] == usize::MAX {
            label[root] = next;
            next += 1;
        }
        out[node] = label[root];
    }
    out
}

/// Group node ids by component id: `result[c]` lists the members of
/// component `c`.
pub fn component_members(assignment: &[usize]) -> Vec<Vec<usize>> {
    let k = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut groups = vec![Vec::new(); k];
    for (node, &c) in assignment.iter().enumerate() {
        groups[c].push(node);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.num_sets(), 3);
    }

    #[test]
    fn components_of_two_islands() {
        let g = Graph::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]);
        let cc = connected_components(&g);
        assert_eq!(cc[0], cc[1]);
        assert_eq!(cc[1], cc[2]);
        assert_eq!(cc[3], cc[4]);
        assert_ne!(cc[0], cc[3]);
        assert_ne!(cc[5], cc[0]);
        assert_ne!(cc[5], cc[3]);
        let groups = component_members(&cc);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], vec![0, 1, 2]);
    }

    #[test]
    fn thresholded_components_ignore_weak_edges() {
        let g = Graph::from_edges(4, &[(0, 1, 0.9), (1, 2, 0.3), (2, 3, 0.8)]);
        let cc = connected_components_above(&g, 0.5);
        assert_eq!(cc[0], cc[1]);
        assert_eq!(cc[2], cc[3]);
        assert_ne!(cc[0], cc[2]);
    }

    #[test]
    fn labels_are_dense_and_ordered() {
        let g = Graph::from_edges(4, &[(2, 3, 1.0)]);
        let cc = connected_components(&g);
        assert_eq!(cc, vec![0, 1, 2, 2]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert!(connected_components(&g).is_empty());
        assert!(component_members(&[]).is_empty());
    }
}
