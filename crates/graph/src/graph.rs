//! Weighted undirected graph with adjacency lists.

/// A weighted undirected graph over nodes `0..n`.
///
/// * Parallel edges are merged: adding an existing edge accumulates weight.
/// * Self-loops are allowed and stored once; they contribute twice to a
///   node's [`strength`](Graph::strength) (the usual convention in community
///   detection).
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<(usize, f64)>>,
    num_edges: usize,
    total_weight: f64,
}

impl Graph {
    /// Create a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Self { adj: vec![Vec::new(); n], num_edges: 0, total_weight: 0.0 }
    }

    /// Build a graph from an edge list (`n` nodes).
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of distinct undirected edges (self-loops count once).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sum of all edge weights, each undirected edge counted once.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Append an isolated node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Add (or reinforce) the undirected edge `{u, v}` with weight `w`.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of bounds or `w` is not finite.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) {
        assert!(u < self.adj.len() && v < self.adj.len(), "edge ({u},{v}) out of bounds");
        assert!(w.is_finite(), "edge weight must be finite");
        if let Some(slot) = self.adj[u].iter_mut().find(|(nbr, _)| *nbr == v) {
            slot.1 += w;
            if u != v {
                let back = self.adj[v]
                    .iter_mut()
                    .find(|(nbr, _)| *nbr == u)
                    .expect("undirected edge must be symmetric");
                back.1 += w;
            }
            self.total_weight += w;
            return;
        }
        self.adj[u].push((v, w));
        if u != v {
            self.adj[v].push((u, w));
        }
        self.num_edges += 1;
        self.total_weight += w;
    }

    /// Weight of edge `{u, v}` if present.
    pub fn edge_weight(&self, u: usize, v: usize) -> Option<f64> {
        self.adj.get(u)?.iter().find(|(nbr, _)| *nbr == v).map(|(_, w)| *w)
    }

    /// Neighbors of `u` with edge weights (self-loop included if present).
    pub fn neighbors(&self, u: usize) -> &[(usize, f64)] {
        &self.adj[u]
    }

    /// Unweighted degree (number of incident edges; self-loop counts once).
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Weighted degree: sum of incident edge weights with self-loops counted
    /// twice (community-detection convention, so that Σ strength = 2m).
    pub fn strength(&self, u: usize) -> f64 {
        self.adj[u]
            .iter()
            .map(|&(nbr, w)| if nbr == u { 2.0 * w } else { w })
            .sum()
    }

    /// Iterate over every undirected edge once as `(u, v, w)` with `u <= v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .filter(move |&&(v, _)| u <= v)
                .map(move |&(v, w)| (u, v, w))
        })
    }

    /// Induced subgraph on `nodes`; returns the subgraph and the mapping from
    /// new indices to the original node ids.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> (Graph, Vec<usize>) {
        let mut remap = vec![usize::MAX; self.num_nodes()];
        for (new, &old) in nodes.iter().enumerate() {
            remap[old] = new;
        }
        let mut sub = Graph::new(nodes.len());
        for (u, v, w) in self.edges() {
            if remap[u] != usize::MAX && remap[v] != usize::MAX {
                sub.add_edge(remap[u], remap[v], w);
            }
        }
        (sub, nodes.to_vec())
    }

    /// Copy of the graph with one edge removed (used by Girvan-Newman).
    pub fn without_edge(&self, u: usize, v: usize) -> Graph {
        let mut g = Graph::new(self.num_nodes());
        for (a, b, w) in self.edges() {
            if !((a == u && b == v) || (a == v && b == u)) {
                g.add_edge(a, b, w);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_and_query() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 3.0);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
        assert_eq!(g.edge_weight(1, 0), Some(2.0));
        assert_eq!(g.edge_weight(0, 2), None);
        assert!((g.total_weight() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 0, 0.5);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(1.5));
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn self_loop_counts_twice_in_strength() {
        let mut g = Graph::new(2);
        g.add_edge(0, 0, 1.5);
        g.add_edge(0, 1, 1.0);
        assert!((g.strength(0) - 4.0).abs() < 1e-12);
        assert!((g.strength(1) - 1.0).abs() < 1e-12);
        // Σ strength = 2m
        let two_m: f64 = (0..2).map(|u| g.strength(u)).sum();
        assert!((two_m - 2.0 * g.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn edges_iterates_once_per_edge() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 3, 0.5)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        let w: f64 = edges.iter().map(|e| e.2).sum();
        assert!((w - 3.5).abs() < 1e-12);
    }

    #[test]
    fn induced_subgraph_remaps() {
        let g = Graph::from_edges(5, &[(0, 1, 1.0), (1, 2, 2.0), (3, 4, 3.0)]);
        let (sub, map) = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 1); // only (1,2) survives
        assert_eq!(sub.edge_weight(0, 1), Some(2.0));
        assert_eq!(map, vec![1, 2, 4]);
    }

    #[test]
    fn without_edge_removes_exactly_one() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let g2 = g.without_edge(1, 0);
        assert_eq!(g2.num_edges(), 1);
        assert_eq!(g2.edge_weight(0, 1), None);
        assert_eq!(g2.edge_weight(1, 2), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_edge_out_of_bounds_panics() {
        let mut g = Graph::new(1);
        g.add_edge(0, 1, 1.0);
    }
}
