//! Stoer-Wagner global minimum cut.
//!
//! Almser flags record pairs as potential false positives when they sit on a
//! *weak minimum cut* of their connected component in the match graph: a
//! component that can be split by removing little edge weight probably glues
//! two distinct entities together.

use crate::graph::Graph;

/// Result of a global minimum-cut computation.
#[derive(Debug, Clone, PartialEq)]
pub struct MinCut {
    /// Total weight of the cut edges.
    pub weight: f64,
    /// Nodes on one side of the cut (the smaller side is not guaranteed).
    pub partition: Vec<usize>,
}

/// Compute the global minimum cut of a connected weighted graph using the
/// Stoer-Wagner algorithm (O(n³) with adjacency matrices — the match-graph
/// components this is applied to are small).
///
/// Returns `None` for graphs with fewer than two nodes. For disconnected
/// graphs the cut weight is 0 with one component on each side.
pub fn stoer_wagner(g: &Graph) -> Option<MinCut> {
    let n = g.num_nodes();
    if n < 2 {
        return None;
    }
    // dense weight matrix (self-loops are irrelevant to cuts)
    let mut w = vec![vec![0.0f64; n]; n];
    for (u, v, wt) in g.edges() {
        if u != v {
            w[u][v] += wt;
            w[v][u] += wt;
        }
    }
    // merged[i] lists the original nodes contracted into supernode i
    let mut merged: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut best: Option<MinCut> = None;

    while active.len() > 1 {
        // maximum adjacency search from the first active node
        let mut weights_to_a: Vec<f64> = active.iter().map(|_| 0.0).collect();
        let mut in_a = vec![false; active.len()];
        let mut order: Vec<usize> = Vec::with_capacity(active.len());
        for _ in 0..active.len() {
            let mut pick = usize::MAX;
            let mut pick_w = f64::NEG_INFINITY;
            for (idx, &node) in active.iter().enumerate() {
                let _ = node;
                if !in_a[idx] && weights_to_a[idx] > pick_w {
                    pick = idx;
                    pick_w = weights_to_a[idx];
                }
            }
            in_a[pick] = true;
            order.push(pick);
            for (idx, &node) in active.iter().enumerate() {
                if !in_a[idx] {
                    weights_to_a[idx] += w[active[pick]][node];
                }
            }
        }
        let t_idx = *order.last().expect("non-empty order");
        let s_idx = order[order.len() - 2];
        let t = active[t_idx];
        let s = active[s_idx];
        // cut-of-the-phase: t alone vs rest
        let cut_weight: f64 = active
            .iter()
            .filter(|&&u| u != t)
            .map(|&u| w[t][u])
            .sum();
        let candidate = MinCut { weight: cut_weight, partition: merged[t].clone() };
        if best.as_ref().is_none_or(|b| candidate.weight < b.weight) {
            best = Some(candidate);
        }
        // contract t into s
        let t_members = std::mem::take(&mut merged[t]);
        merged[s].extend(t_members);
        for u in 0..n {
            if u != s && u != t {
                w[s][u] += w[t][u];
                w[u][s] = w[s][u];
            }
        }
        active.retain(|&u| u != t);
    }
    best
}

/// Convenience: the min-cut weight, or 0.0 when undefined.
pub fn min_cut_weight(g: &Graph) -> f64 {
    stoer_wagner(g).map_or(0.0, |c| c.weight)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_nodes_single_edge() {
        let g = Graph::from_edges(2, &[(0, 1, 3.5)]);
        let cut = stoer_wagner(&g).unwrap();
        assert!((cut.weight - 3.5).abs() < 1e-12);
        assert_eq!(cut.partition.len(), 1);
    }

    #[test]
    fn barbell_weak_bridge() {
        // two triangles connected by a 0.2 bridge: min cut = bridge
        let mut g = Graph::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 1.0);
        }
        g.add_edge(2, 3, 0.2);
        let cut = stoer_wagner(&g).unwrap();
        assert!((cut.weight - 0.2).abs() < 1e-9);
        let mut side = cut.partition.clone();
        side.sort_unstable();
        assert!(side == vec![0, 1, 2] || side == vec![3, 4, 5]);
    }

    #[test]
    fn classic_stoer_wagner_example() {
        // The 8-node example from the Stoer-Wagner paper; min cut = 4.
        let edges = [
            (0, 1, 2.0), (0, 4, 3.0), (1, 2, 3.0), (1, 4, 2.0), (1, 5, 2.0),
            (2, 3, 4.0), (2, 6, 2.0), (3, 6, 2.0), (3, 7, 2.0), (4, 5, 3.0),
            (5, 6, 1.0), (6, 7, 3.0),
        ];
        let g = Graph::from_edges(8, &edges);
        let cut = stoer_wagner(&g).unwrap();
        assert!((cut.weight - 4.0).abs() < 1e-9, "got {}", cut.weight);
    }

    #[test]
    fn disconnected_graph_has_zero_cut() {
        let g = Graph::from_edges(4, &[(0, 1, 5.0), (2, 3, 5.0)]);
        let cut = stoer_wagner(&g).unwrap();
        assert_eq!(cut.weight, 0.0);
    }

    #[test]
    fn single_node_returns_none() {
        let g = Graph::new(1);
        assert!(stoer_wagner(&g).is_none());
        assert_eq!(min_cut_weight(&g), 0.0);
    }

    #[test]
    fn star_graph_cuts_weakest_leaf() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (0, 2, 2.0), (0, 3, 0.5)]);
        let cut = stoer_wagner(&g).unwrap();
        assert!((cut.weight - 0.5).abs() < 1e-12);
        assert_eq!(cut.partition, vec![3]);
    }
}
