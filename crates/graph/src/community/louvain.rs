//! Louvain community detection, plus the local-moving machinery shared with
//! Leiden.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use super::{Clustering, Objective};
use crate::graph::Graph;

/// Configuration for [`louvain`].
#[derive(Debug, Clone)]
pub struct LouvainConfig {
    /// Resolution parameter γ (higher → more, smaller communities).
    pub gamma: f64,
    /// Quality function to optimize.
    pub objective: Objective,
    /// RNG seed for node-visit order.
    pub seed: u64,
    /// Maximum number of aggregation levels.
    pub max_levels: usize,
}

impl Default for LouvainConfig {
    fn default() -> Self {
        Self { gamma: 1.0, objective: Objective::Modularity, seed: 42, max_levels: 20 }
    }
}

/// Louvain algorithm: repeated greedy local moving + graph aggregation.
pub fn louvain(g: &Graph, config: &LouvainConfig) -> Clustering {
    multilevel(g, config.gamma, config.objective, config.seed, config.max_levels, false)
}

// ---------------------------------------------------------------------------
// Shared machinery (used by Leiden as well)
// ---------------------------------------------------------------------------

/// Static per-graph context for a round of local moving.
pub(super) struct MoveContext<'g> {
    pub g: &'g Graph,
    /// Weighted degree of each node.
    pub strengths: Vec<f64>,
    /// Number of original nodes each (possibly aggregated) node represents.
    pub node_sizes: Vec<f64>,
    /// 2m — twice the total edge weight.
    pub two_m: f64,
    pub gamma: f64,
    pub objective: Objective,
}

impl<'g> MoveContext<'g> {
    pub fn new(g: &'g Graph, node_sizes: Vec<f64>, gamma: f64, objective: Objective) -> Self {
        let strengths: Vec<f64> = (0..g.num_nodes()).map(|v| g.strength(v)).collect();
        let two_m = 2.0 * g.total_weight();
        Self { g, strengths, node_sizes, two_m, gamma, objective }
    }

    /// Score of placing node `v` into a community with the given totals,
    /// where `k_in` is the edge weight from `v` into that community
    /// (excluding self-loops). Higher is better; proportional to the quality
    /// gain.
    #[inline]
    pub fn score(&self, v: usize, k_in: f64, comm_strength: f64, comm_size: f64) -> f64 {
        match self.objective {
            Objective::Modularity => {
                if self.two_m <= 0.0 {
                    return 0.0;
                }
                k_in - self.gamma * self.strengths[v] * comm_strength / self.two_m
            }
            Objective::Cpm => k_in - self.gamma * self.node_sizes[v] * comm_size,
        }
    }
}

/// Mutable partition state during local moving.
pub(super) struct PartitionState {
    pub community: Vec<usize>,
    comm_strength: Vec<f64>,
    comm_size: Vec<f64>,
    // scratch: edge weight from the current node to each community
    edge_to: Vec<f64>,
    touched: Vec<usize>,
}

impl PartitionState {
    pub fn new(ctx: &MoveContext<'_>, initial: &[usize]) -> Self {
        let k = initial.iter().copied().max().map_or(0, |m| m + 1);
        let mut comm_strength = vec![0.0; k];
        let mut comm_size = vec![0.0; k];
        for (v, &c) in initial.iter().enumerate() {
            comm_strength[c] += ctx.strengths[v];
            comm_size[c] += ctx.node_sizes[v];
        }
        Self {
            community: initial.to_vec(),
            comm_strength,
            comm_size,
            edge_to: vec![0.0; k],
            touched: Vec::new(),
        }
    }

    /// Try to move `v` to its best neighboring community (restricted to
    /// communities for which `allowed` returns true). Returns the new
    /// community if the node moved.
    pub fn best_move(
        &mut self,
        ctx: &MoveContext<'_>,
        v: usize,
        allowed: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        let current = self.community[v];
        // detach v
        self.comm_strength[current] -= ctx.strengths[v];
        self.comm_size[current] -= ctx.node_sizes[v];
        // accumulate edges to neighbor communities
        for &(nbr, w) in ctx.g.neighbors(v) {
            if nbr == v {
                continue;
            }
            let c = self.community[nbr];
            if !allowed(c) {
                continue;
            }
            if self.edge_to[c] == 0.0 {
                self.touched.push(c);
            }
            self.edge_to[c] += w;
        }
        // evaluate candidates; staying put is the baseline
        let mut best_comm = current;
        let mut best_score =
            ctx.score(v, self.edge_to.get(current).copied().unwrap_or(0.0), self.comm_strength[current], self.comm_size[current]);
        for &c in &self.touched {
            if c == current {
                continue;
            }
            let s = ctx.score(v, self.edge_to[c], self.comm_strength[c], self.comm_size[c]);
            if s > best_score + 1e-12 {
                best_score = s;
                best_comm = c;
            }
        }
        // reset scratch
        for &c in &self.touched {
            self.edge_to[c] = 0.0;
        }
        self.touched.clear();
        // attach v
        self.community[v] = best_comm;
        self.comm_strength[best_comm] += ctx.strengths[v];
        self.comm_size[best_comm] += ctx.node_sizes[v];
        (best_comm != current).then_some(best_comm)
    }
}

/// Queue-based local moving: process nodes until no node can improve.
/// Returns true if any node moved.
pub(super) fn local_move(ctx: &MoveContext<'_>, state: &mut PartitionState, rng: &mut SmallRng) -> bool {
    let n = ctx.g.num_nodes();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut in_queue = vec![true; n];
    let mut queue: std::collections::VecDeque<usize> = order.into_iter().collect();
    let mut moved_any = false;
    while let Some(v) = queue.pop_front() {
        in_queue[v] = false;
        if let Some(new_comm) = state.best_move(ctx, v, |_| true) {
            moved_any = true;
            // revisit neighbors that are now outside v's community
            for &(nbr, _) in ctx.g.neighbors(v) {
                if nbr != v && state.community[nbr] != new_comm && !in_queue[nbr] {
                    in_queue[nbr] = true;
                    queue.push_back(nbr);
                }
            }
        }
    }
    moved_any
}

/// Densify community labels to `0..k`, returning the dense assignment and k.
pub(super) fn densify(raw: &[usize]) -> (Vec<usize>, usize) {
    let c = Clustering::from_assignment(raw);
    let k = c.num_clusters();
    (c.assignment().to_vec(), k)
}

/// Aggregate `g` by `partition` (dense labels `0..k`): supernode per
/// community, edge weights summed, internal weight becoming self-loops.
/// Returns the aggregate graph and its node sizes.
pub(super) fn aggregate(
    g: &Graph,
    partition: &[usize],
    k: usize,
    node_sizes: &[f64],
) -> (Graph, Vec<f64>) {
    let mut agg = Graph::new(k);
    for (u, v, w) in g.edges() {
        agg.add_edge(partition[u], partition[v], w);
    }
    let mut sizes = vec![0.0; k];
    for (v, &c) in partition.iter().enumerate() {
        sizes[c] += node_sizes[v];
    }
    (agg, sizes)
}

/// The multilevel loop shared by Louvain (`refine = false`) and Leiden
/// (`refine = true`).
pub(super) fn multilevel(
    g: &Graph,
    gamma: f64,
    objective: Objective,
    seed: u64,
    max_levels: usize,
    refine: bool,
) -> Clustering {
    let n = g.num_nodes();
    if n == 0 {
        return Clustering::from_assignment(&[]);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    // membership: original node -> node of the current (aggregated) graph
    let mut membership: Vec<usize> = (0..n).collect();
    let mut cur: Graph = g.clone();
    let mut sizes: Vec<f64> = vec![1.0; n];
    let mut init: Vec<usize> = (0..n).collect();
    let mut final_partition: Vec<usize> = init.clone();

    for level in 0..max_levels {
        let ctx = MoveContext::new(&cur, sizes.clone(), gamma, objective);
        let mut state = PartitionState::new(&ctx, &init);
        let moved = local_move(&ctx, &mut state, &mut rng);
        let (p_dense, k) = densify(&state.community);
        final_partition = p_dense.clone();
        if (!moved && level > 0) || k == cur.num_nodes() {
            break;
        }
        if refine {
            let ref_raw = super::leiden::refine_partition(&ctx, &p_dense, &mut rng);
            let (ref_dense, rk) = densify(&ref_raw);
            // initial community of each refined supernode = its parent in P
            let mut next_init = vec![0usize; rk];
            for (v, &r) in ref_dense.iter().enumerate() {
                next_init[r] = p_dense[v];
            }
            let (next_g, next_sizes) = aggregate(&cur, &ref_dense, rk, &sizes);
            for m in membership.iter_mut() {
                *m = ref_dense[*m];
            }
            // final partition must be expressed over the *new* nodes
            final_partition = next_init.clone();
            cur = next_g;
            sizes = next_sizes;
            init = next_init;
        } else {
            let (next_g, next_sizes) = aggregate(&cur, &p_dense, k, &sizes);
            for m in membership.iter_mut() {
                *m = p_dense[*m];
            }
            final_partition = (0..k).collect();
            cur = next_g;
            sizes = next_sizes;
            init = (0..k).collect();
        }
    }

    let raw: Vec<usize> = membership.iter().map(|&m| final_partition[m]).collect();
    Clustering::from_assignment(&raw)
}

#[cfg(test)]
mod tests {
    use super::super::modularity;
    use super::*;

    fn barbell() -> Graph {
        let mut g = Graph::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 1.0);
        }
        g.add_edge(2, 3, 0.2);
        g
    }

    fn ring_of_cliques(num_cliques: usize, clique_size: usize) -> Graph {
        let n = num_cliques * clique_size;
        let mut g = Graph::new(n);
        for c in 0..num_cliques {
            let base = c * clique_size;
            for i in 0..clique_size {
                for j in (i + 1)..clique_size {
                    g.add_edge(base + i, base + j, 1.0);
                }
            }
            let next_base = ((c + 1) % num_cliques) * clique_size;
            g.add_edge(base, next_base, 0.5);
        }
        g
    }

    #[test]
    fn louvain_splits_barbell() {
        let c = louvain(&barbell(), &LouvainConfig::default());
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.cluster_of(0), c.cluster_of(2));
        assert_eq!(c.cluster_of(3), c.cluster_of(5));
        assert_ne!(c.cluster_of(0), c.cluster_of(3));
    }

    #[test]
    fn louvain_finds_ring_of_cliques() {
        let g = ring_of_cliques(5, 4);
        let c = louvain(&g, &LouvainConfig::default());
        assert_eq!(c.num_clusters(), 5);
        for clique in 0..5 {
            let base = clique * 4;
            for i in 1..4 {
                assert_eq!(c.cluster_of(base), c.cluster_of(base + i));
            }
        }
    }

    #[test]
    fn louvain_deterministic_for_seed() {
        let g = ring_of_cliques(4, 5);
        let cfg = LouvainConfig::default();
        let a = louvain(&g, &cfg);
        let b = louvain(&g, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn louvain_beats_trivial_partitions() {
        let g = ring_of_cliques(3, 4);
        let c = louvain(&g, &LouvainConfig::default());
        let q = modularity(&g, &c, 1.0);
        let q_single = modularity(&g, &Clustering::from_assignment(&[0; 12]), 1.0);
        let q_singletons = modularity(&g, &Clustering::singletons(12), 1.0);
        assert!(q > q_single);
        assert!(q > q_singletons);
    }

    #[test]
    fn louvain_empty_and_singleton_graphs() {
        let c = louvain(&Graph::new(0), &LouvainConfig::default());
        assert_eq!(c.num_nodes(), 0);
        let c = louvain(&Graph::new(1), &LouvainConfig::default());
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn louvain_disconnected_components_stay_separate() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let c = louvain(&g, &LouvainConfig::default());
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.cluster_of(0), c.cluster_of(1));
        assert_ne!(c.cluster_of(0), c.cluster_of(2));
    }

    #[test]
    fn higher_gamma_yields_more_clusters() {
        let g = ring_of_cliques(4, 6);
        let coarse = louvain(&g, &LouvainConfig { gamma: 0.05, ..Default::default() });
        let fine = louvain(&g, &LouvainConfig { gamma: 2.0, ..Default::default() });
        assert!(fine.num_clusters() >= coarse.num_clusters());
    }
}
