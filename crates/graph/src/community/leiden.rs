//! Leiden community detection (Traag, Waltman & van Eck, 2019).
//!
//! Leiden improves on Louvain by *refining* each community into
//! well-connected subcommunities before aggregation, which guarantees the
//! communities of the final partition are internally connected — the property
//! §4.3 of the paper relies on when it notes Leiden "identifies
//! well-connected subgroups within weakly connected components".

use rand::rngs::SmallRng;

use super::louvain::{multilevel, MoveContext, PartitionState};
use super::{Clustering, Objective};
use crate::graph::Graph;

/// Configuration for [`leiden`].
#[derive(Debug, Clone)]
pub struct LeidenConfig {
    /// Resolution parameter γ (higher → more, smaller communities).
    pub gamma: f64,
    /// Quality function to optimize.
    pub objective: Objective,
    /// RNG seed for node-visit order.
    pub seed: u64,
    /// Maximum number of aggregation levels.
    pub max_levels: usize,
}

impl Default for LeidenConfig {
    fn default() -> Self {
        Self { gamma: 1.0, objective: Objective::Modularity, seed: 42, max_levels: 20 }
    }
}

/// Leiden algorithm: local moving, refinement, aggregation on the refined
/// partition with the coarse partition as the starting point of the next
/// level.
pub fn leiden(g: &Graph, config: &LeidenConfig) -> Clustering {
    multilevel(g, config.gamma, config.objective, config.seed, config.max_levels, true)
}

/// Refinement phase: start from singletons and greedily merge nodes into
/// refined communities, *only within* their coarse community in `p_dense`,
/// and only when the move strictly improves quality. Nodes that already
/// merged are not revisited, which keeps refined communities connected.
pub(super) fn refine_partition(
    ctx: &MoveContext<'_>,
    p_dense: &[usize],
    rng: &mut SmallRng,
) -> Vec<usize> {
    use rand::seq::SliceRandom;
    let n = ctx.g.num_nodes();
    let singleton_init: Vec<usize> = (0..n).collect();
    let mut state = PartitionState::new(ctx, &singleton_init);
    let mut ref_size = vec![1usize; n]; // nodes per refined community

    // group nodes by coarse community
    let k = p_dense.iter().copied().max().map_or(0, |m| m + 1);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (v, &c) in p_dense.iter().enumerate() {
        groups[c].push(v);
    }

    for group in &mut groups {
        group.shuffle(rng);
        for &v in group.iter() {
            // only still-singleton nodes may move (Leiden invariant)
            if ref_size[state.community[v]] != 1 {
                continue;
            }
            let before = state.community[v];
            // Allowed targets: refined communities inside v's coarse
            // community. A refined community's id is the node id of its
            // founding member (communities start as singletons and a founder
            // can never leave a community of size >= 2), so `p_dense[c]` is
            // the coarse community of refined community `c`.
            let coarse = p_dense[v];
            if let Some(new_comm) = state.best_move(ctx, v, |c| p_dense[c] == coarse) {
                ref_size[before] -= 1;
                ref_size[new_comm] += 1;
            }
        }
    }
    state.community
}

#[cfg(test)]
mod tests {
    use super::super::{cpm_quality, modularity};
    use super::*;
    use crate::community::louvain::{louvain, LouvainConfig};

    fn barbell() -> Graph {
        let mut g = Graph::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 1.0);
        }
        g.add_edge(2, 3, 0.2);
        g
    }

    fn ring_of_cliques(num_cliques: usize, clique_size: usize) -> Graph {
        let n = num_cliques * clique_size;
        let mut g = Graph::new(n);
        for c in 0..num_cliques {
            let base = c * clique_size;
            for i in 0..clique_size {
                for j in (i + 1)..clique_size {
                    g.add_edge(base + i, base + j, 1.0);
                }
            }
            let next_base = ((c + 1) % num_cliques) * clique_size;
            g.add_edge(base, next_base, 0.5);
        }
        g
    }

    #[test]
    fn leiden_splits_barbell() {
        let c = leiden(&barbell(), &LeidenConfig::default());
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.cluster_of(0), c.cluster_of(2));
        assert_eq!(c.cluster_of(3), c.cluster_of(5));
        assert_ne!(c.cluster_of(0), c.cluster_of(3));
    }

    #[test]
    fn leiden_finds_ring_of_cliques() {
        let g = ring_of_cliques(6, 5);
        let c = leiden(&g, &LeidenConfig::default());
        assert_eq!(c.num_clusters(), 6);
        for clique in 0..6 {
            let base = clique * 5;
            for i in 1..5 {
                assert_eq!(c.cluster_of(base), c.cluster_of(base + i), "clique {clique}");
            }
        }
    }

    #[test]
    fn leiden_communities_are_connected() {
        // Leiden's headline guarantee: every community induces a connected
        // subgraph.
        let g = ring_of_cliques(4, 4);
        let c = leiden(&g, &LeidenConfig::default());
        for members in c.members() {
            let (sub, _) = g.induced_subgraph(&members);
            let cc = crate::components::connected_components(&sub);
            let distinct: std::collections::HashSet<_> = cc.iter().collect();
            assert_eq!(distinct.len(), 1, "community {members:?} is disconnected");
        }
    }

    #[test]
    fn leiden_deterministic_for_seed() {
        let g = ring_of_cliques(5, 4);
        let cfg = LeidenConfig::default();
        assert_eq!(leiden(&g, &cfg), leiden(&g, &cfg));
    }

    #[test]
    fn leiden_quality_at_least_louvain_on_cliques() {
        let g = ring_of_cliques(8, 4);
        let lv = louvain(&g, &LouvainConfig::default());
        let ld = leiden(&g, &LeidenConfig::default());
        let q_lv = modularity(&g, &lv, 1.0);
        let q_ld = modularity(&g, &ld, 1.0);
        assert!(q_ld >= q_lv - 1e-9, "leiden {q_ld} < louvain {q_lv}");
    }

    #[test]
    fn leiden_cpm_objective_works() {
        let g = ring_of_cliques(4, 5);
        let cfg = LeidenConfig { objective: Objective::Cpm, gamma: 0.6, ..Default::default() };
        let c = leiden(&g, &cfg);
        assert_eq!(c.num_clusters(), 4);
        assert!(cpm_quality(&g, &c, 0.6) > 0.0);
    }

    #[test]
    fn leiden_trivial_graphs() {
        assert_eq!(leiden(&Graph::new(0), &LeidenConfig::default()).num_nodes(), 0);
        let c = leiden(&Graph::new(3), &LeidenConfig::default());
        assert_eq!(c.num_clusters(), 3); // isolated nodes stay singletons
    }

    #[test]
    fn leiden_weighted_edges_dominate() {
        // strong pair + weak pair: strong edges bind, weak edges don't
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 10.0);
        g.add_edge(2, 3, 10.0);
        g.add_edge(1, 2, 0.01);
        let c = leiden(&g, &LeidenConfig::default());
        assert_eq!(c.cluster_of(0), c.cluster_of(1));
        assert_eq!(c.cluster_of(2), c.cluster_of(3));
        assert_ne!(c.cluster_of(1), c.cluster_of(2));
    }
}
