//! Asynchronous weighted label propagation (Raghavan et al. 2007).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use super::Clustering;
use crate::graph::Graph;

/// Configuration for [`label_propagation`].
#[derive(Debug, Clone)]
pub struct LabelPropagationConfig {
    /// RNG seed for node-visit order.
    pub seed: u64,
    /// Maximum number of full sweeps before giving up on convergence.
    pub max_iterations: usize,
}

impl Default for LabelPropagationConfig {
    fn default() -> Self {
        Self { seed: 42, max_iterations: 100 }
    }
}

/// Asynchronous label propagation: each node adopts the label with the
/// largest incident edge weight, sweeping in seeded random order until no
/// label changes (ties broken toward the smallest label id for determinism).
pub fn label_propagation(g: &Graph, config: &LabelPropagationConfig) -> Clustering {
    let n = g.num_nodes();
    let mut labels: Vec<usize> = (0..n).collect();
    if n == 0 {
        return Clustering::from_assignment(&labels);
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut weight_to: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();

    for _ in 0..config.max_iterations {
        order.shuffle(&mut rng);
        let mut changed = false;
        for &v in &order {
            weight_to.clear();
            for &(nbr, w) in g.neighbors(v) {
                if nbr != v {
                    *weight_to.entry(labels[nbr]).or_insert(0.0) += w;
                }
            }
            if weight_to.is_empty() {
                continue;
            }
            let current = labels[v];
            // pick the heaviest label; ties -> smallest id (deterministic)
            let mut best_label = current;
            let mut best_weight = weight_to.get(&current).copied().unwrap_or(0.0);
            for (&label, &w) in &weight_to {
                if w > best_weight + 1e-12 || (w > best_weight - 1e-12 && label < best_label) {
                    best_label = label;
                    best_weight = w;
                }
            }
            if best_label != current {
                labels[v] = best_label;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Clustering::from_assignment(&labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_finds_two_cliques() {
        let mut g = Graph::new(8);
        for c in 0..2 {
            let base = c * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    g.add_edge(base + i, base + j, 1.0);
                }
            }
        }
        g.add_edge(3, 4, 0.1);
        let c = label_propagation(&g, &LabelPropagationConfig::default());
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.cluster_of(0), c.cluster_of(3));
        assert_eq!(c.cluster_of(4), c.cluster_of(7));
        assert_ne!(c.cluster_of(0), c.cluster_of(4));
    }

    #[test]
    fn isolated_nodes_keep_own_labels() {
        let g = Graph::new(3);
        let c = label_propagation(&g, &LabelPropagationConfig::default());
        assert_eq!(c.num_clusters(), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut g = Graph::new(10);
        for i in 0..9 {
            g.add_edge(i, i + 1, 1.0 + i as f64 * 0.1);
        }
        let cfg = LabelPropagationConfig::default();
        assert_eq!(label_propagation(&g, &cfg), label_propagation(&g, &cfg));
    }

    #[test]
    fn weighted_edges_decide_membership() {
        // node 1 is pulled by the heavier side
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 5.0);
        g.add_edge(1, 2, 0.5);
        let c = label_propagation(&g, &LabelPropagationConfig::default());
        assert_eq!(c.cluster_of(0), c.cluster_of(1));
    }
}
