//! Community detection on weighted graphs.
//!
//! MoRER clusters the ER problem similarity graph with the **Leiden**
//! algorithm (§4.3); Louvain, label propagation and Girvan-Newman are
//! provided because the paper reports they "lead to similar results" in
//! pre-experiments — our ablation bench reproduces that comparison.

mod girvan_newman;
mod label_propagation;
mod leiden;
mod louvain;

pub use girvan_newman::{girvan_newman, GirvanNewmanConfig};
pub use label_propagation::{label_propagation, LabelPropagationConfig};
pub use leiden::{leiden, LeidenConfig};
pub use louvain::{louvain, LouvainConfig};

use crate::graph::Graph;

/// Quality function optimized by Leiden/Louvain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Newman-Girvan modularity with a resolution parameter.
    #[default]
    Modularity,
    /// Constant Potts Model (Traag et al.'s default for Leiden).
    Cpm,
}

/// A hard partition of graph nodes into clusters with dense ids `0..k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    assignment: Vec<usize>,
    num_clusters: usize,
}

impl Clustering {
    /// Build from a raw assignment vector, compressing labels to `0..k`
    /// in order of first appearance.
    pub fn from_assignment(raw: &[usize]) -> Self {
        let mut map: Vec<Option<usize>> = Vec::new();
        let mut assignment = Vec::with_capacity(raw.len());
        let mut next = 0usize;
        for &label in raw {
            if label >= map.len() {
                map.resize(label + 1, None);
            }
            let dense = *map[label].get_or_insert_with(|| {
                let d = next;
                next += 1;
                d
            });
            assignment.push(dense);
        }
        Self { assignment, num_clusters: next }
    }

    /// Singleton clustering: every node its own cluster.
    pub fn singletons(n: usize) -> Self {
        Self { assignment: (0..n).collect(), num_clusters: n }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    /// Cluster id of `node`.
    pub fn cluster_of(&self, node: usize) -> usize {
        self.assignment[node]
    }

    /// The dense assignment vector.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Members of each cluster: `members()[c]` lists the nodes in cluster `c`.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.num_clusters];
        for (node, &c) in self.assignment.iter().enumerate() {
            groups[c].push(node);
        }
        groups
    }

    /// Cluster sizes indexed by cluster id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_clusters];
        for &c in &self.assignment {
            sizes[c] += 1;
        }
        sizes
    }

    /// Jaccard overlap between a cluster of `self` and a cluster of `other`
    /// (used by `sel_cov` to find the previous cluster with maximum overlap).
    pub fn overlap(&self, cluster: usize, other: &Clustering, other_cluster: usize) -> f64 {
        let a: Vec<usize> = self
            .assignment
            .iter()
            .enumerate()
            .filter_map(|(n, &c)| (c == cluster).then_some(n))
            .collect();
        let b: Vec<usize> = other
            .assignment
            .iter()
            .enumerate()
            .filter_map(|(n, &c)| (c == other_cluster).then_some(n))
            .collect();
        if a.is_empty() && b.is_empty() {
            return 0.0;
        }
        let inter = a.iter().filter(|n| other.assignment.get(**n) == Some(&other_cluster)).count();
        let _ = b;
        let union = a.len() + other.sizes()[other_cluster] - inter;
        inter as f64 / union as f64
    }
}

/// Modularity `Q = Σ_c [e_c/m − γ (Σ_tot,c / 2m)²]` of a clustering, where
/// `e_c` is the internal edge weight of cluster `c` (undirected edges counted
/// once, self-loops once) and `Σ_tot,c` the summed node strengths.
///
/// Returns 0 for graphs without edges.
pub fn modularity(g: &Graph, clustering: &Clustering, gamma: f64) -> f64 {
    let m = g.total_weight();
    if m <= 0.0 {
        return 0.0;
    }
    let k = clustering.num_clusters();
    let mut internal = vec![0.0f64; k];
    let mut totals = vec![0.0f64; k];
    for (u, v, w) in g.edges() {
        if clustering.cluster_of(u) == clustering.cluster_of(v) {
            internal[clustering.cluster_of(u)] += w;
        }
    }
    for node in 0..g.num_nodes() {
        totals[clustering.cluster_of(node)] += g.strength(node);
    }
    (0..k)
        .map(|c| internal[c] / m - gamma * (totals[c] / (2.0 * m)).powi(2))
        .sum()
}

/// Adjusted Rand index between two clusterings of the same node set:
/// 1 = identical partitions, ~0 = random agreement, negative = worse than
/// chance. Used by the cluster-stability analysis (paper §7 future work).
///
/// # Panics
/// Panics if the clusterings cover different numbers of nodes.
pub fn adjusted_rand_index(a: &Clustering, b: &Clustering) -> f64 {
    assert_eq!(a.num_nodes(), b.num_nodes(), "clusterings must cover the same nodes");
    let n = a.num_nodes();
    if n < 2 {
        return 1.0;
    }
    let (ka, kb) = (a.num_clusters(), b.num_clusters());
    // contingency table
    let mut table = vec![0u64; ka * kb];
    for node in 0..n {
        table[a.cluster_of(node) * kb + b.cluster_of(node)] += 1;
    }
    let choose2 = |x: u64| (x * x.saturating_sub(1)) / 2;
    let sum_ij: u64 = table.iter().map(|&c| choose2(c)).sum();
    let sum_a: u64 = a.sizes().iter().map(|&s| choose2(s as u64)).sum();
    let sum_b: u64 = b.sizes().iter().map(|&s| choose2(s as u64)).sum();
    let total = choose2(n as u64) as f64;
    let expected = (sum_a as f64) * (sum_b as f64) / total;
    let max_index = (sum_a as f64 + sum_b as f64) / 2.0;
    if (max_index - expected).abs() < 1e-12 {
        return 1.0; // both partitions trivial (all-singletons vs all-singletons etc.)
    }
    (sum_ij as f64 - expected) / (max_index - expected)
}

/// Constant Potts Model quality `H = Σ_c [e_c − γ · binom(n_c, 2)]`.
pub fn cpm_quality(g: &Graph, clustering: &Clustering, gamma: f64) -> f64 {
    let k = clustering.num_clusters();
    let mut internal = vec![0.0f64; k];
    for (u, v, w) in g.edges() {
        if clustering.cluster_of(u) == clustering.cluster_of(v) {
            internal[clustering.cluster_of(u)] += w;
        }
    }
    let sizes = clustering.sizes();
    (0..k)
        .map(|c| {
            let n = sizes[c] as f64;
            internal[c] - gamma * n * (n - 1.0) / 2.0
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn barbell() -> Graph {
        let mut g = Graph::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 1.0);
        }
        g.add_edge(2, 3, 1.0);
        g
    }

    #[test]
    fn clustering_compresses_labels() {
        let c = Clustering::from_assignment(&[5, 5, 9, 5, 0]);
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.assignment(), &[0, 0, 1, 0, 2]);
        assert_eq!(c.sizes(), vec![3, 1, 1]);
        assert_eq!(c.members()[0], vec![0, 1, 3]);
    }

    #[test]
    fn singleton_clustering() {
        let c = Clustering::singletons(4);
        assert_eq!(c.num_clusters(), 4);
        assert_eq!(c.cluster_of(2), 2);
    }

    #[test]
    fn modularity_of_known_partition() {
        let g = barbell();
        let good = Clustering::from_assignment(&[0, 0, 0, 1, 1, 1]);
        let bad = Clustering::from_assignment(&[0, 1, 0, 1, 0, 1]);
        let all = Clustering::from_assignment(&[0, 0, 0, 0, 0, 0]);
        let q_good = modularity(&g, &good, 1.0);
        let q_bad = modularity(&g, &bad, 1.0);
        let q_all = modularity(&g, &all, 1.0);
        assert!(q_good > q_bad, "good={q_good} bad={q_bad}");
        assert!(q_good > q_all, "good={q_good} all={q_all}");
        // hand-computed: e_c = 3 each, m = 7, tot_c = 7 each
        let expected = 2.0 * (3.0 / 7.0 - (7.0 / 14.0f64).powi(2));
        assert!((q_good - expected).abs() < 1e-12);
    }

    #[test]
    fn modularity_of_single_cluster_is_at_most_zero() {
        let g = barbell();
        let all = Clustering::from_assignment(&[0; 6]);
        // e = m and tot = 2m -> Q = 1 - gamma
        assert!((modularity(&g, &all, 1.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn cpm_quality_known_values() {
        let g = barbell();
        let good = Clustering::from_assignment(&[0, 0, 0, 1, 1, 1]);
        // e_c = 3, binom(3,2) = 3: H = 2 * (3 - gamma*3)
        assert!((cpm_quality(&g, &good, 0.5) - 2.0 * (3.0 - 1.5)).abs() < 1e-12);
    }

    #[test]
    fn overlap_between_clusterings() {
        let a = Clustering::from_assignment(&[0, 0, 0, 1, 1]);
        let b = Clustering::from_assignment(&[0, 0, 1, 1, 1]);
        // a's cluster 0 = {0,1,2}; b's cluster 0 = {0,1}: inter 2, union 3
        assert!((a.overlap(0, &b, 0) - 2.0 / 3.0).abs() < 1e-12);
        // disjoint clusters
        assert_eq!(a.overlap(0, &b, 1), 1.0 / 5.0);
    }

    #[test]
    fn modularity_empty_graph_is_zero() {
        let g = Graph::new(3);
        let c = Clustering::singletons(3);
        assert_eq!(modularity(&g, &c, 1.0), 0.0);
    }

    #[test]
    fn ari_identical_partitions() {
        let a = Clustering::from_assignment(&[0, 0, 1, 1, 2]);
        let relabeled = Clustering::from_assignment(&[5, 5, 3, 3, 9]);
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        // ARI is invariant under label permutation
        assert!((adjusted_rand_index(&a, &relabeled) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_known_value() {
        // classic example: ARI([0,0,1,1], [0,1,0,1]) = -0.5
        let a = Clustering::from_assignment(&[0, 0, 1, 1]);
        let b = Clustering::from_assignment(&[0, 1, 0, 1]);
        let ari = adjusted_rand_index(&a, &b);
        assert!((ari - (-0.5)).abs() < 1e-9, "got {ari}");
    }

    #[test]
    fn ari_partial_agreement_between_zero_and_one() {
        let a = Clustering::from_assignment(&[0, 0, 0, 1, 1, 1]);
        let b = Clustering::from_assignment(&[0, 0, 1, 1, 1, 1]);
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari > 0.0 && ari < 1.0, "got {ari}");
    }

    #[test]
    fn ari_trivial_cases() {
        let single = Clustering::from_assignment(&[0]);
        assert_eq!(adjusted_rand_index(&single, &single), 1.0);
        let s4 = Clustering::singletons(4);
        assert_eq!(adjusted_rand_index(&s4, &s4), 1.0);
    }
}
