//! Girvan-Newman divisive community detection: repeatedly remove the edge
//! with the highest betweenness and keep the split with the best modularity.

use super::{modularity, Clustering};
use crate::betweenness::max_betweenness_edge;
use crate::components::connected_components;
use crate::graph::Graph;

/// Configuration for [`girvan_newman`].
#[derive(Debug, Clone)]
pub struct GirvanNewmanConfig {
    /// Stop once the graph has at least this many components (None: run until
    /// modularity stops improving or edges run out).
    pub target_communities: Option<usize>,
    /// Resolution for the modularity used to pick the best split.
    pub gamma: f64,
    /// Safety cap on the number of removed edges.
    pub max_removals: usize,
}

impl Default for GirvanNewmanConfig {
    fn default() -> Self {
        Self { target_communities: None, gamma: 1.0, max_removals: 10_000 }
    }
}

/// Girvan-Newman: O(n·m) betweenness per removal, so intended for the small
/// ER-problem graphs (hundreds of nodes) it is ablated on.
pub fn girvan_newman(g: &Graph, config: &GirvanNewmanConfig) -> Clustering {
    let mut work = g.clone();
    let mut best = Clustering::from_assignment(&connected_components(&work));
    let mut best_q = modularity(g, &best, config.gamma);

    for _ in 0..config.max_removals {
        if let Some(target) = config.target_communities {
            if best.num_clusters() >= target {
                break;
            }
        }
        let Some((u, v, _)) = max_betweenness_edge(&work) else {
            break;
        };
        work = work.without_edge(u, v);
        let current = Clustering::from_assignment(&connected_components(&work));
        // evaluate the split against the *original* graph
        let q = modularity(g, &current, config.gamma);
        let improved = q > best_q;
        let reaches_target = config
            .target_communities
            .is_some_and(|t| current.num_clusters() >= t && best.num_clusters() < t);
        if improved || reaches_target {
            best_q = q;
            best = current;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_barbell_on_bridge() {
        let mut g = Graph::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 1.0);
        }
        g.add_edge(2, 3, 1.0);
        let c = girvan_newman(&g, &GirvanNewmanConfig::default());
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.cluster_of(0), c.cluster_of(2));
        assert_ne!(c.cluster_of(0), c.cluster_of(3));
    }

    #[test]
    fn respects_target_community_count() {
        // path of 9 nodes: ask for 3 communities
        let mut g = Graph::new(9);
        for i in 0..8 {
            g.add_edge(i, i + 1, 1.0);
        }
        let cfg = GirvanNewmanConfig { target_communities: Some(3), ..Default::default() };
        let c = girvan_newman(&g, &cfg);
        assert!(c.num_clusters() >= 3);
    }

    #[test]
    fn handles_edgeless_graph() {
        let g = Graph::new(4);
        let c = girvan_newman(&g, &GirvanNewmanConfig::default());
        assert_eq!(c.num_clusters(), 4);
    }

    #[test]
    fn two_components_need_no_removal() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let c = girvan_newman(&g, &GirvanNewmanConfig::default());
        assert_eq!(c.num_clusters(), 2);
    }
}
