//! Bridge detection (Tarjan's low-link algorithm).
//!
//! A *bridge* is an edge whose removal disconnects its component. In a match
//! graph a predicted match that is a bridge is a prime false-positive
//! suspect: it is the only thing holding two record groups together — the
//! single-edge special case of Almser's weak-min-cut signal, at O(V + E)
//! instead of O(V³).

use crate::graph::Graph;

/// All bridges of the graph as `(u, v)` pairs with `u < v`, sorted.
///
/// Parallel edges were merged at insertion time, so any surviving edge can
/// be a bridge; self-loops never are.
pub fn bridges(g: &Graph) -> Vec<(usize, usize)> {
    let n = g.num_nodes();
    let mut disc = vec![usize::MAX; n]; // discovery times
    let mut low = vec![usize::MAX; n]; // low-link values
    let mut timer = 0usize;
    let mut out = Vec::new();

    // iterative DFS to avoid stack overflow on long paths
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // stack frames: (node, parent, neighbor cursor)
        let mut stack: Vec<(usize, usize, usize)> = vec![(root, usize::MAX, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        while let Some(&(v, parent, cursor)) = stack.last() {
            if cursor < g.degree(v) {
                let top = stack.len() - 1;
                stack[top].2 += 1;
                let (to, _) = g.neighbors(v)[cursor];
                if to == v {
                    continue; // self-loop
                }
                if disc[to] == usize::MAX {
                    disc[to] = timer;
                    low[to] = timer;
                    timer += 1;
                    stack.push((to, v, 0));
                } else if to != parent {
                    low[v] = low[v].min(disc[to]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _, _)) = stack.last() {
                    low[p] = low[p].min(low[v]);
                    if low[v] > disc[p] {
                        out.push((p.min(v), p.max(v)));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Whether the specific edge `{u, v}` is a bridge.
pub fn is_bridge(g: &Graph, u: usize, v: usize) -> bool {
    let key = (u.min(v), u.max(v));
    bridges(g).binary_search(&key).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_every_edge_is_a_bridge() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        assert_eq!(bridges(&g), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn cycle_has_no_bridges() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn barbell_bridge_is_found() {
        let mut g = Graph::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 1.0);
        }
        g.add_edge(2, 3, 0.5);
        assert_eq!(bridges(&g), vec![(2, 3)]);
        assert!(is_bridge(&g, 3, 2));
        assert!(!is_bridge(&g, 0, 1));
    }

    #[test]
    fn disconnected_components_handled() {
        let g = Graph::from_edges(5, &[(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)]);
        assert_eq!(bridges(&g), vec![(0, 1), (2, 3), (3, 4)]);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = Graph::new(2);
        g.add_edge(0, 0, 1.0);
        g.add_edge(0, 1, 1.0);
        assert_eq!(bridges(&g), vec![(0, 1)]);
    }

    #[test]
    fn empty_graph() {
        assert!(bridges(&Graph::new(0)).is_empty());
        assert!(bridges(&Graph::new(3)).is_empty());
    }

    #[test]
    fn bridges_agree_with_removal_check() {
        // brute-force cross-check on a fixed graph
        let edges = [
            (0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 3, 1.0), (3, 4, 1.0),
            (4, 5, 1.0), (5, 3, 1.0), (5, 6, 1.0),
        ];
        let g = Graph::from_edges(7, &edges);
        let found = bridges(&g);
        use crate::components::connected_components;
        let base_components = {
            let cc = connected_components(&g);
            cc.iter().collect::<std::collections::HashSet<_>>().len()
        };
        for (u, v, _) in g.edges() {
            if u == v {
                continue;
            }
            let removed = g.without_edge(u, v);
            let cc = connected_components(&removed);
            let parts = cc.iter().collect::<std::collections::HashSet<_>>().len();
            let disconnects = parts > base_components;
            assert_eq!(
                found.contains(&(u.min(v), u.max(v))),
                disconnects,
                "edge ({u},{v})"
            );
        }
    }
}
