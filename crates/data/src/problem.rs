//! The ER problem abstraction (paper §2): similarity feature vectors with
//! labels for one data-source pair, plus benchmark bundles with
//! initial/unsolved splits.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::record::MultiSourceDataset;
use morer_ml::dataset::{FeatureMatrix, TrainingSet};
use morer_sim::profile::{ProfileSet, RecordRef};
use morer_sim::{par, ComparisonScheme};

/// Dense identifier of an ER problem within a benchmark.
pub type ProblemId = usize;

/// An ER problem `p_{k,l}`: the similarity feature vectors `w` for the
/// candidate record pairs of data sources `D_k` and `D_l`, with ground-truth
/// labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErProblem {
    /// Dense id within its benchmark.
    pub id: ProblemId,
    /// The data-source pair `(k, l)` (equal for deduplication problems).
    pub sources: (usize, usize),
    /// Candidate record pairs by global uid, aligned with `features` rows.
    pub pairs: Vec<(u32, u32)>,
    /// Similarity feature vectors `w ∈ [0,1]^t`, one row per pair.
    pub features: FeatureMatrix,
    /// Ground-truth labels (`true` = match), aligned with rows.
    pub labels: Vec<bool>,
    /// Feature names in the paper's `function(attribute)` notation.
    pub feature_names: Vec<String>,
}

impl ErProblem {
    /// Compute the feature vectors of `pairs` under `scheme` and label them
    /// with the dataset's ground truth.
    ///
    /// Fast path: every record appearing in `pairs` is profiled exactly once
    /// (normalization, tokenization, interning, numeric/date parsing — see
    /// [`morer_sim::profile`]), then the pair rows are featurized in
    /// parallel from the cached profiles. Results are bit-identical to the
    /// per-pair string path ([`Self::build_cold`]).
    pub fn build(
        id: ProblemId,
        dataset: &MultiSourceDataset,
        scheme: &ComparisonScheme,
        sources: (usize, usize),
        pairs: Vec<(u32, u32)>,
    ) -> Self {
        let mut profiles = ProfileSet::for_scheme(scheme);
        // dense uid -> profile index for just the records these pairs touch
        let mut profile_idx: Vec<u32> = vec![u32::MAX; dataset.num_records()];
        for &(a, b) in &pairs {
            for uid in [a, b] {
                let slot = &mut profile_idx[uid as usize];
                if *slot == u32::MAX {
                    *slot = profiles.add(&dataset.record(uid).values) as u32;
                }
            }
        }
        Self::featurize_profiled(id, dataset, scheme, sources, pairs, |uid| {
            profiles.record(profile_idx[uid as usize] as usize)
        })
    }

    /// [`Self::build`] reusing profiles computed once for the whole dataset
    /// (record index == uid), as produced by [`crate::profile_dataset`].
    /// This is how [`Benchmark::from_dataset`] shares one profiling pass —
    /// and one token interner — across blocking and every per-source-pair
    /// problem.
    pub fn build_with_profiles(
        id: ProblemId,
        dataset: &MultiSourceDataset,
        scheme: &ComparisonScheme,
        sources: (usize, usize),
        pairs: Vec<(u32, u32)>,
        profiles: &ProfileSet,
    ) -> Self {
        assert_eq!(profiles.len(), dataset.num_records(), "one profile per record required");
        Self::featurize_profiled(id, dataset, scheme, sources, pairs, |uid| {
            profiles.record(uid as usize)
        })
    }

    fn featurize_profiled<'p>(
        id: ProblemId,
        dataset: &MultiSourceDataset,
        scheme: &ComparisonScheme,
        sources: (usize, usize),
        pairs: Vec<(u32, u32)>,
        profile_of: impl Fn(u32) -> RecordRef<'p> + Sync,
    ) -> Self {
        let cols = scheme.num_features();
        let mut data = vec![0.0f64; pairs.len() * cols];
        par::fill_rows(&mut data, cols, |i, row| {
            let (a, b) = pairs[i];
            scheme.compare_profiled_into(profile_of(a), profile_of(b), row);
        });
        let features = FeatureMatrix::from_flat(pairs.len(), cols, data);
        let labels = pairs
            .iter()
            .map(|&(a, b)| dataset.record(a).entity == dataset.record(b).entity)
            .collect();
        Self { id, sources, pairs, features, labels, feature_names: scheme.feature_names() }
    }

    /// The original per-pair string path: re-normalizes and re-tokenizes both
    /// records of every pair. Kept as the reference implementation for the
    /// equivalence property tests and the `featurization` benchmark baseline.
    pub fn build_cold(
        id: ProblemId,
        dataset: &MultiSourceDataset,
        scheme: &ComparisonScheme,
        sources: (usize, usize),
        pairs: Vec<(u32, u32)>,
    ) -> Self {
        let mut features = FeatureMatrix::new(scheme.num_features());
        let mut labels = Vec::with_capacity(pairs.len());
        for &(a, b) in &pairs {
            let ra = dataset.record(a);
            let rb = dataset.record(b);
            features.push_row(&scheme.compare(&ra.values, &rb.values));
            labels.push(ra.entity == rb.entity);
        }
        Self { id, sources, pairs, features, labels, feature_names: scheme.feature_names() }
    }

    /// Check the cross-field invariants every constructor guarantees but a
    /// hand-built or deserialized problem may violate: pairs, labels and
    /// feature rows must align, and there must be one feature name per
    /// column. Untrusted inputs (service request bodies) must pass this
    /// before entering the pipeline — the pipeline's inner loops index on
    /// these invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.features.rows() != self.pairs.len() {
            return Err(format!(
                "problem {}: {} candidate pairs but {} feature rows",
                self.id,
                self.pairs.len(),
                self.features.rows()
            ));
        }
        if self.labels.len() != self.pairs.len() {
            return Err(format!(
                "problem {}: {} candidate pairs but {} labels",
                self.id,
                self.pairs.len(),
                self.labels.len()
            ));
        }
        if self.feature_names.len() != self.features.cols() {
            return Err(format!(
                "problem {}: {} feature columns but {} feature names",
                self.id,
                self.features.cols(),
                self.feature_names.len()
            ));
        }
        // similarity features are finite by construction (w ∈ [0,1]^t); a
        // smuggled inf/NaN would poison representatives and — because the
        // JSON writer encodes non-finite floats as null — make a persisted
        // repository unloadable
        if let Some(v) = self
            .features
            .iter_rows()
            .flatten()
            .find(|v| !v.is_finite())
        {
            return Err(format!(
                "problem {}: non-finite feature value {v}",
                self.id
            ));
        }
        Ok(())
    }

    /// Number of candidate pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Number of true matches among the pairs.
    pub fn num_matches(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Number of similarity features `t`.
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }

    /// The values of feature `f` across all pairs — the sample `d^f_{k,l}`
    /// the distribution tests operate on.
    pub fn feature_column(&self, f: usize) -> Vec<f64> {
        self.features.column(f)
    }

    /// All rows with ground-truth labels as a training set (the fully
    /// supervised setting).
    pub fn to_training_set(&self) -> TrainingSet {
        TrainingSet { x: self.features.clone(), y: self.labels.clone() }
    }

    /// Select a subset of rows into a new problem (same id/sources).
    pub fn select(&self, indices: &[usize]) -> Self {
        Self {
            id: self.id,
            sources: self.sources,
            pairs: indices.iter().map(|&i| self.pairs[i]).collect(),
            features: self.features.select(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            feature_names: self.feature_names.clone(),
        }
    }

    /// Split the pairs into two problems (train/test) with `fraction` of rows
    /// in the first; seeded shuffle.
    pub fn split(&self, fraction: f64, seed: u64) -> (Self, Self) {
        let mut idx: Vec<usize> = (0..self.num_pairs()).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let cut = ((self.num_pairs() as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        (self.select(&idx[..cut]), self.select(&idx[cut..]))
    }
}

/// Profile every record of `dataset` once under `spec` (record index ==
/// uid).
///
/// The returned set shares one token interner across all sources, so
/// interned token ids are comparable — this is what lets token blocking and
/// featurization reuse a single tokenization pass per record.
pub fn profile_dataset(dataset: &MultiSourceDataset, spec: morer_sim::ProfileSpec) -> ProfileSet {
    let mut profiles = ProfileSet::new(spec);
    for uid in 0..dataset.num_records() {
        profiles.add(&dataset.record(uid as u32).values);
    }
    profiles
}

/// Aggregate statistics of a benchmark (paper Table 2 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchmarkStats {
    /// Number of ER problems.
    pub num_problems: usize,
    /// Total candidate record pairs across problems.
    pub num_pairs: usize,
    /// Total true matches across problems.
    pub num_matches: usize,
}

/// A benchmark: dataset + comparison scheme + ER problems with the
/// initial (`P_I`) / unsolved (`P_U`) split the paper evaluates on.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name ("dexter", "wdc-computer", "music").
    pub name: String,
    /// The underlying multi-source dataset.
    pub dataset: MultiSourceDataset,
    /// The comparison scheme that produced the feature vectors.
    pub scheme: ComparisonScheme,
    /// All ER problems, indexed by `ProblemId`.
    pub problems: Vec<ErProblem>,
    /// Problem ids forming the initial set `P_I` (repository construction).
    pub initial: Vec<ProblemId>,
    /// Problem ids forming the unsolved set `P_U` (evaluation).
    pub unsolved: Vec<ProblemId>,
}

impl Benchmark {
    /// Build a benchmark from a user-provided dataset: token blocking over
    /// every source pair (including same-source deduplication when a source
    /// has intra-duplicates), feature computation under `scheme`, and a
    /// seeded `ratio_init` split of the resulting ER problems into
    /// `P_I` / `P_U`.
    ///
    /// This is the entry point for running MoRER on your own CSV data (see
    /// [`crate::csvio::load_source`] and the `custom_csv_dataset` example).
    pub fn from_dataset(
        name: impl Into<String>,
        dataset: MultiSourceDataset,
        scheme: ComparisonScheme,
        blocking: &crate::blocking::TokenBlockingConfig,
        ratio_init: f64,
        seed: u64,
    ) -> Self {
        use crate::blocking::{token_blocking_profiled, token_blocking_within_profiled};
        // One profiling pass over every record covers blocking (token ids on
        // the blocking attribute) and featurization (everything the scheme
        // compares) for all source pairs.
        let spec = scheme.profile_spec().require_tokens(blocking.attribute);
        let profiles = profile_dataset(&dataset, spec);
        let n = dataset.num_sources();
        let mut problems = Vec::new();
        for k in 0..n {
            if dataset.sources[k].has_intra_duplicates() {
                let pairs = token_blocking_within_profiled(
                    &dataset.sources[k].records,
                    &profiles,
                    blocking,
                );
                if !pairs.is_empty() {
                    let id = problems.len();
                    problems.push(ErProblem::build_with_profiles(
                        id, &dataset, &scheme, (k, k), pairs, &profiles,
                    ));
                }
            }
            for l in (k + 1)..n {
                let pairs = token_blocking_profiled(
                    &dataset.sources[k].records,
                    &dataset.sources[l].records,
                    &profiles,
                    blocking,
                );
                if !pairs.is_empty() {
                    let id = problems.len();
                    problems.push(ErProblem::build_with_profiles(
                        id, &dataset, &scheme, (k, l), pairs, &profiles,
                    ));
                }
            }
        }
        let mut bench = Self {
            name: name.into(),
            dataset,
            scheme,
            problems,
            initial: Vec::new(),
            unsolved: Vec::new(),
        };
        bench.resplit_problems(ratio_init, seed);
        bench
    }

    /// Borrow the initial problems.
    pub fn initial_problems(&self) -> Vec<&ErProblem> {
        self.initial.iter().map(|&i| &self.problems[i]).collect()
    }

    /// Borrow the unsolved problems.
    pub fn unsolved_problems(&self) -> Vec<&ErProblem> {
        self.unsolved.iter().map(|&i| &self.problems[i]).collect()
    }

    /// Table-2-style statistics over all problems.
    pub fn stats(&self) -> BenchmarkStats {
        BenchmarkStats {
            num_problems: self.problems.len(),
            num_pairs: self.problems.iter().map(ErProblem::num_pairs).sum(),
            num_matches: self.problems.iter().map(ErProblem::num_matches).sum(),
        }
    }

    /// Re-split problems into `ratio_init` initial / rest unsolved (Table 3's
    /// `ratio_init` parameter), seeded. Used for the Dexter-style task split.
    pub fn resplit_problems(&mut self, ratio_init: f64, seed: u64) {
        let mut ids: Vec<ProblemId> = (0..self.problems.len()).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        ids.shuffle(&mut rng);
        let cut = ((ids.len() as f64) * ratio_init.clamp(0.0, 1.0)).round() as usize;
        self.initial = ids[..cut].to_vec();
        self.unsolved = ids[cut..].to_vec();
        self.initial.sort_unstable();
        self.unsolved.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DataSource, Record, Schema};
    use morer_sim::{AttributeComparator, SimilarityFunction};

    fn tiny_benchmark() -> (MultiSourceDataset, ComparisonScheme) {
        let schema = Schema::new(vec!["title"]);
        let mk = |entity: u64, title: &str| Record {
            uid: 0,
            source: 0,
            entity,
            values: vec![Some(title.to_owned())],
        };
        let s0 = DataSource {
            id: 0,
            name: "a".into(),
            records: vec![mk(1, "canon eos camera"), mk(2, "sony alpha body")],
        };
        let s1 = DataSource {
            id: 1,
            name: "b".into(),
            records: vec![mk(1, "canon eos camera kit"), mk(3, "nikon coolpix zoom")],
        };
        let ds = MultiSourceDataset::assemble("tiny", schema, vec![s0, s1]);
        let scheme = ComparisonScheme::new()
            .with(AttributeComparator::new(0, "title", SimilarityFunction::JaccardTokens));
        (ds, scheme)
    }

    #[test]
    fn build_computes_features_and_labels() {
        let (ds, scheme) = tiny_benchmark();
        let pairs = vec![(0u32, 2u32), (0, 3), (1, 2)];
        let p = ErProblem::build(0, &ds, &scheme, (0, 1), pairs);
        assert_eq!(p.num_pairs(), 3);
        assert_eq!(p.num_matches(), 1);
        assert!(p.labels[0]);
        assert!(!p.labels[1]);
        // jaccard("canon eos camera", "canon eos camera kit") = 3/4
        assert!((p.features.get(0, 0) - 0.75).abs() < 1e-12);
        assert_eq!(p.feature_names, vec!["jaccard(title)".to_owned()]);
    }

    #[test]
    fn validate_accepts_constructed_problems_and_rejects_tampering() {
        let (ds, scheme) = tiny_benchmark();
        let p = ErProblem::build(0, &ds, &scheme, (0, 1), vec![(0, 2), (0, 3), (1, 2)]);
        assert_eq!(p.validate(), Ok(()));
        // every cross-field invariant is checked
        let mut short_labels = p.clone();
        short_labels.labels.pop();
        assert!(short_labels.validate().unwrap_err().contains("labels"));
        let mut extra_pair = p.clone();
        extra_pair.pairs.push((9, 10));
        assert!(extra_pair.validate().unwrap_err().contains("feature rows"));
        let mut bad_names = p.clone();
        bad_names.feature_names.clear();
        assert!(bad_names.validate().unwrap_err().contains("feature names"));
        let mut poisoned = p.clone();
        poisoned.features = FeatureMatrix::from_rows(&[
            vec![0.5],
            vec![f64::INFINITY],
            vec![0.25],
        ]);
        assert!(poisoned.validate().unwrap_err().contains("non-finite"));
    }

    #[test]
    fn feature_column_extracts_distribution_sample() {
        let (ds, scheme) = tiny_benchmark();
        let p = ErProblem::build(0, &ds, &scheme, (0, 1), vec![(0, 2), (1, 3)]);
        let col = p.feature_column(0);
        assert_eq!(col.len(), 2);
        assert!(col.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn split_partitions_rows() {
        let (ds, scheme) = tiny_benchmark();
        let p = ErProblem::build(0, &ds, &scheme, (0, 1), vec![(0, 2), (0, 3), (1, 2), (1, 3)]);
        let (train, test) = p.split(0.5, 7);
        assert_eq!(train.num_pairs(), 2);
        assert_eq!(test.num_pairs(), 2);
        let mut all: Vec<(u32, u32)> = train.pairs.iter().chain(&test.pairs).copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![(0, 2), (0, 3), (1, 2), (1, 3)]);
    }

    #[test]
    fn training_set_round_trip() {
        let (ds, scheme) = tiny_benchmark();
        let p = ErProblem::build(0, &ds, &scheme, (0, 1), vec![(0, 2), (1, 3)]);
        let ts = p.to_training_set();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.y, p.labels);
    }

    #[test]
    fn benchmark_from_dataset_builds_problems_per_source_pair() {
        let (ds, scheme) = tiny_benchmark();
        let bench = Benchmark::from_dataset(
            "user",
            ds,
            scheme,
            &crate::blocking::TokenBlockingConfig::default(),
            0.5,
            7,
        );
        assert!(!bench.problems.is_empty());
        assert_eq!(bench.initial.len() + bench.unsolved.len(), bench.problems.len());
        // the tiny fixture has two sources without intra-dups: one cross pair
        assert!(bench.problems.iter().all(|p| p.sources == (0, 1)));
        assert!(bench.stats().num_matches > 0);
    }

    #[test]
    fn benchmark_stats_and_resplit() {
        let (ds, scheme) = tiny_benchmark();
        let p0 = ErProblem::build(0, &ds, &scheme, (0, 1), vec![(0, 2), (0, 3)]);
        let p1 = ErProblem::build(1, &ds, &scheme, (0, 1), vec![(1, 2)]);
        let mut b = Benchmark {
            name: "tiny".into(),
            dataset: ds,
            scheme,
            problems: vec![p0, p1],
            initial: vec![0],
            unsolved: vec![1],
        };
        let stats = b.stats();
        assert_eq!(stats.num_problems, 2);
        assert_eq!(stats.num_pairs, 3);
        assert_eq!(stats.num_matches, 1);
        b.resplit_problems(0.5, 3);
        assert_eq!(b.initial.len(), 1);
        assert_eq!(b.unsolved.len(), 1);
        assert_ne!(b.initial[0], b.unsolved[0]);
    }
}
