//! CSV import/export: ER problems (feature vectors + labels) and raw record
//! sources (so MoRER can run on user-provided data).
//!
//! The problem format matches what the paper's reference implementation
//! consumes: one row per record pair with the two record uids, the feature
//! values in scheme order, and the ground-truth label. Record sources are
//! plain CSVs with a header of attribute names (optional leading
//! `entity_id` column for ground truth); fields may be double-quoted.

use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use crate::problem::ErProblem;
use crate::record::{DataSource, Record, Schema};
use morer_ml::dataset::FeatureMatrix;

/// Split one CSV line into fields, honouring double quotes (`""` escapes a
/// quote inside a quoted field).
pub fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut field));
            }
            other => field.push(other),
        }
    }
    fields.push(field);
    fields
}

/// Read one record source from CSV. The header names the attributes; a
/// leading `entity_id` column (if present) provides ground-truth entity ids,
/// otherwise every record gets a unique entity. Empty fields become missing
/// values. Returns the source plus the schema derived from the header.
pub fn read_source<R: BufRead>(
    reader: R,
    source_id: usize,
    name: impl Into<String>,
) -> io::Result<(DataSource, Schema)> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty CSV"))??;
    let mut columns = split_csv_line(&header);
    let has_entity = columns.first().map(String::as_str) == Some("entity_id");
    if has_entity {
        columns.remove(0);
    }
    if columns.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "header names no attributes"));
    }
    let schema = Schema::new(columns.clone());
    let mut records = Vec::new();
    let mut synthetic_entity = 1_000_000_000u64;
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = split_csv_line(&line);
        let expected = columns.len() + usize::from(has_entity);
        if fields.len() != expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: expected {} fields, got {}", lineno + 2, expected, fields.len()),
            ));
        }
        let entity = if has_entity {
            let raw = fields.remove(0);
            raw.trim().parse::<u64>().map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("line {}: entity_id: {e}", lineno + 2))
            })?
        } else {
            synthetic_entity += 1;
            synthetic_entity
        };
        let values: Vec<Option<String>> = fields
            .into_iter()
            .map(|f| {
                let t = f.trim().to_owned();
                (!t.is_empty()).then_some(t)
            })
            .collect();
        records.push(Record { uid: 0, source: source_id, entity, values });
    }
    Ok((DataSource { id: source_id, name: name.into(), records }, schema))
}

/// Load a record source from a CSV file.
pub fn load_source(path: &Path, source_id: usize) -> io::Result<(DataSource, Schema)> {
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("source").to_owned();
    read_source(io::BufReader::new(std::fs::File::open(path)?), source_id, name)
}

/// Write an ER problem as CSV: header `uid_a,uid_b,<features...>,label`.
pub fn write_problem<W: Write>(problem: &ErProblem, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    write!(w, "uid_a,uid_b")?;
    for name in &problem.feature_names {
        write!(w, ",{name}")?;
    }
    writeln!(w, ",label")?;
    for (i, &(a, b)) in problem.pairs.iter().enumerate() {
        write!(w, "{a},{b}")?;
        for v in problem.features.row(i) {
            write!(w, ",{v}")?;
        }
        writeln!(w, ",{}", u8::from(problem.labels[i]))?;
    }
    w.flush()
}

/// Write an ER problem to a file path.
pub fn save_problem(problem: &ErProblem, path: &Path) -> io::Result<()> {
    write_problem(problem, std::fs::File::create(path)?)
}

/// Read an ER problem from CSV produced by [`write_problem`].
///
/// `id` and `sources` are not stored in the CSV and must be supplied.
pub fn read_problem<R: BufRead>(
    reader: R,
    id: usize,
    sources: (usize, usize),
) -> io::Result<ErProblem> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty CSV"))??;
    let cols: Vec<&str> = header.split(',').collect();
    if cols.len() < 3 || cols[0] != "uid_a" || cols[1] != "uid_b" || cols[cols.len() - 1] != "label"
    {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "unexpected CSV header"));
    }
    let feature_names: Vec<String> =
        cols[2..cols.len() - 1].iter().map(|s| (*s).to_owned()).collect();
    let t = feature_names.len();
    let mut pairs = Vec::new();
    let mut features = FeatureMatrix::new(t);
    let mut labels = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != t + 3 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: expected {} fields, got {}", lineno + 2, t + 3, fields.len()),
            ));
        }
        let parse = |s: &str| {
            s.parse::<f64>()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}: {s:?}")))
        };
        let a: u32 = fields[0]
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("uid_a: {e}")))?;
        let b: u32 = fields[1]
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("uid_b: {e}")))?;
        let row: Vec<f64> = fields[2..2 + t].iter().map(|s| parse(s)).collect::<Result<_, _>>()?;
        let label = match fields[t + 2] {
            "1" => true,
            "0" => false,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("invalid label {other:?}"),
                ))
            }
        };
        pairs.push((a, b));
        features.push_row(&row);
        labels.push(label);
    }
    Ok(ErProblem { id, sources, pairs, features, labels, feature_names })
}

/// Read an ER problem from a file path.
pub fn load_problem(path: &Path, id: usize, sources: (usize, usize)) -> io::Result<ErProblem> {
    read_problem(io::BufReader::new(std::fs::File::open(path)?), id, sources)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_problem() -> ErProblem {
        let mut features = FeatureMatrix::new(2);
        features.push_row(&[0.9, 1.0]);
        features.push_row(&[0.1, 0.25]);
        ErProblem {
            id: 3,
            sources: (0, 1),
            pairs: vec![(10, 20), (11, 21)],
            features,
            labels: vec![true, false],
            feature_names: vec!["jaccard(title)".into(), "numeric(price)".into()],
        }
    }

    #[test]
    fn round_trip_preserves_problem() {
        let p = sample_problem();
        let mut buf = Vec::new();
        write_problem(&p, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("uid_a,uid_b,jaccard(title),numeric(price),label\n"));
        let q = read_problem(io::BufReader::new(&buf[..]), 3, (0, 1)).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn rejects_bad_header() {
        let data = b"foo,bar\n1,2\n";
        let err = read_problem(io::BufReader::new(&data[..]), 0, (0, 0)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_short_rows_and_bad_labels() {
        let data = b"uid_a,uid_b,f,label\n1,2,0.5\n";
        assert!(read_problem(io::BufReader::new(&data[..]), 0, (0, 0)).is_err());
        let data = b"uid_a,uid_b,f,label\n1,2,0.5,2\n";
        assert!(read_problem(io::BufReader::new(&data[..]), 0, (0, 0)).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let data = b"uid_a,uid_b,f,label\n1,2,0.5,1\n\n";
        let p = read_problem(io::BufReader::new(&data[..]), 0, (0, 0)).unwrap();
        assert_eq!(p.num_pairs(), 1);
    }

    #[test]
    fn file_round_trip() {
        let p = sample_problem();
        let dir = std::env::temp_dir().join("morer_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p3.csv");
        save_problem(&p, &path).unwrap();
        let q = load_problem(&path, 3, (0, 1)).unwrap();
        assert_eq!(p, q);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn split_csv_handles_quotes() {
        assert_eq!(split_csv_line("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_csv_line(r#""a,b",c"#), vec!["a,b", "c"]);
        assert_eq!(split_csv_line(r#""say ""hi""",x"#), vec![r#"say "hi""#, "x"]);
        assert_eq!(split_csv_line(""), vec![""]);
        assert_eq!(split_csv_line("a,,c"), vec!["a", "", "c"]);
    }

    #[test]
    fn read_source_with_entity_ids() {
        let csv = "entity_id,title,price\n1,Canon EOS,499.99\n2,\"Nikon, D500\",\n";
        let (source, schema) = read_source(io::BufReader::new(csv.as_bytes()), 0, "shop").unwrap();
        assert_eq!(schema.attributes(), &["title".to_owned(), "price".to_owned()]);
        assert_eq!(source.records.len(), 2);
        assert_eq!(source.records[0].entity, 1);
        assert_eq!(source.records[1].value(0), Some("Nikon, D500"));
        assert_eq!(source.records[1].value(1), None); // empty = missing
    }

    #[test]
    fn read_source_without_entity_ids_gets_unique_entities() {
        let csv = "title\nfoo\nbar\n";
        let (source, _) = read_source(io::BufReader::new(csv.as_bytes()), 2, "s").unwrap();
        assert_eq!(source.records.len(), 2);
        assert_ne!(source.records[0].entity, source.records[1].entity);
        assert_eq!(source.id, 2);
    }

    #[test]
    fn read_source_rejects_ragged_rows() {
        let csv = "title,price\nonly-one-field\n";
        let err = read_source(io::BufReader::new(csv.as_bytes()), 0, "s").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let csv = "entity_id,title\nnot-a-number,x\n";
        assert!(read_source(io::BufReader::new(csv.as_bytes()), 0, "s").is_err());
    }
}
