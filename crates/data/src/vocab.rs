//! Deterministic vocabularies for the synthetic dataset generators.

use rand::rngs::SmallRng;
use rand::Rng;

/// Camera brands (Dexter-like domain).
pub const CAMERA_BRANDS: &[&str] = &[
    "Canon", "Nikon", "Sony", "Fujifilm", "Olympus", "Panasonic", "Leica", "Pentax", "Samsung",
    "GoPro", "Kodak", "Sigma", "Casio", "Ricoh",
];

/// Camera product nouns.
pub const CAMERA_NOUNS: &[&str] = &[
    "Digital Camera", "DSLR Camera", "Mirrorless Camera", "Action Camera", "Compact Camera",
    "Bridge Camera", "Camcorder", "Instant Camera",
];

/// Descriptive adjectives for product titles.
pub const PRODUCT_ADJECTIVES: &[&str] = &[
    "Professional", "Ultra HD", "4K", "Compact", "Wireless", "Premium", "Waterproof",
    "High Speed", "Full Frame", "Zoom",
];

/// Extra tokens vendors append to titles (colors, bundle markers).
pub const EXTRA_TOKENS: &[&str] = &[
    "black", "silver", "kit", "bundle", "new", "2024", "edition", "pro", "plus", "set",
];

/// Computer brands (WDC-like domain).
pub const COMPUTER_BRANDS: &[&str] = &[
    "Dell", "HP", "Lenovo", "Asus", "Acer", "Apple", "MSI", "Toshiba", "Fujitsu", "Gigabyte",
];

/// Computer product nouns.
pub const COMPUTER_NOUNS: &[&str] = &[
    "Laptop", "Notebook", "Desktop PC", "Workstation", "Ultrabook", "Gaming PC", "Mini PC",
    "All-in-One",
];

/// CPU model strings.
pub const CPUS: &[&str] = &[
    "Intel Core i3-10110U", "Intel Core i5-8250U", "Intel Core i5-1135G7", "Intel Core i7-9750H",
    "Intel Core i7-1165G7", "Intel Core i9-9900K", "AMD Ryzen 3 3200G", "AMD Ryzen 5 3600",
    "AMD Ryzen 5 5500U", "AMD Ryzen 7 4800H", "AMD Ryzen 7 5800X", "AMD Ryzen 9 5900X",
];

/// RAM size strings.
pub const RAM_SIZES: &[&str] = &["4 GB", "8 GB", "12 GB", "16 GB", "32 GB", "64 GB"];

/// Syllables for synthetic artist / person names.
pub const NAME_SYLLABLES: &[&str] = &[
    "ka", "ri", "to", "ne", "mi", "sol", "ver", "dan", "lo", "ran", "el", "sa", "mar", "ti",
    "ber", "lin", "os", "gra", "van", "del",
];

/// Words for synthetic song titles.
pub const SONG_WORDS: &[&str] = &[
    "night", "river", "golden", "heart", "shadow", "summer", "winter", "dancing", "silent",
    "electric", "midnight", "dream", "fire", "rain", "echo", "blue", "wild", "broken", "light",
    "road", "city", "ocean", "star", "storm", "velvet",
];

/// Music genres (used as an extra descriptive token).
pub const GENRES: &[&str] = &["rock", "pop", "jazz", "folk", "electronic", "classical", "metal", "indie"];

/// Languages for the music domain.
pub const LANGUAGES: &[&str] = &["english", "german", "french", "spanish", "italian"];

/// Draw a random element.
pub fn pick<'a>(items: &'a [&'a str], rng: &mut SmallRng) -> &'a str {
    items[rng.gen_range(0..items.len())]
}

/// Generate a model-number-like code, e.g. `EOS-4821` or `WX320`.
pub fn model_number(rng: &mut SmallRng) -> String {
    let letters: String = (0..rng.gen_range(2..4usize))
        .map(|_| (b'A' + rng.gen_range(0..26u8)) as char)
        .collect();
    let digits = rng.gen_range(100..9999u32);
    if rng.gen_bool(0.5) {
        format!("{letters}-{digits}")
    } else {
        format!("{letters}{digits}")
    }
}

/// Generate a capitalized synthetic name of 2-3 syllables.
pub fn synthetic_name(rng: &mut SmallRng) -> String {
    let n = rng.gen_range(2..4usize);
    let mut s: String = (0..n).map(|_| pick(NAME_SYLLABLES, rng)).collect();
    if let Some(first) = s.get_mut(0..1) {
        first.make_ascii_uppercase();
    }
    s
}

/// Generate a song title of 2-4 words.
pub fn song_title(rng: &mut SmallRng) -> String {
    let n = rng.gen_range(2..5usize);
    (0..n).map(|_| pick(SONG_WORDS, rng)).collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generators_are_deterministic() {
        let a: Vec<String> = {
            let mut r = SmallRng::seed_from_u64(5);
            (0..10).map(|_| model_number(&mut r)).collect()
        };
        let b: Vec<String> = {
            let mut r = SmallRng::seed_from_u64(5);
            (0..10).map(|_| model_number(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn model_numbers_have_letters_and_digits() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let m = model_number(&mut r);
            assert!(m.chars().any(|c| c.is_ascii_uppercase()));
            assert!(m.chars().any(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn names_are_capitalized() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..20 {
            let n = synthetic_name(&mut r);
            assert!(n.chars().next().unwrap().is_ascii_uppercase());
            assert!(n.len() >= 4);
        }
    }

    #[test]
    fn song_titles_have_two_to_four_words() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            let t = song_title(&mut r);
            let words = t.split(' ').count();
            assert!((2..=4).contains(&words), "{t}");
        }
    }

    #[test]
    fn pick_covers_all_items_eventually() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(pick(RAM_SIZES, &mut r));
        }
        assert_eq!(seen.len(), RAM_SIZES.len());
    }
}
