//! # morer-data — multi-source ER data substrate
//!
//! Everything between raw data sources and the similarity feature vectors the
//! MoRER pipeline consumes:
//!
//! * [`record`]: records, schemas, data sources, multi-source datasets with
//!   ground-truth entity ids;
//! * [`corruption`]: the typo/abbreviation/missing-value corruption framework
//!   used to generate heterogeneous sources (in the spirit of the DAPO
//!   corruptor used for the paper's MusicBrainz dataset);
//! * [`vocab`]: deterministic vocabularies for product and music domains;
//! * [`generator`]: synthetic stand-ins for the paper's three benchmark
//!   datasets — camera/Dexter-like, computer/WDC-like, music/MusicBrainz-like
//!   (see DESIGN.md §3 for the substitution rationale);
//! * [`blocking`]: token and key blocking to produce candidate record pairs;
//! * [`problem`]: the [`ErProblem`](problem::ErProblem) type — similarity
//!   feature vectors `w` with labels for one data-source pair — plus the
//!   benchmark bundles with initial/unsolved splits;
//! * [`csvio`]: CSV export/import of ER problems.
//!
//! All generation is seeded and deterministic.

pub mod blocking;
pub mod corruption;
pub mod csvio;
pub mod generator;
pub mod problem;
pub mod record;
pub mod vocab;

pub use generator::{camera, computer, music, DatasetScale};
pub use problem::{profile_dataset, Benchmark, ErProblem, ProblemId};
pub use record::{DataSource, MultiSourceDataset, Record, Schema};
