//! Blocking: cheap candidate-pair generation between (or within) sources.
//!
//! The pipeline's default is *token blocking* on a text attribute: records
//! sharing at least one word token become candidates. Oversized blocks
//! (stop-word-like tokens) are skipped, which is the standard guard against
//! quadratic blow-up [31].

use std::collections::{HashMap, HashSet};

use crate::record::Record;
use morer_sim::tokenize::words;

/// Configuration for token blocking.
#[derive(Debug, Clone)]
pub struct TokenBlockingConfig {
    /// Attribute index whose word tokens form the blocking keys.
    pub attribute: usize,
    /// Blocks larger than this on either side are skipped entirely.
    pub max_block_size: usize,
}

impl Default for TokenBlockingConfig {
    fn default() -> Self {
        Self { attribute: 0, max_block_size: 64 }
    }
}

/// Token blocking between two sources: candidate pairs `(uid_a, uid_b)` of
/// records sharing at least one non-oversized token.
pub fn token_blocking(
    a: &[Record],
    b: &[Record],
    config: &TokenBlockingConfig,
) -> Vec<(u32, u32)> {
    let index_a = token_index(a, config.attribute);
    let index_b = token_index(b, config.attribute);
    let mut pairs: HashSet<(u32, u32)> = HashSet::new();
    for (token, uids_a) in &index_a {
        let Some(uids_b) = index_b.get(token) else {
            continue;
        };
        if uids_a.len() > config.max_block_size || uids_b.len() > config.max_block_size {
            continue;
        }
        for &ua in uids_a {
            for &ub in uids_b {
                pairs.insert((ua, ub));
            }
        }
    }
    let mut out: Vec<(u32, u32)> = pairs.into_iter().collect();
    out.sort_unstable();
    out
}

/// Token blocking within one source (deduplication): pairs with
/// `uid_a < uid_b`.
pub fn token_blocking_within(a: &[Record], config: &TokenBlockingConfig) -> Vec<(u32, u32)> {
    let index = token_index(a, config.attribute);
    let mut pairs: HashSet<(u32, u32)> = HashSet::new();
    for uids in index.values() {
        if uids.len() > config.max_block_size {
            continue;
        }
        for i in 0..uids.len() {
            for j in (i + 1)..uids.len() {
                let (x, y) = (uids[i].min(uids[j]), uids[i].max(uids[j]));
                if x != y {
                    pairs.insert((x, y));
                }
            }
        }
    }
    let mut out: Vec<(u32, u32)> = pairs.into_iter().collect();
    out.sort_unstable();
    out
}

/// Blocking by an exact key function (e.g. normalized brand): records with
/// equal non-empty keys across the two sources become candidates.
pub fn key_blocking(
    a: &[Record],
    b: &[Record],
    key: impl Fn(&Record) -> Option<String>,
) -> Vec<(u32, u32)> {
    let mut index: HashMap<String, Vec<u32>> = HashMap::new();
    for r in a {
        if let Some(k) = key(r) {
            index.entry(k).or_default().push(r.uid);
        }
    }
    let mut pairs = Vec::new();
    for r in b {
        if let Some(k) = key(r) {
            if let Some(uids) = index.get(&k) {
                for &ua in uids {
                    pairs.push((ua, r.uid));
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Sorted-neighbourhood blocking: both sources are merged, sorted by a key,
/// and a window of size `window` slides over the sorted list; records within
/// the same window whose sources differ become candidates [31].
pub fn sorted_neighborhood(
    a: &[Record],
    b: &[Record],
    key: impl Fn(&Record) -> Option<String>,
    window: usize,
) -> Vec<(u32, u32)> {
    let mut keyed: Vec<(String, u32, bool)> = a
        .iter()
        .filter_map(|r| key(r).map(|k| (k, r.uid, false)))
        .chain(b.iter().filter_map(|r| key(r).map(|k| (k, r.uid, true))))
        .collect();
    keyed.sort();
    let mut pairs: HashSet<(u32, u32)> = HashSet::new();
    let w = window.max(2);
    for i in 0..keyed.len() {
        for j in (i + 1)..keyed.len().min(i + w) {
            let (ref _ka, ua, sa) = keyed[i];
            let (ref _kb, ub, sb) = keyed[j];
            if sa != sb {
                // orient as (a-side, b-side)
                let pair = if sa { (ub, ua) } else { (ua, ub) };
                pairs.insert(pair);
            }
        }
    }
    let mut out: Vec<(u32, u32)> = pairs.into_iter().collect();
    out.sort_unstable();
    out
}

/// Pair-completeness of a candidate set: fraction of true matches retained.
pub fn pair_completeness(
    candidates: &[(u32, u32)],
    is_match: impl Fn(u32, u32) -> bool,
    total_true_matches: usize,
) -> f64 {
    if total_true_matches == 0 {
        return 1.0;
    }
    let found = candidates.iter().filter(|&&(a, b)| is_match(a, b)).count();
    found as f64 / total_true_matches as f64
}

fn token_index(records: &[Record], attribute: usize) -> HashMap<String, Vec<u32>> {
    let mut index: HashMap<String, Vec<u32>> = HashMap::new();
    for r in records {
        if let Some(v) = r.value(attribute) {
            let mut seen = HashSet::new();
            for tok in words(v) {
                if seen.insert(tok.clone()) {
                    index.entry(tok).or_default().push(r.uid);
                }
            }
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(uid: u32, title: &str) -> Record {
        Record { uid, source: 0, entity: u64::from(uid), values: vec![Some(title.to_owned())] }
    }

    #[test]
    fn shared_token_creates_candidate() {
        let a = vec![rec(0, "canon eos camera"), rec(1, "sony alpha")];
        let b = vec![rec(10, "canon powershot"), rec(11, "nikon coolpix")];
        let pairs = token_blocking(&a, &b, &TokenBlockingConfig::default());
        assert_eq!(pairs, vec![(0, 10)]);
    }

    #[test]
    fn no_duplicate_pairs_for_multiple_shared_tokens() {
        let a = vec![rec(0, "canon eos camera")];
        let b = vec![rec(10, "canon eos kit")];
        let pairs = token_blocking(&a, &b, &TokenBlockingConfig::default());
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn oversized_blocks_are_skipped() {
        let a: Vec<Record> = (0..10).map(|i| rec(i, "camera common")).collect();
        let b: Vec<Record> = (10..20).map(|i| rec(i, "camera common")).collect();
        let cfg = TokenBlockingConfig { attribute: 0, max_block_size: 5 };
        assert!(token_blocking(&a, &b, &cfg).is_empty());
        let cfg = TokenBlockingConfig { attribute: 0, max_block_size: 10 };
        assert_eq!(token_blocking(&a, &b, &cfg).len(), 100);
    }

    #[test]
    fn within_source_pairs_are_ordered_and_unique() {
        let a = vec![rec(3, "canon x"), rec(1, "canon y"), rec(2, "canon z")];
        let pairs = token_blocking_within(&a, &TokenBlockingConfig::default());
        assert_eq!(pairs, vec![(1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn missing_values_produce_no_blocks() {
        let a = vec![Record { uid: 0, source: 0, entity: 0, values: vec![None] }];
        let b = vec![rec(1, "anything")];
        assert!(token_blocking(&a, &b, &TokenBlockingConfig::default()).is_empty());
    }

    #[test]
    fn key_blocking_exact_keys() {
        let a = vec![rec(0, "canon"), rec(1, "sony")];
        let b = vec![rec(10, "canon"), rec(11, "fuji")];
        let pairs = key_blocking(&a, &b, |r| r.value(0).map(str::to_lowercase));
        assert_eq!(pairs, vec![(0, 10)]);
    }

    #[test]
    fn sorted_neighborhood_window_pairs() {
        let a = vec![rec(0, "aaa"), rec(1, "mmm")];
        let b = vec![rec(10, "aab"), rec(11, "zzz")];
        let key = |r: &Record| r.value(0).map(str::to_owned);
        // window 2: only adjacent records pair up; "aaa"/"aab" are adjacent
        let pairs = sorted_neighborhood(&a, &b, key, 2);
        assert!(pairs.contains(&(0, 10)), "pairs: {pairs:?}");
        // a-side uid always first
        assert!(pairs.iter().all(|&(x, y)| x < 10 && y >= 10));
        // larger window adds more candidates
        let wide = sorted_neighborhood(&a, &b, key, 4);
        assert!(wide.len() >= pairs.len());
    }

    #[test]
    fn sorted_neighborhood_skips_missing_keys() {
        let a = vec![Record { uid: 0, source: 0, entity: 0, values: vec![None] }];
        let b = vec![rec(10, "x")];
        let key = |r: &Record| r.value(0).map(str::to_owned);
        assert!(sorted_neighborhood(&a, &b, key, 3).is_empty());
    }

    #[test]
    fn pair_completeness_computation() {
        let candidates = vec![(0u32, 10u32), (1, 11)];
        let pc = pair_completeness(&candidates, |a, b| a + 10 == b, 4);
        assert!((pc - 0.5).abs() < 1e-12);
        assert_eq!(pair_completeness(&[], |_, _| true, 0), 1.0);
    }
}
