//! Blocking: cheap candidate-pair generation between (or within) sources.
//!
//! The pipeline's default is *token blocking* on a text attribute: records
//! sharing at least one word token become candidates. Oversized blocks
//! (stop-word-like tokens) are skipped, which is the standard guard against
//! quadratic blow-up [31].
//!
//! Two implementations share the same semantics:
//!
//! * the `*_profiled` variants reuse interned token ids from a
//!   [`ProfileSet`] (one tokenization pass per record, shared with
//!   featurization — see [`crate::profile_dataset`]);
//! * the string-based variants tokenize locally and exist for callers that
//!   have no profiles at hand.
//!
//! Candidate de-duplication is a flat `Vec` sort + dedup rather than a
//! `HashSet<(u32, u32)>`: the output must be sorted anyway, and the flat
//! vector is both faster (no per-pair hashing/allocation) and cache-friendly.

use std::collections::HashMap;

use crate::record::Record;
use morer_sim::profile::ProfileSet;
use morer_sim::tokenize::words;
use morer_sim::TokenInterner;

/// Configuration for token blocking.
#[derive(Debug, Clone)]
pub struct TokenBlockingConfig {
    /// Attribute index whose word tokens form the blocking keys.
    pub attribute: usize,
    /// Blocks larger than this on either side are skipped entirely.
    pub max_block_size: usize,
}

impl Default for TokenBlockingConfig {
    fn default() -> Self {
        Self { attribute: 0, max_block_size: 64 }
    }
}

/// Sort + dedup a candidate list in place and return it — the flat-vector
/// replacement for hash-set de-duplication.
fn dedup_pairs(mut pairs: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Cross-source candidate generation from two token-id indices.
fn cross_pairs(
    index_a: &HashMap<u32, Vec<u32>>,
    index_b: &HashMap<u32, Vec<u32>>,
    max_block_size: usize,
) -> Vec<(u32, u32)> {
    // iterate the smaller index for fewer hash probes
    let (small, large, swapped) = if index_a.len() <= index_b.len() {
        (index_a, index_b, false)
    } else {
        (index_b, index_a, true)
    };
    let mut pairs = Vec::new();
    for (token, uids_s) in small {
        let Some(uids_l) = large.get(token) else {
            continue;
        };
        if uids_s.len() > max_block_size || uids_l.len() > max_block_size {
            continue;
        }
        let (uids_a, uids_b): (&[u32], &[u32]) =
            if swapped { (uids_l, uids_s) } else { (uids_s, uids_l) };
        for &ua in uids_a {
            for &ub in uids_b {
                pairs.push((ua, ub));
            }
        }
    }
    dedup_pairs(pairs)
}

/// Within-source candidate generation (`uid_a < uid_b`) from one index.
fn within_pairs(index: &HashMap<u32, Vec<u32>>, max_block_size: usize) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for uids in index.values() {
        if uids.len() > max_block_size {
            continue;
        }
        for i in 0..uids.len() {
            for j in (i + 1)..uids.len() {
                let (x, y) = (uids[i].min(uids[j]), uids[i].max(uids[j]));
                if x != y {
                    pairs.push((x, y));
                }
            }
        }
    }
    dedup_pairs(pairs)
}

/// Token-id index over records using cached profile token ids (`profiles`
/// indexed by uid).
fn token_index_profiled(
    records: &[Record],
    profiles: &ProfileSet,
    attribute: usize,
) -> HashMap<u32, Vec<u32>> {
    let mut index: HashMap<u32, Vec<u32>> = HashMap::new();
    for r in records {
        if let Some(attr) = profiles.record(r.uid as usize).attr(attribute) {
            // token_ids are already deduplicated per record
            for &tok in attr.token_ids() {
                index.entry(tok).or_default().push(r.uid);
            }
        }
    }
    index
}

/// Token-id index tokenizing on the fly with a local interner.
fn token_index(
    records: &[Record],
    attribute: usize,
    interner: &mut TokenInterner,
) -> HashMap<u32, Vec<u32>> {
    let mut index: HashMap<u32, Vec<u32>> = HashMap::new();
    for r in records {
        if let Some(v) = r.value(attribute) {
            let mut ids: Vec<u32> = words(v).iter().map(|t| interner.intern(t)).collect();
            ids.sort_unstable();
            ids.dedup();
            for tok in ids {
                index.entry(tok).or_default().push(r.uid);
            }
        }
    }
    index
}

/// Token blocking between two sources: candidate pairs `(uid_a, uid_b)` of
/// records sharing at least one non-oversized token.
pub fn token_blocking(
    a: &[Record],
    b: &[Record],
    config: &TokenBlockingConfig,
) -> Vec<(u32, u32)> {
    let mut interner = TokenInterner::new();
    let index_a = token_index(a, config.attribute, &mut interner);
    let index_b = token_index(b, config.attribute, &mut interner);
    cross_pairs(&index_a, &index_b, config.max_block_size)
}

/// [`token_blocking`] reusing the interned token ids cached on record
/// profiles (no re-tokenization; `profiles` indexed by uid, built with the
/// blocking attribute's tokens in the spec — see
/// [`morer_sim::ProfileSpec::require_tokens`]).
pub fn token_blocking_profiled(
    a: &[Record],
    b: &[Record],
    profiles: &ProfileSet,
    config: &TokenBlockingConfig,
) -> Vec<(u32, u32)> {
    let index_a = token_index_profiled(a, profiles, config.attribute);
    let index_b = token_index_profiled(b, profiles, config.attribute);
    cross_pairs(&index_a, &index_b, config.max_block_size)
}

/// Token blocking within one source (deduplication): pairs with
/// `uid_a < uid_b`.
pub fn token_blocking_within(a: &[Record], config: &TokenBlockingConfig) -> Vec<(u32, u32)> {
    let mut interner = TokenInterner::new();
    let index = token_index(a, config.attribute, &mut interner);
    within_pairs(&index, config.max_block_size)
}

/// [`token_blocking_within`] reusing cached profile token ids.
pub fn token_blocking_within_profiled(
    a: &[Record],
    profiles: &ProfileSet,
    config: &TokenBlockingConfig,
) -> Vec<(u32, u32)> {
    let index = token_index_profiled(a, profiles, config.attribute);
    within_pairs(&index, config.max_block_size)
}

/// Blocking by an exact key function (e.g. normalized brand): records with
/// equal non-empty keys across the two sources become candidates.
pub fn key_blocking(
    a: &[Record],
    b: &[Record],
    key: impl Fn(&Record) -> Option<String>,
) -> Vec<(u32, u32)> {
    let mut index: HashMap<String, Vec<u32>> = HashMap::new();
    for r in a {
        if let Some(k) = key(r) {
            index.entry(k).or_default().push(r.uid);
        }
    }
    let mut pairs = Vec::new();
    for r in b {
        if let Some(k) = key(r) {
            if let Some(uids) = index.get(&k) {
                for &ua in uids {
                    pairs.push((ua, r.uid));
                }
            }
        }
    }
    dedup_pairs(pairs)
}

/// Sorted-neighbourhood blocking: both sources are merged, sorted by a key,
/// and a window of size `window` slides over the sorted list; records within
/// the same window whose sources differ become candidates [31].
pub fn sorted_neighborhood(
    a: &[Record],
    b: &[Record],
    key: impl Fn(&Record) -> Option<String>,
    window: usize,
) -> Vec<(u32, u32)> {
    let mut keyed: Vec<(String, u32, bool)> = a
        .iter()
        .filter_map(|r| key(r).map(|k| (k, r.uid, false)))
        .chain(b.iter().filter_map(|r| key(r).map(|k| (k, r.uid, true))))
        .collect();
    keyed.sort();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let w = window.max(2);
    for i in 0..keyed.len() {
        for j in (i + 1)..keyed.len().min(i + w) {
            let (ref _ka, ua, sa) = keyed[i];
            let (ref _kb, ub, sb) = keyed[j];
            if sa != sb {
                // orient as (a-side, b-side)
                let pair = if sa { (ub, ua) } else { (ua, ub) };
                pairs.push(pair);
            }
        }
    }
    dedup_pairs(pairs)
}

/// Pair-completeness of a candidate set: fraction of true matches retained.
pub fn pair_completeness(
    candidates: &[(u32, u32)],
    is_match: impl Fn(u32, u32) -> bool,
    total_true_matches: usize,
) -> f64 {
    if total_true_matches == 0 {
        return 1.0;
    }
    let found = candidates.iter().filter(|&&(a, b)| is_match(a, b)).count();
    found as f64 / total_true_matches as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DataSource, MultiSourceDataset, Schema};

    fn rec(uid: u32, title: &str) -> Record {
        Record { uid, source: 0, entity: u64::from(uid), values: vec![Some(title.to_owned())] }
    }

    #[test]
    fn shared_token_creates_candidate() {
        let a = vec![rec(0, "canon eos camera"), rec(1, "sony alpha")];
        let b = vec![rec(10, "canon powershot"), rec(11, "nikon coolpix")];
        let pairs = token_blocking(&a, &b, &TokenBlockingConfig::default());
        assert_eq!(pairs, vec![(0, 10)]);
    }

    #[test]
    fn no_duplicate_pairs_for_multiple_shared_tokens() {
        let a = vec![rec(0, "canon eos camera")];
        let b = vec![rec(10, "canon eos kit")];
        let pairs = token_blocking(&a, &b, &TokenBlockingConfig::default());
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn oversized_blocks_are_skipped() {
        let a: Vec<Record> = (0..10).map(|i| rec(i, "camera common")).collect();
        let b: Vec<Record> = (10..20).map(|i| rec(i, "camera common")).collect();
        let cfg = TokenBlockingConfig { attribute: 0, max_block_size: 5 };
        assert!(token_blocking(&a, &b, &cfg).is_empty());
        let cfg = TokenBlockingConfig { attribute: 0, max_block_size: 10 };
        assert_eq!(token_blocking(&a, &b, &cfg).len(), 100);
    }

    #[test]
    fn within_source_pairs_are_ordered_and_unique() {
        let a = vec![rec(3, "canon x"), rec(1, "canon y"), rec(2, "canon z")];
        let pairs = token_blocking_within(&a, &TokenBlockingConfig::default());
        assert_eq!(pairs, vec![(1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn missing_values_produce_no_blocks() {
        let a = vec![Record { uid: 0, source: 0, entity: 0, values: vec![None] }];
        let b = vec![rec(1, "anything")];
        assert!(token_blocking(&a, &b, &TokenBlockingConfig::default()).is_empty());
    }

    #[test]
    fn profiled_blocking_matches_string_blocking() {
        // assemble a dataset so uids are dense and profiles line up
        let schema = Schema::new(vec!["title"]);
        let mk = |title: &str| Record {
            uid: 0,
            source: 0,
            entity: 0,
            values: vec![Some(title.to_owned())],
        };
        let s0 = DataSource {
            id: 0,
            name: "a".into(),
            records: vec![
                mk("canon eos camera"),
                mk("sony alpha"),
                mk("canon eos kit"),
            ],
        };
        let s1 = DataSource {
            id: 1,
            name: "b".into(),
            records: vec![mk("canon powershot"), mk("nikon coolpix"), mk("eos camera")],
        };
        let ds = MultiSourceDataset::assemble("t", schema, vec![s0, s1]);
        let spec = morer_sim::ProfileSpec::default().require_tokens(0);
        let profiles = crate::profile_dataset(&ds, spec);
        let cfg = TokenBlockingConfig::default();
        let a = &ds.sources[0].records;
        let b = &ds.sources[1].records;
        assert_eq!(
            token_blocking_profiled(a, b, &profiles, &cfg),
            token_blocking(a, b, &cfg)
        );
        assert_eq!(
            token_blocking_within_profiled(a, &profiles, &cfg),
            token_blocking_within(a, &cfg)
        );
    }

    #[test]
    fn key_blocking_exact_keys() {
        let a = vec![rec(0, "canon"), rec(1, "sony")];
        let b = vec![rec(10, "canon"), rec(11, "fuji")];
        let pairs = key_blocking(&a, &b, |r| r.value(0).map(str::to_lowercase));
        assert_eq!(pairs, vec![(0, 10)]);
    }

    #[test]
    fn sorted_neighborhood_window_pairs() {
        let a = vec![rec(0, "aaa"), rec(1, "mmm")];
        let b = vec![rec(10, "aab"), rec(11, "zzz")];
        let key = |r: &Record| r.value(0).map(str::to_owned);
        // window 2: only adjacent records pair up; "aaa"/"aab" are adjacent
        let pairs = sorted_neighborhood(&a, &b, key, 2);
        assert!(pairs.contains(&(0, 10)), "pairs: {pairs:?}");
        // a-side uid always first
        assert!(pairs.iter().all(|&(x, y)| x < 10 && y >= 10));
        // larger window adds more candidates
        let wide = sorted_neighborhood(&a, &b, key, 4);
        assert!(wide.len() >= pairs.len());
    }

    #[test]
    fn sorted_neighborhood_skips_missing_keys() {
        let a = vec![Record { uid: 0, source: 0, entity: 0, values: vec![None] }];
        let b = vec![rec(10, "x")];
        let key = |r: &Record| r.value(0).map(str::to_owned);
        assert!(sorted_neighborhood(&a, &b, key, 3).is_empty());
    }

    #[test]
    fn pair_completeness_computation() {
        let candidates = vec![(0u32, 10u32), (1, 11)];
        let pc = pair_completeness(&candidates, |a, b| a + 10 == b, 4);
        assert!((pc - 0.5).abs() < 1e-12);
        assert_eq!(pair_completeness(&[], |_, _| true, 0), 1.0);
    }
}
