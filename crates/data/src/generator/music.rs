//! Music benchmark — the MusicBrainz stand-in.
//!
//! Mirrors the corrupted MusicBrainz benchmark [15] the paper uses: **5
//! sources**, duplicate-free within a source, 20 ER problems (10 source pairs
//! × train/test split), ~4% match rate, and records that are "heterogeneous
//! regarding the characteristics of attribute values, such as the number of
//! missing values, the length of values, and the ratio of errors" (§5.1).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::{build_benchmark, standard_plans, DatasetScale, DomainSpec, Entity, SplitMode};
use crate::blocking::TokenBlockingConfig;
use crate::corruption::AttributeKind;
use crate::problem::Benchmark;
use crate::record::{MultiSourceDataset, Schema};
use crate::vocab::{pick, song_title, synthetic_name, GENRES, LANGUAGES};
use morer_sim::{AttributeComparator, ComparisonScheme, SimilarityFunction};

/// Number of data sources (as in the MusicBrainz benchmark).
pub const MUSIC_SOURCES: usize = 5;

/// Entities at paper scale (tuned toward the published 385.9K pairs / 16.2K
/// matches over 20 problems).
const PAPER_ENTITIES: usize = 8200;

/// Generate the music (MusicBrainz-like) benchmark. Each source pair yields
/// a train problem (`P_I`) and a test problem (`P_U`).
pub fn music(scale: DatasetScale, seed: u64) -> Benchmark {
    let mut rng = SmallRng::seed_from_u64(seed);
    let num_entities = ((PAPER_ENTITIES as f64) * scale.factor()).max(60.0) as usize;

    let spec = DomainSpec {
        name: "music",
        schema: Schema::new(vec!["title", "artist", "album", "year", "length", "number"]),
        kinds: vec![
            AttributeKind::Text,
            AttributeKind::Text,
            AttributeKind::Text,
            AttributeKind::Numeric,
            AttributeKind::Numeric,
            AttributeKind::Numeric,
        ],
        extra_tokens: GENRES,
    };

    let entities: Vec<Entity> = (0..num_entities)
        .map(|_| {
            let artist = format!("{} {}", synthetic_name(&mut rng), synthetic_name(&mut rng));
            let title = song_title(&mut rng);
            let album = song_title(&mut rng);
            let year = rng.gen_range(1960..2024i32).to_string();
            let length = rng.gen_range(95..430i32).to_string(); // seconds
            let number = rng.gen_range(1..21i32).to_string();
            let _ = pick(LANGUAGES, &mut rng); // language kept for future use
            Entity { values: vec![title, artist, album, year, length, number] }
        })
        .collect();

    // duplicate-free sources; "duplicates for 50% of the original records"
    // across sources → moderate coverage per source
    let plans = standard_plans(MUSIC_SOURCES, 0.4, 0.7, 0.0, &mut rng);
    let sources = super::materialize_sources(&entities, &plans, &spec, &mut rng);
    let dataset = MultiSourceDataset::assemble("music", spec.schema.clone(), sources);

    let scheme = ComparisonScheme::new()
        .with(AttributeComparator::new(0, "title", SimilarityFunction::JaccardTokens))
        .with(AttributeComparator::new(1, "artist", SimilarityFunction::JaroWinkler))
        .with(AttributeComparator::new(2, "album", SimilarityFunction::MongeElkan))
        .with(AttributeComparator::new(3, "year", SimilarityFunction::Year))
        .with(AttributeComparator::new(4, "length", SimilarityFunction::NumericDiff))
        .with(AttributeComparator::new(5, "number", SimilarityFunction::NumericDiff));

    build_benchmark(
        "music",
        dataset,
        scheme,
        &TokenBlockingConfig { attribute: 0, max_block_size: 256 },
        22.0, // ~4.2% match rate as published
        false,
        SplitMode::Pairs { train_fraction: 0.5 },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn music_has_20_problems() {
        let b = music(DatasetScale::Tiny, 13);
        // 10 source pairs × (train, test)
        assert_eq!(b.problems.len(), 20);
        assert_eq!(b.initial.len(), 10);
        assert_eq!(b.unsolved.len(), 10);
        assert_eq!(b.dataset.num_sources(), MUSIC_SOURCES);
    }

    #[test]
    fn music_sources_are_duplicate_free() {
        let b = music(DatasetScale::Tiny, 13);
        for s in &b.dataset.sources {
            assert!(!s.has_intra_duplicates());
        }
    }

    #[test]
    fn music_match_rate_is_low() {
        let b = music(DatasetScale::Tiny, 13);
        let s = b.stats();
        let rate = s.num_matches as f64 / s.num_pairs as f64;
        assert!((0.02..=0.12).contains(&rate), "match rate {rate}");
    }

    #[test]
    fn music_has_six_features() {
        let b = music(DatasetScale::Tiny, 13);
        assert_eq!(b.problems[0].num_features(), 6);
        assert_eq!(b.problems[0].feature_names[3], "year(year)");
    }

    #[test]
    fn music_deterministic() {
        assert_eq!(music(DatasetScale::Tiny, 4).stats(), music(DatasetScale::Tiny, 4).stats());
    }

    #[test]
    fn sources_show_heterogeneous_missing_rates() {
        let b = music(DatasetScale::Tiny, 13);
        let missing_rate = |s: &crate::record::DataSource| {
            let total: usize = s.records.len() * 6;
            let present: usize = s.records.iter().map(|r| r.present_values()).sum();
            1.0 - present as f64 / total.max(1) as f64
        };
        let rates: Vec<f64> = b.dataset.sources.iter().map(missing_rate).collect();
        let max = rates.iter().fold(0.0f64, |a, &b| a.max(b));
        let min = rates.iter().fold(1.0f64, |a, &b| a.min(b));
        // the sparse profile should stand out against the clean profile
        assert!(max - min > 0.1, "rates {rates:?}");
    }
}
