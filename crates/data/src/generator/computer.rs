//! Computer benchmark — the WDC-computer stand-in.
//!
//! Mirrors the WDC product-matching subset used by the Almser study: **4
//! sources**, duplicate-free within a source, 12 ER problems (6 source pairs
//! × the train/test pair split, §5.2), and a low match rate (~6.5%).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::{build_benchmark, standard_plans, DatasetScale, DomainSpec, Entity, SplitMode};
use crate::blocking::TokenBlockingConfig;
use crate::corruption::AttributeKind;
use crate::problem::Benchmark;
use crate::record::{MultiSourceDataset, Schema};
use crate::vocab::{pick, COMPUTER_BRANDS, COMPUTER_NOUNS, CPUS, EXTRA_TOKENS, RAM_SIZES};
use morer_sim::{AttributeComparator, ComparisonScheme, SimilarityFunction};

/// Number of data sources (as in WDC-computer).
pub const COMPUTER_SOURCES: usize = 4;

/// Entities at paper scale (tuned toward the published 74.5K pairs / 4.8K
/// matches over 12 problems).
const PAPER_ENTITIES: usize = 2100;

/// Generate the computer (WDC-like) benchmark. Each source pair yields a
/// train problem (placed in `P_I`) and a test problem (placed in `P_U`).
pub fn computer(scale: DatasetScale, seed: u64) -> Benchmark {
    let mut rng = SmallRng::seed_from_u64(seed);
    let num_entities = ((PAPER_ENTITIES as f64) * scale.factor()).max(40.0) as usize;

    let spec = DomainSpec {
        name: "computer",
        schema: Schema::new(vec!["title", "brand", "cpu", "ram", "price"]),
        kinds: vec![
            AttributeKind::Text,
            AttributeKind::Text,
            AttributeKind::Text,
            AttributeKind::Numeric,
            AttributeKind::Numeric,
        ],
        extra_tokens: EXTRA_TOKENS,
    };

    let entities: Vec<Entity> = (0..num_entities)
        .map(|_| {
            let brand = pick(COMPUTER_BRANDS, &mut rng);
            let noun = pick(COMPUTER_NOUNS, &mut rng);
            let cpu = pick(CPUS, &mut rng);
            let ram = pick(RAM_SIZES, &mut rng);
            let series: String = format!(
                "{}{}",
                (b'A' + rng.gen_range(0..26u8)) as char,
                rng.gen_range(100..999)
            );
            let price = format!("{}.00", rng.gen_range(249..4999));
            Entity {
                values: vec![
                    format!("{brand} {series} {noun} {cpu} {ram}"),
                    brand.to_owned(),
                    cpu.to_owned(),
                    ram.to_owned(),
                    price,
                ],
            }
        })
        .collect();

    // WDC sources are duplicate-free; coverage is high (vendors list most
    // popular products).
    let plans = standard_plans(COMPUTER_SOURCES, 0.55, 0.8, 0.0, &mut rng);
    let sources = super::materialize_sources(&entities, &plans, &spec, &mut rng);
    let dataset = MultiSourceDataset::assemble("computer", spec.schema.clone(), sources);

    let scheme = ComparisonScheme::new()
        .with(AttributeComparator::new(0, "title", SimilarityFunction::JaccardTokens))
        .with(AttributeComparator::new(1, "brand", SimilarityFunction::JaroWinkler))
        .with(AttributeComparator::new(2, "cpu", SimilarityFunction::JaccardQgrams(3)))
        .with(AttributeComparator::new(3, "ram", SimilarityFunction::NumericDiff))
        .with(AttributeComparator::new(4, "price", SimilarityFunction::NumericDiff));

    build_benchmark(
        "wdc-computer",
        dataset,
        scheme,
        &TokenBlockingConfig { attribute: 0, max_block_size: 128 },
        14.0, // ~6.5% match rate as published
        false,
        SplitMode::Pairs { train_fraction: 0.5 },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computer_has_12_problems() {
        let b = computer(DatasetScale::Tiny, 11);
        // 6 source pairs × (train, test)
        assert_eq!(b.problems.len(), 12);
        assert_eq!(b.initial.len(), 6);
        assert_eq!(b.unsolved.len(), 6);
    }

    #[test]
    fn computer_sources_are_duplicate_free() {
        let b = computer(DatasetScale::Tiny, 11);
        for s in &b.dataset.sources {
            assert!(!s.has_intra_duplicates(), "source {} has intra duplicates", s.name);
        }
        assert_eq!(b.dataset.num_sources(), COMPUTER_SOURCES);
    }

    #[test]
    fn computer_match_rate_is_low() {
        let b = computer(DatasetScale::Tiny, 11);
        let s = b.stats();
        let rate = s.num_matches as f64 / s.num_pairs as f64;
        assert!((0.02..=0.15).contains(&rate), "match rate {rate}");
    }

    #[test]
    fn train_test_problems_share_source_pairs() {
        let b = computer(DatasetScale::Tiny, 11);
        for ids in b.initial.iter().zip(&b.unsolved) {
            let (train, test) = (&b.problems[*ids.0], &b.problems[*ids.1]);
            assert_eq!(train.sources, test.sources);
            // the pair sets must be disjoint
            let train_set: std::collections::HashSet<_> = train.pairs.iter().collect();
            assert!(test.pairs.iter().all(|p| !train_set.contains(p)));
        }
    }

    #[test]
    fn computer_deterministic() {
        assert_eq!(
            computer(DatasetScale::Tiny, 3).stats(),
            computer(DatasetScale::Tiny, 3).stats()
        );
    }
}
