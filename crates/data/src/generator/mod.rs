//! Synthetic multi-source dataset generators.
//!
//! Stand-ins for the paper's three benchmarks (see DESIGN.md §3): each
//! generator mirrors the published *shape* of its dataset — source count, ER
//! problem count, pair volume, match rate, intra-source duplicates — while
//! per-source [`SourceProfile`]s create the heterogeneous similarity
//! distributions (paper Fig. 2) that MoRER's distribution analysis exploits.

mod camera;
mod computer;
mod music;

pub use camera::camera;
pub use computer::computer;
pub use music::music;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::blocking::{token_blocking_profiled, token_blocking_within_profiled, TokenBlockingConfig};
use crate::corruption::{corrupt_value, AttributeKind, SourceProfile};
use crate::problem::{profile_dataset, Benchmark, ErProblem};
use crate::record::{DataSource, MultiSourceDataset, Record, Schema};
use morer_sim::ComparisonScheme;

/// Size preset for generated benchmarks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DatasetScale {
    /// Minimal data for unit tests (seconds to build and solve).
    Tiny,
    /// Default scale: ~10% of the paper's pair volume, minutes end-to-end.
    Default,
    /// The paper's published volume (Table 2).
    Paper,
    /// Explicit multiplier relative to `Paper`.
    Custom(f64),
}

impl DatasetScale {
    /// Multiplier applied to the paper-scale entity counts.
    pub fn factor(self) -> f64 {
        match self {
            Self::Tiny => 0.02,
            Self::Default => 0.1,
            Self::Paper => 1.0,
            Self::Custom(f) => f.max(0.001),
        }
    }
}

/// Canonical (uncorrupted) entity values.
pub(crate) struct Entity {
    pub values: Vec<String>,
}

/// Specification shared by the domain generators.
pub(crate) struct DomainSpec {
    pub name: &'static str,
    pub schema: Schema,
    /// Corruption family per attribute.
    pub kinds: Vec<AttributeKind>,
    /// Extra tokens the corruptor may append to text attributes.
    pub extra_tokens: &'static [&'static str],
}

/// How the benchmark's ER problems are split into `P_I` / `P_U`.
pub(crate) enum SplitMode {
    /// Dexter style: split the *problems* (50% initial by default).
    Problems { ratio_init: f64 },
    /// WDC/Music style: split each problem's *pairs* into a train problem
    /// (initial) and a test problem (unsolved).
    Pairs { train_fraction: f64 },
}

/// Per-source generation parameters.
pub(crate) struct SourcePlan {
    pub profile: SourceProfile,
    /// Probability an entity is mentioned in this source.
    pub coverage: f64,
    /// Probability a mentioned entity gets a second corrupted mention
    /// (intra-source duplicates, Dexter-style).
    pub intra_dup_rate: f64,
}

/// Materialize data sources from entities: each source mentions a covered
/// subset of the entities with profile-specific corruption.
pub(crate) fn materialize_sources(
    entities: &[Entity],
    plans: &[SourcePlan],
    spec: &DomainSpec,
    rng: &mut SmallRng,
) -> Vec<DataSource> {
    plans
        .iter()
        .enumerate()
        .map(|(sid, plan)| {
            let mut records = Vec::new();
            for (eid, entity) in entities.iter().enumerate() {
                if !rng.gen_bool(plan.coverage.clamp(0.0, 1.0)) {
                    continue;
                }
                records.push(mention(eid as u64, entity, plan, spec, rng));
                if rng.gen_bool(plan.intra_dup_rate.clamp(0.0, 1.0)) {
                    records.push(mention(eid as u64, entity, plan, spec, rng));
                }
            }
            DataSource { id: sid, name: format!("{}-{}", spec.name, sid), records }
        })
        .collect()
}

fn mention(
    entity: u64,
    canonical: &Entity,
    plan: &SourcePlan,
    spec: &DomainSpec,
    rng: &mut SmallRng,
) -> Record {
    let values = canonical
        .values
        .iter()
        .zip(&spec.kinds)
        .map(|(v, &kind)| corrupt_value(v, kind, &plan.profile, spec.extra_tokens, rng))
        .collect();
    Record { uid: 0, source: 0, entity, values }
}

/// Build the benchmark: blocking per source pair, non-match subsampling to
/// the target ratio, problem construction, and the `P_I`/`P_U` split.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_benchmark(
    name: &str,
    dataset: MultiSourceDataset,
    scheme: ComparisonScheme,
    blocking: &TokenBlockingConfig,
    nonmatch_ratio: f64,
    include_self_problems: bool,
    split: SplitMode,
    seed: u64,
) -> Benchmark {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xB10C);
    let mut problems: Vec<ErProblem> = Vec::new();
    let n = dataset.num_sources();

    // One profiling pass over every record serves blocking (interned token
    // ids on the blocking attribute) and featurization (everything the
    // scheme compares) for all O(n²) source-pair problems — the same shared
    // `ProfileSet` discipline as `Benchmark::from_dataset`, instead of
    // every `ErProblem::build` re-profiling its own records.
    let spec = scheme.profile_spec().require_tokens(blocking.attribute);
    let profiles = profile_dataset(&dataset, spec);

    let mut raw: Vec<((usize, usize), Vec<(u32, u32)>)> = Vec::new();
    for k in 0..n {
        if include_self_problems {
            let pairs =
                token_blocking_within_profiled(&dataset.sources[k].records, &profiles, blocking);
            raw.push(((k, k), pairs));
        }
        for l in (k + 1)..n {
            let pairs = token_blocking_profiled(
                &dataset.sources[k].records,
                &dataset.sources[l].records,
                &profiles,
                blocking,
            );
            raw.push(((k, l), pairs));
        }
    }

    for (sources, pairs) in raw {
        let sampled = subsample_nonmatches(&dataset, pairs, nonmatch_ratio, &mut rng);
        if sampled.is_empty() {
            continue;
        }
        let id = problems.len();
        problems.push(ErProblem::build_with_profiles(
            id, &dataset, &scheme, sources, sampled, &profiles,
        ));
    }

    let (problems, initial, unsolved) = match split {
        SplitMode::Problems { ratio_init } => {
            let mut ids: Vec<usize> = (0..problems.len()).collect();
            ids.shuffle(&mut rng);
            let cut = ((ids.len() as f64) * ratio_init).round() as usize;
            let mut initial = ids[..cut].to_vec();
            let mut unsolved = ids[cut..].to_vec();
            initial.sort_unstable();
            unsolved.sort_unstable();
            (problems, initial, unsolved)
        }
        SplitMode::Pairs { train_fraction } => {
            let mut out = Vec::with_capacity(problems.len() * 2);
            let mut initial = Vec::new();
            let mut unsolved = Vec::new();
            for p in problems {
                let (mut train, mut test) = p.split(train_fraction, seed ^ p.id as u64);
                if train.num_pairs() == 0 || test.num_pairs() == 0 {
                    continue;
                }
                train.id = out.len();
                initial.push(train.id);
                out.push(train);
                test.id = out.len();
                unsolved.push(test.id);
                out.push(test);
            }
            (out, initial, unsolved)
        }
    };

    Benchmark { name: name.to_owned(), dataset, scheme, problems, initial, unsolved }
}

/// Keep all true matches; sample non-matches down to `ratio` per match
/// (keeps the published match-rate shape without discarding positives).
fn subsample_nonmatches(
    dataset: &MultiSourceDataset,
    pairs: Vec<(u32, u32)>,
    ratio: f64,
    rng: &mut SmallRng,
) -> Vec<(u32, u32)> {
    let (matches, mut nonmatches): (Vec<_>, Vec<_>) =
        pairs.into_iter().partition(|&(a, b)| dataset.is_match(a, b));
    let keep = ((matches.len() as f64) * ratio).round() as usize;
    nonmatches.shuffle(rng);
    nonmatches.truncate(keep.max(matches.len().min(8)));
    let mut out = matches;
    out.extend(nonmatches);
    out.sort_unstable();
    out
}

/// Round-robin the standard profiles across `n` sources with per-source
/// coverage drawn from `[coverage_lo, coverage_hi]`.
pub(crate) fn standard_plans(
    n: usize,
    coverage_lo: f64,
    coverage_hi: f64,
    intra_dup_rate: f64,
    rng: &mut SmallRng,
) -> Vec<SourcePlan> {
    let profiles = SourceProfile::standard_profiles();
    (0..n)
        .map(|i| SourcePlan {
            profile: profiles[i % profiles.len()].clone(),
            coverage: rng.gen_range(coverage_lo..=coverage_hi),
            intra_dup_rate,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors_ordered() {
        assert!(DatasetScale::Tiny.factor() < DatasetScale::Default.factor());
        assert!(DatasetScale::Default.factor() < DatasetScale::Paper.factor());
        assert_eq!(DatasetScale::Custom(0.5).factor(), 0.5);
        assert!(DatasetScale::Custom(-1.0).factor() > 0.0);
    }

    #[test]
    fn materialize_respects_coverage_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let spec = DomainSpec {
            name: "t",
            schema: Schema::new(vec!["a"]),
            kinds: vec![AttributeKind::Text],
            extra_tokens: &[],
        };
        let entities: Vec<Entity> =
            (0..10).map(|i| Entity { values: vec![format!("value {i}")] }).collect();
        let full = SourcePlan { profile: SourceProfile::clean(), coverage: 1.0, intra_dup_rate: 0.0 };
        let none = SourcePlan { profile: SourceProfile::clean(), coverage: 0.0, intra_dup_rate: 0.0 };
        let sources = materialize_sources(&entities, &[full, none], &spec, &mut rng);
        assert_eq!(sources[0].len(), 10);
        assert_eq!(sources[1].len(), 0);
    }

    #[test]
    fn intra_dup_rate_one_duplicates_every_mention() {
        let mut rng = SmallRng::seed_from_u64(2);
        let spec = DomainSpec {
            name: "t",
            schema: Schema::new(vec!["a"]),
            kinds: vec![AttributeKind::Text],
            extra_tokens: &[],
        };
        let entities: Vec<Entity> =
            (0..5).map(|i| Entity { values: vec![format!("value {i}")] }).collect();
        let plan = SourcePlan { profile: SourceProfile::clean(), coverage: 1.0, intra_dup_rate: 1.0 };
        let sources = materialize_sources(&entities, &[plan], &spec, &mut rng);
        assert_eq!(sources[0].len(), 10);
        assert!(sources[0].has_intra_duplicates());
    }

    #[test]
    fn standard_plans_cycle_profiles() {
        let mut rng = SmallRng::seed_from_u64(3);
        let plans = standard_plans(6, 0.5, 0.7, 0.0, &mut rng);
        assert_eq!(plans.len(), 6);
        assert_eq!(plans[0].profile.name, plans[4].profile.name);
        assert_ne!(plans[0].profile.name, plans[1].profile.name);
        for p in &plans {
            assert!((0.5..=0.7).contains(&p.coverage));
        }
    }
}
