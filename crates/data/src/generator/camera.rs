//! Camera benchmark — the Dexter stand-in.
//!
//! Mirrors the SIGMOD 2020 camera dataset the paper derives Dexter from:
//! **23 sources**, intra-source duplicates (so same-source deduplication
//! problems exist), 276 ER problems (23 self + 253 cross), a high match rate
//! (~33% of candidate pairs), and strongly source-specific value quality.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::{build_benchmark, standard_plans, DatasetScale, DomainSpec, Entity, SplitMode};
use crate::blocking::TokenBlockingConfig;
use crate::corruption::AttributeKind;
use crate::problem::Benchmark;
use crate::record::{MultiSourceDataset, Schema};
use crate::vocab::{model_number, pick, CAMERA_BRANDS, CAMERA_NOUNS, EXTRA_TOKENS, PRODUCT_ADJECTIVES};
use morer_sim::{AttributeComparator, ComparisonScheme, SimilarityFunction};

/// Number of data sources (as in Dexter).
pub const CAMERA_SOURCES: usize = 23;

/// Entities at paper scale (tuned so candidate-pair volume lands near the
/// published 1.1M pairs across 276 problems).
const PAPER_ENTITIES: usize = 3400;

/// Generate the camera (Dexter-like) benchmark.
///
/// `ratio_init` is the fraction of ER problems placed in the initial set
/// `P_I` (the paper uses 50%, with 30% as an ablation — Table 3).
pub fn camera(scale: DatasetScale, ratio_init: f64, seed: u64) -> Benchmark {
    let mut rng = SmallRng::seed_from_u64(seed);
    let num_entities = ((PAPER_ENTITIES as f64) * scale.factor()).max(30.0) as usize;

    let spec = DomainSpec {
        name: "camera",
        schema: Schema::new(vec!["title", "brand", "model", "resolution", "price"]),
        kinds: vec![
            AttributeKind::Text,
            AttributeKind::Text,
            AttributeKind::Code,
            AttributeKind::Numeric,
            AttributeKind::Numeric,
        ],
        extra_tokens: EXTRA_TOKENS,
    };

    // Cameras come in *model families*: the same brand releases EOS-7500,
    // EOS-7510, EOS-7500 Mark II … with near-identical titles and prices.
    // Dexter's published difficulty comes exactly from such "minor textual
    // differences that can lead to non-matches" (paper §5.3), so blocked
    // non-match candidates must include family siblings.
    let mut entities: Vec<Entity> = Vec::with_capacity(num_entities);
    while entities.len() < num_entities {
        let brand = pick(CAMERA_BRANDS, &mut rng);
        let base_model = model_number(&mut rng);
        let adjective = pick(PRODUCT_ADJECTIVES, &mut rng);
        let noun = pick(CAMERA_NOUNS, &mut rng);
        let base_resolution = rng.gen_range(8..56usize);
        let base_price = rng.gen_range(79..3800usize);
        let family_size = rng.gen_range(1..=4usize);
        for variant in 0..family_size {
            if entities.len() >= num_entities {
                break;
            }
            let model = if variant == 0 {
                base_model.clone()
            } else {
                // sibling: tweak a digit or append a mark suffix
                match variant % 3 {
                    1 => format!("{base_model}{}", variant),
                    2 => format!("{base_model} II"),
                    _ => {
                        let mut m = base_model.clone();
                        m.pop();
                        format!("{m}{}", rng.gen_range(0..10))
                    }
                }
            };
            let resolution = format!("{} MP", base_resolution + variant * 2);
            let price = format!("{}.99", base_price + variant * rng.gen_range(20..120usize));
            entities.push(Entity {
                values: vec![
                    format!("{brand} {model} {adjective} {noun}"),
                    brand.to_owned(),
                    model,
                    resolution,
                    price,
                ],
            });
        }
    }

    // Dexter sources are dirty: intra-source duplicates exist.
    let plans = standard_plans(CAMERA_SOURCES, 0.35, 0.65, 0.18, &mut rng);
    let sources = super::materialize_sources(&entities, &plans, &spec, &mut rng);
    let dataset = MultiSourceDataset::assemble("camera", spec.schema.clone(), sources);

    let scheme = ComparisonScheme::new()
        .with(AttributeComparator::new(0, "title", SimilarityFunction::JaccardTokens))
        .with(AttributeComparator::new(1, "brand", SimilarityFunction::JaroWinkler))
        .with(AttributeComparator::new(2, "model", SimilarityFunction::Levenshtein))
        .with(AttributeComparator::new(3, "resolution", SimilarityFunction::NumericDiff))
        .with(AttributeComparator::new(4, "price", SimilarityFunction::NumericDiff));

    build_benchmark(
        "dexter",
        dataset,
        scheme,
        &TokenBlockingConfig { attribute: 0, max_block_size: 96 },
        2.0, // ~33% match rate as published
        true,
        SplitMode::Problems { ratio_init },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camera_has_276_problem_slots() {
        let b = camera(DatasetScale::Tiny, 0.5, 7);
        // 23 self + 253 cross = 276 source pairs; tiny scale may drop empty
        // problems, so require a sane lower bound and the exact cap.
        assert!(b.problems.len() <= 276);
        assert!(b.problems.len() > 200, "got {}", b.problems.len());
        assert_eq!(b.dataset.num_sources(), CAMERA_SOURCES);
    }

    #[test]
    fn camera_contains_self_problems_with_matches() {
        let b = camera(DatasetScale::Tiny, 0.5, 7);
        let self_problems: Vec<_> =
            b.problems.iter().filter(|p| p.sources.0 == p.sources.1).collect();
        assert!(!self_problems.is_empty());
        assert!(self_problems.iter().any(|p| p.num_matches() > 0));
    }

    #[test]
    fn camera_match_rate_near_published_third() {
        let b = camera(DatasetScale::Tiny, 0.5, 7);
        let s = b.stats();
        let rate = s.num_matches as f64 / s.num_pairs as f64;
        assert!((0.2..=0.5).contains(&rate), "match rate {rate}");
    }

    #[test]
    fn camera_split_respects_ratio() {
        let b = camera(DatasetScale::Tiny, 0.5, 7);
        let diff = (b.initial.len() as i64 - b.unsolved.len() as i64).abs();
        assert!(diff <= 1);
        let b30 = camera(DatasetScale::Tiny, 0.3, 7);
        assert!(b30.initial.len() < b30.unsolved.len());
    }

    #[test]
    fn camera_deterministic() {
        let a = camera(DatasetScale::Tiny, 0.5, 9);
        let b = camera(DatasetScale::Tiny, 0.5, 9);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.initial, b.initial);
    }

    #[test]
    fn camera_features_in_unit_interval() {
        let b = camera(DatasetScale::Tiny, 0.5, 7);
        let p = &b.problems[0];
        for f in 0..p.num_features() {
            for v in p.feature_column(f) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        assert_eq!(p.feature_names.len(), 5);
    }
}
