//! Records, schemas, data sources and multi-source datasets.

use serde::{Deserialize, Serialize};

/// An attribute schema shared by the sources of one dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<String>,
}

impl Schema {
    /// Create a schema from attribute names.
    pub fn new<S: Into<String>>(attributes: Vec<S>) -> Self {
        Self { attributes: attributes.into_iter().map(Into::into).collect() }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Attribute names in order.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Index of an attribute by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == name)
    }
}

/// One record (a *mention* of an entity in a source).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Globally unique id within the dataset (dense, assigned at build time).
    pub uid: u32,
    /// Source this record belongs to.
    pub source: usize,
    /// Ground-truth entity id (two records match iff their entity ids agree).
    pub entity: u64,
    /// Attribute values aligned with the dataset schema; `None` = missing.
    pub values: Vec<Option<String>>,
}

impl Record {
    /// Attribute value by index.
    pub fn value(&self, attribute: usize) -> Option<&str> {
        self.values.get(attribute).and_then(|v| v.as_deref())
    }

    /// Number of present (non-missing) attribute values.
    pub fn present_values(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }
}

/// One data source: a named collection of records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataSource {
    /// Dense source id within the dataset.
    pub id: usize,
    /// Human-readable name.
    pub name: String,
    /// Records of this source.
    pub records: Vec<Record>,
}

impl DataSource {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the source has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether the source contains more than one mention of some entity.
    pub fn has_intra_duplicates(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.records.len());
        self.records.iter().any(|r| !seen.insert(r.entity))
    }
}

/// A multi-source dataset: shared schema, several sources, global record uid
/// space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSourceDataset {
    /// Dataset name (e.g. "camera").
    pub name: String,
    /// Shared attribute schema.
    pub schema: Schema,
    /// The data sources.
    pub sources: Vec<DataSource>,
    /// Record lookup by uid: `(source, index within source)`.
    uid_index: Vec<(usize, usize)>,
}

impl MultiSourceDataset {
    /// Assemble a dataset, assigning dense global uids in source order.
    ///
    /// Any uids already present on the records are overwritten.
    pub fn assemble(name: impl Into<String>, schema: Schema, mut sources: Vec<DataSource>) -> Self {
        let mut uid_index = Vec::new();
        let mut uid = 0u32;
        for (sid, src) in sources.iter_mut().enumerate() {
            src.id = sid;
            for (ridx, rec) in src.records.iter_mut().enumerate() {
                rec.uid = uid;
                rec.source = sid;
                uid_index.push((sid, ridx));
                uid += 1;
            }
        }
        Self { name: name.into(), schema, sources, uid_index }
    }

    /// Total number of records across sources.
    pub fn num_records(&self) -> usize {
        self.uid_index.len()
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Record by global uid.
    pub fn record(&self, uid: u32) -> &Record {
        let (sid, ridx) = self.uid_index[uid as usize];
        &self.sources[sid].records[ridx]
    }

    /// Whether two records refer to the same entity (ground truth).
    pub fn is_match(&self, a: u32, b: u32) -> bool {
        self.record(a).entity == self.record(b).entity
    }

    /// Number of distinct entities mentioned.
    pub fn num_entities(&self) -> usize {
        let mut set = std::collections::HashSet::new();
        for src in &self.sources {
            for r in &src.records {
                set.insert(r.entity);
            }
        }
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(entity: u64, title: &str) -> Record {
        Record { uid: 0, source: 0, entity, values: vec![Some(title.to_owned()), None] }
    }

    fn dataset() -> MultiSourceDataset {
        let schema = Schema::new(vec!["title", "price"]);
        let s0 = DataSource { id: 0, name: "a".into(), records: vec![record(1, "x"), record(2, "y")] };
        let s1 = DataSource { id: 0, name: "b".into(), records: vec![record(1, "x2")] };
        MultiSourceDataset::assemble("test", schema, vec![s0, s1])
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new(vec!["title", "brand"]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("brand"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn assemble_assigns_dense_uids() {
        let d = dataset();
        assert_eq!(d.num_records(), 3);
        assert_eq!(d.record(0).entity, 1);
        assert_eq!(d.record(2).entity, 1);
        assert_eq!(d.record(2).source, 1);
        assert_eq!(d.sources[1].id, 1);
    }

    #[test]
    fn ground_truth_matching() {
        let d = dataset();
        assert!(d.is_match(0, 2));
        assert!(!d.is_match(0, 1));
        assert_eq!(d.num_entities(), 2);
    }

    #[test]
    fn record_value_access() {
        let d = dataset();
        assert_eq!(d.record(0).value(0), Some("x"));
        assert_eq!(d.record(0).value(1), None);
        assert_eq!(d.record(0).present_values(), 1);
    }

    #[test]
    fn intra_duplicate_detection() {
        let schema = Schema::new(vec!["title"]);
        let dup = DataSource {
            id: 0,
            name: "dup".into(),
            records: vec![record(5, "a"), record(5, "a2")],
        };
        assert!(dup.has_intra_duplicates());
        let clean = DataSource { id: 0, name: "c".into(), records: vec![record(1, "a")] };
        assert!(!clean.has_intra_duplicates());
        let _ = MultiSourceDataset::assemble("x", schema, vec![]);
    }
}
