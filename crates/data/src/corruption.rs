//! Value-corruption framework for generating heterogeneous data sources.
//!
//! The paper's MusicBrainz benchmark was produced by corrupting clean records
//! along axes such as "the number of missing values, the length of values,
//! and the ratio of errors" (§5.1, citing the DAPO corruptor [15]). This
//! module reimplements those corruption operators; a [`SourceProfile`]
//! bundles per-source rates so that different sources exhibit genuinely
//! different similarity distributions — the property MoRER's distribution
//! analysis exploits.

use rand::rngs::SmallRng;
use rand::Rng;

/// Per-source corruption profile: probabilities of each operator being
/// applied to an attribute value.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceProfile {
    /// Human-readable profile name.
    pub name: &'static str,
    /// Probability of a character-level typo per value.
    pub typo_rate: f64,
    /// Probability the value is dropped entirely (missing).
    pub missing_rate: f64,
    /// Probability word tokens are abbreviated (first letter + '.').
    pub abbreviation_rate: f64,
    /// Probability two adjacent tokens are swapped.
    pub token_swap_rate: f64,
    /// Probability a token is dropped from multi-token values.
    pub token_drop_rate: f64,
    /// Probability the case style is mangled (UPPER or lower).
    pub case_noise_rate: f64,
    /// Relative magnitude of numeric perturbation (0.05 = ±5%).
    pub numeric_noise: f64,
    /// Probability an extra descriptive token is appended.
    pub token_add_rate: f64,
}

impl SourceProfile {
    /// Near-perfect source.
    pub fn clean() -> Self {
        Self {
            name: "clean",
            typo_rate: 0.02,
            missing_rate: 0.02,
            abbreviation_rate: 0.0,
            token_swap_rate: 0.03,
            token_drop_rate: 0.02,
            case_noise_rate: 0.05,
            numeric_noise: 0.0,
            token_add_rate: 0.05,
        }
    }

    /// Heavy character-level noise (OCR-ish feeds).
    pub fn noisy() -> Self {
        Self {
            name: "noisy",
            typo_rate: 0.35,
            missing_rate: 0.08,
            abbreviation_rate: 0.05,
            token_swap_rate: 0.15,
            token_drop_rate: 0.10,
            case_noise_rate: 0.25,
            numeric_noise: 0.08,
            token_add_rate: 0.15,
        }
    }

    /// Aggressive abbreviations and truncation (catalog exports).
    pub fn abbreviated() -> Self {
        Self {
            name: "abbreviated",
            typo_rate: 0.05,
            missing_rate: 0.05,
            abbreviation_rate: 0.45,
            token_swap_rate: 0.05,
            token_drop_rate: 0.30,
            case_noise_rate: 0.10,
            numeric_noise: 0.02,
            token_add_rate: 0.02,
        }
    }

    /// Many missing values (sparse web extractions).
    pub fn sparse() -> Self {
        Self {
            name: "sparse",
            typo_rate: 0.10,
            missing_rate: 0.35,
            abbreviation_rate: 0.10,
            token_swap_rate: 0.08,
            token_drop_rate: 0.25,
            case_noise_rate: 0.10,
            numeric_noise: 0.05,
            token_add_rate: 0.05,
        }
    }

    /// The standard four-profile cycle assigned to sources round-robin.
    pub fn standard_profiles() -> Vec<Self> {
        vec![Self::clean(), Self::noisy(), Self::abbreviated(), Self::sparse()]
    }
}

/// Apply one random character-level typo (insert / delete / substitute /
/// transpose) to an ASCII-ish string.
pub fn char_typo(s: &str, rng: &mut SmallRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return s.to_owned();
    }
    let pos = rng.gen_range(0..chars.len());
    let mut out = chars.clone();
    match rng.gen_range(0..4u8) {
        0 => {
            // substitute with a nearby lowercase letter
            out[pos] = (b'a' + rng.gen_range(0..26u8)) as char;
        }
        1 => {
            // delete
            out.remove(pos);
        }
        2 => {
            // insert
            out.insert(pos, (b'a' + rng.gen_range(0..26u8)) as char);
        }
        _ => {
            // transpose with the next character
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1);
            } else if out.len() >= 2 {
                let l = out.len();
                out.swap(l - 2, l - 1);
            }
        }
    }
    out.into_iter().collect()
}

/// Abbreviate word tokens longer than 3 characters to `X.` with the given
/// probability per token.
pub fn abbreviate(s: &str, per_token_prob: f64, rng: &mut SmallRng) -> String {
    s.split_whitespace()
        .map(|tok| {
            if tok.chars().count() > 3 && rng.gen_bool(per_token_prob.clamp(0.0, 1.0)) {
                let first = tok.chars().next().expect("non-empty token");
                format!("{first}.")
            } else {
                tok.to_owned()
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Swap two adjacent tokens (no-op for single-token values).
pub fn swap_tokens(s: &str, rng: &mut SmallRng) -> String {
    let mut toks: Vec<&str> = s.split_whitespace().collect();
    if toks.len() >= 2 {
        let i = rng.gen_range(0..toks.len() - 1);
        toks.swap(i, i + 1);
    }
    toks.join(" ")
}

/// Drop one token (no-op for single-token values).
pub fn drop_token(s: &str, rng: &mut SmallRng) -> String {
    let mut toks: Vec<&str> = s.split_whitespace().collect();
    if toks.len() >= 2 {
        let i = rng.gen_range(0..toks.len());
        toks.remove(i);
    }
    toks.join(" ")
}

/// Uppercase or lowercase the whole value.
pub fn mangle_case(s: &str, rng: &mut SmallRng) -> String {
    if rng.gen_bool(0.5) {
        s.to_uppercase()
    } else {
        s.to_lowercase()
    }
}

/// Perturb a numeric string by a relative amount, keeping two decimals.
pub fn perturb_numeric(s: &str, relative: f64, rng: &mut SmallRng) -> String {
    match morer_sim::numeric::parse_numeric(s) {
        Some(v) if relative > 0.0 => {
            let factor = 1.0 + rng.gen_range(-relative..=relative);
            format!("{:.2}", v * factor)
        }
        _ => s.to_owned(),
    }
}

/// Kind of attribute, controlling which corruption operators apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttributeKind {
    /// Free text (title, artist, album …): all text operators apply.
    Text,
    /// Code-like identifiers (model numbers): typos only, no token ops.
    Code,
    /// Numeric values (price, year, length): numeric noise only.
    Numeric,
}

/// Corrupt one attribute value according to a source profile. Returns `None`
/// when the value is dropped as missing.
pub fn corrupt_value(
    value: &str,
    kind: AttributeKind,
    profile: &SourceProfile,
    extra_tokens: &[&str],
    rng: &mut SmallRng,
) -> Option<String> {
    if rng.gen_bool(profile.missing_rate.clamp(0.0, 1.0)) {
        return None;
    }
    let mut v = value.to_owned();
    match kind {
        AttributeKind::Text => {
            if rng.gen_bool(profile.token_add_rate.clamp(0.0, 1.0)) && !extra_tokens.is_empty() {
                let extra = extra_tokens[rng.gen_range(0..extra_tokens.len())];
                v = format!("{v} {extra}");
            }
            if rng.gen_bool(profile.abbreviation_rate.clamp(0.0, 1.0)) {
                v = abbreviate(&v, 0.5, rng);
            }
            if rng.gen_bool(profile.token_swap_rate.clamp(0.0, 1.0)) {
                v = swap_tokens(&v, rng);
            }
            if rng.gen_bool(profile.token_drop_rate.clamp(0.0, 1.0)) {
                v = drop_token(&v, rng);
            }
            if rng.gen_bool(profile.typo_rate.clamp(0.0, 1.0)) {
                v = char_typo(&v, rng);
            }
            if rng.gen_bool(profile.case_noise_rate.clamp(0.0, 1.0)) {
                v = mangle_case(&v, rng);
            }
        }
        AttributeKind::Code => {
            if rng.gen_bool(profile.typo_rate.clamp(0.0, 1.0)) {
                v = char_typo(&v, rng);
            }
            if rng.gen_bool(profile.case_noise_rate.clamp(0.0, 1.0)) {
                v = mangle_case(&v, rng);
            }
        }
        AttributeKind::Numeric => {
            v = perturb_numeric(&v, profile.numeric_noise, rng);
        }
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn char_typo_changes_string() {
        let mut r = rng();
        let mut changed = 0;
        for _ in 0..50 {
            if char_typo("samsung", &mut r) != "samsung" {
                changed += 1;
            }
        }
        // transpose at the same position can be a no-op occasionally, but
        // most applications must alter the value
        assert!(changed > 40);
        assert_eq!(char_typo("", &mut r), "");
    }

    #[test]
    fn abbreviate_shortens_long_tokens() {
        let mut r = rng();
        let out = abbreviate("professional wireless speaker", 1.0, &mut r);
        assert_eq!(out, "p. w. s.");
        // tokens of three or fewer characters are kept
        assert_eq!(abbreviate("a bc def gulp", 1.0, &mut r), "a bc def g.");
    }

    #[test]
    fn swap_and_drop_tokens() {
        let mut r = rng();
        let swapped = swap_tokens("alpha beta", &mut r);
        assert_eq!(swapped, "beta alpha");
        assert_eq!(swap_tokens("single", &mut r), "single");
        let dropped = drop_token("alpha beta", &mut r);
        assert!(dropped == "alpha" || dropped == "beta");
        assert_eq!(drop_token("single", &mut r), "single");
    }

    #[test]
    fn numeric_perturbation_stays_close() {
        let mut r = rng();
        let out = perturb_numeric("100.00", 0.05, &mut r);
        let v: f64 = out.parse().unwrap();
        assert!((95.0..=105.0).contains(&v), "{v}");
        assert_eq!(perturb_numeric("n/a", 0.05, &mut r), "n/a");
        assert_eq!(perturb_numeric("100", 0.0, &mut r), "100");
    }

    #[test]
    fn corrupt_value_respects_missing_rate() {
        let mut r = rng();
        let mut profile = SourceProfile::clean();
        profile.missing_rate = 1.0;
        assert_eq!(corrupt_value("x", AttributeKind::Text, &profile, &[], &mut r), None);
        profile.missing_rate = 0.0;
        assert!(corrupt_value("x", AttributeKind::Text, &profile, &[], &mut r).is_some());
    }

    #[test]
    fn clean_profile_rarely_corrupts() {
        let mut r = rng();
        let profile = SourceProfile::clean();
        let unchanged = (0..200)
            .filter(|_| {
                corrupt_value("ultra hd smart tv", AttributeKind::Text, &profile, &["black"], &mut r)
                    .as_deref()
                    == Some("ultra hd smart tv")
            })
            .count();
        assert!(unchanged > 140, "unchanged = {unchanged}/200");
    }

    #[test]
    fn noisy_profile_corrupts_most_values() {
        let mut r = rng();
        let profile = SourceProfile::noisy();
        let unchanged = (0..200)
            .filter(|_| {
                corrupt_value("ultra hd smart tv", AttributeKind::Text, &profile, &["black"], &mut r)
                    .as_deref()
                    == Some("ultra hd smart tv")
            })
            .count();
        assert!(unchanged < 100, "unchanged = {unchanged}/200");
    }

    #[test]
    fn code_kind_avoids_token_operations() {
        let mut r = rng();
        let mut profile = SourceProfile::clean();
        profile.token_drop_rate = 1.0;
        profile.token_swap_rate = 1.0;
        profile.typo_rate = 0.0;
        profile.case_noise_rate = 0.0;
        profile.missing_rate = 0.0;
        let out = corrupt_value("EOS 750D", AttributeKind::Code, &profile, &[], &mut r);
        assert_eq!(out.as_deref(), Some("EOS 750D"));
    }

    #[test]
    fn profiles_have_distinct_names() {
        let names: std::collections::HashSet<&str> =
            SourceProfile::standard_profiles().iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 4);
    }
}
