//! Property-based tests of the data substrate: generated benchmarks obey the
//! invariants the pipeline assumes.

use proptest::prelude::*;

use morer_data::blocking::{token_blocking, token_blocking_within, TokenBlockingConfig};
use morer_data::csvio::{read_problem, write_problem};
use morer_data::record::Record;
use morer_data::{camera, computer, music, DatasetScale, ErProblem};
use morer_ml::dataset::FeatureMatrix;

fn check_benchmark_invariants(bench: &morer_data::Benchmark) {
    // initial/unsolved partition the problem ids
    let mut ids: Vec<usize> = bench.initial.iter().chain(&bench.unsolved).copied().collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..bench.problems.len()).collect::<Vec<_>>());
    for (i, p) in bench.problems.iter().enumerate() {
        assert_eq!(p.id, i);
        assert_eq!(p.pairs.len(), p.labels.len());
        assert_eq!(p.features.rows(), p.pairs.len());
        assert_eq!(p.features.cols(), p.feature_names.len());
        for f in 0..p.num_features() {
            for v in p.feature_column(f) {
                assert!((0.0..=1.0).contains(&v), "feature out of range: {v}");
            }
        }
        // labels agree with ground-truth entities
        for (i, &(a, b)) in p.pairs.iter().enumerate() {
            assert_eq!(p.labels[i], bench.dataset.is_match(a, b));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn generated_benchmarks_satisfy_invariants(seed in 0u64..1000) {
        check_benchmark_invariants(&computer(DatasetScale::Tiny, seed));
        check_benchmark_invariants(&music(DatasetScale::Tiny, seed));
    }

    #[test]
    fn camera_benchmark_satisfies_invariants(seed in 0u64..1000, ratio in 0.2f64..0.8) {
        let bench = camera(DatasetScale::Tiny, ratio, seed);
        check_benchmark_invariants(&bench);
        // self problems allowed only for camera (intra-source duplicates)
        for p in &bench.problems {
            prop_assert!(p.sources.0 <= p.sources.1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn blocking_pairs_reference_existing_uids(
        titles_a in proptest::collection::vec("[a-z]{2,6}( [a-z]{2,6}){0,2}", 1..20),
        titles_b in proptest::collection::vec("[a-z]{2,6}( [a-z]{2,6}){0,2}", 1..20),
    ) {
        let mk = |offset: u32, titles: &[String]| -> Vec<Record> {
            titles
                .iter()
                .enumerate()
                .map(|(i, t)| Record {
                    uid: offset + i as u32,
                    source: 0,
                    entity: u64::from(offset) + i as u64,
                    values: vec![Some(t.clone())],
                })
                .collect()
        };
        let a = mk(0, &titles_a);
        let b = mk(1000, &titles_b);
        let cfg = TokenBlockingConfig::default();
        let pairs = token_blocking(&a, &b, &cfg);
        for &(ua, ub) in &pairs {
            prop_assert!(ua < titles_a.len() as u32);
            prop_assert!(ub >= 1000 && ub < 1000 + titles_b.len() as u32);
        }
        // sorted and unique
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted, pairs);

        let within = token_blocking_within(&a, &cfg);
        for &(x, y) in &within {
            prop_assert!(x < y);
        }
    }

    #[test]
    fn csv_round_trip_arbitrary_problems(
        rows in proptest::collection::vec(
            (0u32..500, 500u32..1000, proptest::collection::vec(0.0f64..=1.0, 3..=3), any::<bool>()),
            1..40,
        )
    ) {
        let mut features = FeatureMatrix::new(3);
        let mut pairs = Vec::new();
        let mut labels = Vec::new();
        for (a, b, f, l) in &rows {
            features.push_row(f);
            pairs.push((*a, *b));
            labels.push(*l);
        }
        let problem = ErProblem {
            id: 7,
            sources: (1, 2),
            pairs,
            features,
            labels,
            feature_names: vec!["f0".into(), "f1".into(), "f2".into()],
        };
        let mut buf = Vec::new();
        write_problem(&problem, &mut buf).unwrap();
        let loaded = read_problem(std::io::BufReader::new(&buf[..]), 7, (1, 2)).unwrap();
        prop_assert_eq!(loaded, problem);
    }

    /// The profiled parallel `ErProblem::build` must produce bit-identical
    /// feature matrices (and identical labels/pairs) to the per-pair string
    /// reference path `build_cold`, across record contents including missing
    /// values, unicode and numerics.
    #[test]
    fn problem_build_fast_path_matches_cold_path(
        titles_a in proptest::collection::vec("[a-z]{2,6}( [a-z]{2,6}){0,2}", 2..12),
        titles_b in proptest::collection::vec("[a-z]{2,6}( [a-z]{2,6}){0,2}", 2..12),
        missing_every in 2usize..5,
    ) {
        use morer_data::record::{DataSource, MultiSourceDataset, Schema};
        use morer_sim::{AttributeComparator, ComparisonScheme, SimilarityFunction};

        let mk = |titles: &[String]| -> Vec<Record> {
            titles
                .iter()
                .enumerate()
                .map(|(i, t)| Record {
                    uid: 0,
                    source: 0,
                    entity: i as u64,
                    values: vec![
                        if i % missing_every == 0 { None } else { Some(t.clone()) },
                        Some(format!("{}.99", 100 + i)),
                    ],
                })
                .collect()
        };
        let s0 = DataSource { id: 0, name: "a".into(), records: mk(&titles_a) };
        let s1 = DataSource { id: 1, name: "b".into(), records: mk(&titles_b) };
        let ds = MultiSourceDataset::assemble("prop", Schema::new(vec!["title", "price"]), vec![s0, s1]);
        let scheme = ComparisonScheme::new()
            .with(AttributeComparator::new(0, "title", SimilarityFunction::JaccardTokens))
            .with(AttributeComparator::new(0, "title", SimilarityFunction::Levenshtein))
            .with(AttributeComparator::new(0, "title", SimilarityFunction::MongeElkan))
            .with(AttributeComparator::new(0, "title", SimilarityFunction::JaccardQgrams(2)))
            .with(AttributeComparator::new(1, "price", SimilarityFunction::NumericDiff));
        // all cross pairs
        let na = titles_a.len() as u32;
        let nb = titles_b.len() as u32;
        let pairs: Vec<(u32, u32)> =
            (0..na).flat_map(|a| (na..na + nb).map(move |b| (a, b))).collect();
        let fast = ErProblem::build(0, &ds, &scheme, (0, 1), pairs.clone());
        let cold = ErProblem::build_cold(0, &ds, &scheme, (0, 1), pairs);
        prop_assert_eq!(&fast.pairs, &cold.pairs);
        prop_assert_eq!(&fast.labels, &cold.labels);
        prop_assert_eq!(fast.features.rows(), cold.features.rows());
        for r in 0..fast.features.rows() {
            for c in 0..fast.features.cols() {
                prop_assert_eq!(
                    fast.features.get(r, c).to_bits(),
                    cold.features.get(r, c).to_bits(),
                    "row {} col {} diverged", r, c
                );
            }
        }
    }
}
