//! Failure-injection tests: degenerate, adversarial and malformed inputs
//! must produce defined behaviour (graceful results or clear panics), never
//! NaN poisoning or silent corruption.

use morer::core::prelude::*;
use morer::data::ErProblem;
use morer::ml::dataset::FeatureMatrix;
use morer::ml::model::Classifier;

fn problem_from(rows: Vec<Vec<f64>>, labels: Vec<bool>, id: usize) -> ErProblem {
    let mut features = FeatureMatrix::new(rows.first().map_or(0, Vec::len));
    let mut pairs = Vec::new();
    for (i, r) in rows.iter().enumerate() {
        features.push_row(r);
        pairs.push(((id * 1000 + i) as u32, (id * 1000 + i + 500_000) as u32));
    }
    ErProblem {
        id,
        sources: (id, id + 1),
        pairs,
        features,
        labels,
        feature_names: (0..rows.first().map_or(0, Vec::len)).map(|i| format!("f{i}")).collect(),
    }
}

fn healthy_problem(id: usize) -> ErProblem {
    let rows: Vec<Vec<f64>> = (0..80)
        .map(|i| {
            let v = if i % 4 == 0 { 0.85 } else { 0.15 } + (i % 9) as f64 / 100.0;
            vec![v.min(1.0), (v * 0.9).min(1.0)]
        })
        .collect();
    let labels: Vec<bool> = (0..80).map(|i| i % 4 == 0).collect();
    problem_from(rows, labels, id)
}

#[test]
fn build_with_single_problem_still_works() {
    let p = healthy_problem(0);
    let config = MorerConfig { budget: 40, budget_min: 10, ..MorerConfig::default() };
    let (mut morer, report) = Morer::build(vec![&p], &config);
    assert_eq!(report.num_clusters, 1);
    let outcome = morer.solve(&healthy_problem(1));
    assert_eq!(outcome.predictions.len(), 80);
}

#[test]
fn build_with_zero_budget_yields_default_negative_models() {
    let p = healthy_problem(0);
    let config = MorerConfig { budget: 0, budget_min: 0, ..MorerConfig::default() };
    let (mut morer, report) = Morer::build(vec![&p], &config);
    assert_eq!(report.labels_used, 0);
    // no training data -> conservative all-non-match predictions
    let outcome = morer.solve(&healthy_problem(1));
    assert!(outcome.predictions.iter().all(|&x| !x));
}

#[test]
fn constant_feature_problems_do_not_poison_analysis() {
    // every feature identical in every row: stddev weights are all zero
    let rows = vec![vec![0.5, 0.5]; 60];
    let labels: Vec<bool> = (0..60).map(|i| i % 2 == 0).collect();
    let constant = problem_from(rows, labels, 0);
    let other = healthy_problem(1);
    let config = MorerConfig { budget: 60, budget_min: 10, ..MorerConfig::default() };
    let (mut morer, _) = Morer::build(vec![&constant, &other], &config);
    let outcome = morer.solve(&healthy_problem(2));
    assert!(outcome.probabilities.iter().all(|p| p.is_finite()));
    assert!(outcome.similarity.is_finite());
}

#[test]
fn single_class_problem_trains_finite_model() {
    // all matches — AL will only ever reveal positives
    let rows = vec![vec![0.9, 0.9]; 40];
    let labels = vec![true; 40];
    let all_pos = problem_from(rows, labels, 0);
    let config = MorerConfig { budget: 20, budget_min: 5, ..MorerConfig::default() };
    let (morer, _) = Morer::build(vec![&all_pos], &config);
    let repo = morer.repository();
    let p = repo.entries[0].model.predict_proba(&[0.9, 0.9]);
    assert!(p.is_finite());
    assert!(repo.entries[0].model.predict(&[0.9, 0.9]));
}

#[test]
fn tiny_two_pair_problems_survive_the_pipeline() {
    let tiny = problem_from(vec![vec![0.9, 0.8], vec![0.1, 0.2]], vec![true, false], 0);
    let config = MorerConfig { budget: 2, budget_min: 1, ..MorerConfig::default() };
    let (mut morer, report) = Morer::build(vec![&tiny], &config);
    assert!(report.labels_used <= 2);
    let outcome = morer.solve(&tiny.clone());
    assert_eq!(outcome.predictions.len(), 2);
}

#[test]
#[should_panic(expected = "feature spaces must agree")]
fn mismatched_feature_spaces_panic_loudly() {
    let two_features = healthy_problem(0);
    let three_features = problem_from(
        (0..30).map(|i| vec![0.5, 0.5, i as f64 / 30.0]).collect(),
        (0..30).map(|i| i % 2 == 0).collect(),
        1,
    );
    let config = MorerConfig { budget: 20, ..MorerConfig::default() };
    let _ = Morer::build(vec![&two_features, &three_features], &config);
}

#[test]
fn corrupted_repository_json_is_rejected() {
    for garbage in [&b""[..], &b"{}"[..], &b"{\"entries\": 3}"[..], &b"[1,2,3"[..]] {
        let err = ModelRepository::load_json(garbage);
        assert!(
            matches!(err, Err(MorerError::Parse(_))),
            "accepted {:?} as {err:?}",
            String::from_utf8_lossy(garbage)
        );
    }
}

#[test]
fn future_repository_version_fails_typed_not_parse() {
    let future = format!("{{\"version\":{},\"entries\":[]}}", REPOSITORY_FORMAT_VERSION + 1);
    match ModelRepository::load_json(future.as_bytes()) {
        Err(MorerError::UnsupportedVersion { found }) => {
            assert_eq!(found, REPOSITORY_FORMAT_VERSION + 1)
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    // the error converts into io::Error for `?`-style callers
    let io: std::io::Error =
        ModelRepository::load_json(future.as_bytes()).unwrap_err().into();
    assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn searching_an_empty_repository_is_a_typed_error() {
    let searcher =
        ModelSearcher::from_repository(ModelRepository::default(), &MorerConfig::default());
    let err = searcher.search(&healthy_problem(0)).unwrap_err();
    assert!(matches!(err, MorerError::EmptyRepository));
    // solve degrades gracefully instead: no entry, all-non-match
    let outcome = searcher.solve(&healthy_problem(0));
    assert_eq!(outcome.entry, None);
    assert!(outcome.predictions.iter().all(|&x| !x));
}

#[test]
fn coverage_mode_from_empty_repository_bootstraps_itself() {
    let config = MorerConfig {
        budget: 60,
        budget_min: 10,
        selection: SelectionStrategy::Coverage { t_cov: 0.25 },
        ..MorerConfig::default()
    };
    let mut morer = Morer::from_repository(ModelRepository::default(), &config);
    // the very first problem has no repository to match: a fresh model must
    // be trained for its singleton cluster
    let outcome = morer.solve(&healthy_problem(0));
    assert!(outcome.new_model);
    assert!(outcome.labels_spent > 0);
    assert_eq!(morer.num_models(), 1);
    // the second, similar problem reuses it
    let outcome2 = morer.solve(&healthy_problem(1));
    assert!(!outcome2.new_model);
}

#[test]
fn extreme_budget_larger_than_all_data_is_capped() {
    let p0 = healthy_problem(0);
    let p1 = healthy_problem(1);
    let config = MorerConfig { budget: 1_000_000, ..MorerConfig::default() };
    let (morer, report) = Morer::build(vec![&p0, &p1], &config);
    assert!(report.labels_used <= 160, "spent {}", report.labels_used);
    assert!(morer.labels_used() <= 160);
}

#[test]
fn adversarial_label_noise_degrades_gracefully() {
    // 30% flipped labels: quality drops but stays finite and above chance
    let mut noisy = healthy_problem(0);
    for i in 0..noisy.labels.len() {
        if i % 3 == 0 {
            noisy.labels[i] = !noisy.labels[i];
        }
    }
    let clean = healthy_problem(1);
    let config = MorerConfig { budget: 80, budget_min: 20, ..MorerConfig::default() };
    let (mut morer, _) = Morer::build(vec![&noisy], &config);
    let (counts, _) = morer.solve_and_score(&[&clean]);
    assert!(counts.f1().is_finite());
    assert!(counts.total() == 80);
}

// ---- write-ahead-log corruption (PR 6) -------------------------------------
//
// Every corruption below must either recover to the last valid epoch or
// fail with a typed error — never panic, never silently replay bad bytes.

use std::path::{Path, PathBuf};

use morer::core::wal::{content_hash, LOG_FILE};

fn wal_config() -> MorerConfig {
    MorerConfig { budget: 60, budget_min: 10, ..MorerConfig::default() }
}

fn wal_scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("morer_fi_wal_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two durable commits; returns the frame boundary after the first commit
/// and the canonical repository bytes at each epoch.
fn two_commits(dir: &Path) -> (u64, Vec<Vec<u8>>) {
    let options = WalOptions { durability: Durability::Fsync, compact_every: 0 };
    let mut morer = Morer::open_with(dir, &wal_config(), options).unwrap();
    let canonical = |m: &Morer| {
        let mut buf = Vec::new();
        m.searcher().repository().save_json(&mut buf).unwrap();
        buf
    };
    let mut repos = vec![canonical(&morer)];
    let p = healthy_problem(0);
    morer.add_problems(&[&p]).unwrap();
    let boundary = morer.durability().unwrap().log_bytes;
    repos.push(canonical(&morer));
    let p = healthy_problem(1);
    morer.add_problems(&[&p]).unwrap();
    repos.push(canonical(&morer));
    (boundary, repos)
}

fn reopen(dir: &Path) -> Morer {
    Morer::open(dir, &wal_config()).unwrap()
}

fn canonical_of(m: &Morer) -> Vec<u8> {
    let mut buf = Vec::new();
    m.searcher().repository().save_json(&mut buf).unwrap();
    buf
}

#[test]
fn zero_length_log_file_recovers_to_the_base_snapshot() {
    let dir = wal_scratch("zero");
    let (_, repos) = two_commits(&dir);
    std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join(LOG_FILE))
        .unwrap()
        .set_len(0)
        .unwrap();
    let mut m = reopen(&dir);
    assert_eq!(m.epoch(), 0);
    assert_eq!(canonical_of(&m), repos[0]);
    // the restarted log accepts new commits immediately
    let p = healthy_problem(5);
    let report = m.add_problems(&[&p]).unwrap();
    assert_eq!(report.epoch, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_log_tail_recovers_to_the_last_valid_epoch() {
    let dir = wal_scratch("tail");
    let (boundary, repos) = two_commits(&dir);
    // cut into the middle of the second record's frame
    std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join(LOG_FILE))
        .unwrap()
        .set_len(boundary + 3)
        .unwrap();
    let m = reopen(&dir);
    assert_eq!(m.epoch(), 1, "the torn second commit must not be replayed");
    assert_eq!(canonical_of(&m), repos[1]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_record_body_is_detected_and_never_replayed() {
    let dir = wal_scratch("flip");
    let (boundary, repos) = two_commits(&dir);
    let log_path = dir.join(LOG_FILE);
    let mut bytes = std::fs::read(&log_path).unwrap();
    // flip one bit in the second record's payload (past its frame header)
    let target = boundary as usize + 20;
    bytes[target] ^= 0x01;
    std::fs::write(&log_path, &bytes).unwrap();
    let m = reopen(&dir);
    assert_eq!(m.epoch(), 1, "the hash check must reject the flipped record");
    assert_eq!(canonical_of(&m), repos[1]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_and_out_of_order_epoch_records_never_corrupt_state() {
    let dir = wal_scratch("dup");
    let (boundary, repos) = two_commits(&dir);
    let log_path = dir.join(LOG_FILE);
    let pristine = std::fs::read(&log_path).unwrap();
    let second_frame = &pristine[boundary as usize..];

    // a duplicated record (epoch 2 again — a compaction-leftover shape) is
    // integrity-checked, then skipped: replaying it would double-apply
    let mut duplicated = pristine.clone();
    duplicated.extend_from_slice(second_frame);
    std::fs::write(&log_path, &duplicated).unwrap();
    let m = reopen(&dir);
    assert_eq!(m.epoch(), 2);
    assert_eq!(canonical_of(&m), repos[2]);

    // an out-of-order record (epoch jumps 2 -> 7) marks a missing commit:
    // replay stops before it and the tail is truncated away
    let payload = &second_frame[12..];
    let jumped =
        String::from_utf8(payload.to_vec()).unwrap().replacen("\"epoch\":2", "\"epoch\":7", 1);
    assert!(jumped.contains("\"epoch\":7"), "fixture must actually change the epoch");
    let mut corrupted = pristine.clone();
    corrupted.extend_from_slice(&(jumped.len() as u32).to_le_bytes());
    corrupted.extend_from_slice(&content_hash(jumped.as_bytes()).to_le_bytes());
    corrupted.extend_from_slice(jumped.as_bytes());
    std::fs::write(&log_path, &corrupted).unwrap();
    let m = reopen(&dir);
    assert_eq!(m.epoch(), 2, "the gap record must not be applied");
    assert_eq!(canonical_of(&m), repos[2]);
    // the truncation is durable: the poisoned tail cannot resurface
    assert_eq!(std::fs::read(&log_path).unwrap(), pristine);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_log_file_is_a_typed_error_and_left_untouched() {
    let dir = wal_scratch("foreign");
    let _ = two_commits(&dir);
    let log_path = dir.join(LOG_FILE);
    let foreign = b"#!/bin/sh\necho this is not a MoRER log\n".to_vec();
    std::fs::write(&log_path, &foreign).unwrap();
    match Morer::open(&dir, &wal_config()) {
        Err(MorerError::LogCorrupt { offset: 0, .. }) => {}
        other => panic!("expected LogCorrupt at offset 0, got {other:?}"),
    }
    // a foreign file is refused, never wiped or "recovered"
    assert_eq!(std::fs::read(&log_path).unwrap(), foreign);
    let _ = std::fs::remove_dir_all(&dir);
}
