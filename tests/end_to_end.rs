//! End-to-end integration tests: generated multi-source benchmarks through
//! the full MoRER pipeline and the compared baselines.

use morer::baselines::transer::TransEr;
use morer::baselines::zeroer::ZeroErSim;
use morer::baselines::{BaselineContext, ErBaseline};
use morer::core::prelude::*;
use morer::data::{camera, computer, music, DatasetScale};

fn ctx<'a>(bench: &'a morer::data::Benchmark, budget: usize) -> BaselineContext<'a> {
    BaselineContext {
        dataset: &bench.dataset,
        initial: bench.initial_problems(),
        unsolved: bench.unsolved_problems(),
        budget,
        train_fraction: 1.0,
        seed: 11,
    }
}

#[test]
fn computer_benchmark_full_pipeline_beats_threshold() {
    let bench = computer(DatasetScale::Tiny, 11);
    let config = MorerConfig { budget: 300, ..MorerConfig::default() };
    let (mut morer, report) = Morer::build(bench.initial_problems(), &config);
    assert!(report.labels_used <= 300);
    assert!(report.num_clusters >= 1);
    let (counts, outcomes) = morer.solve_and_score(&bench.unsolved_problems());
    assert_eq!(outcomes.len(), bench.unsolved.len());
    assert!(counts.f1() > 0.75, "F1 = {}", counts.f1());
}

#[test]
fn music_benchmark_with_almser_training() {
    let bench = music(DatasetScale::Tiny, 11);
    let config = MorerConfig {
        budget: 400,
        training: TrainingMode::ActiveLearning(AlMethod::Almser),
        ..MorerConfig::default()
    };
    let (mut morer, _) = Morer::build(bench.initial_problems(), &config);
    let (counts, _) = morer.solve_and_score(&bench.unsolved_problems());
    assert!(counts.f1() > 0.7, "F1 = {}", counts.f1());
}

#[test]
fn camera_benchmark_clusters_heterogeneous_problems() {
    let bench = camera(DatasetScale::Tiny, 0.5, 11);
    let config = MorerConfig { budget: 800, ..MorerConfig::default() };
    let (mut morer, report) = Morer::build(bench.initial_problems(), &config);
    // 23 heterogeneous sources must not collapse into a single cluster
    assert!(report.num_clusters >= 2, "clusters = {}", report.num_clusters);
    let unsolved = bench.unsolved_problems();
    let (counts, _) = morer.solve_and_score(&unsolved[..unsolved.len().min(30)]);
    assert!(counts.f1() > 0.7, "F1 = {}", counts.f1());
}

#[test]
fn coverage_strategy_spends_extra_labels_only_on_drift() {
    let bench = computer(DatasetScale::Tiny, 11);
    let config = MorerConfig {
        budget: 300,
        selection: SelectionStrategy::Coverage { t_cov: 0.5 },
        ..MorerConfig::default()
    };
    let (mut morer, report) = Morer::build(bench.initial_problems(), &config);
    let initial_labels = report.labels_used;
    let (_, outcomes) = morer.solve_and_score(&bench.unsolved_problems());
    let extra: usize = outcomes.iter().map(|o| o.labels_spent).sum();
    assert_eq!(morer.labels_used(), initial_labels + extra);
    // integration must keep the problem count growing
    assert_eq!(morer.num_problems(), bench.initial.len() + bench.unsolved.len());
}

#[test]
fn every_distribution_test_works_end_to_end() {
    let bench = computer(DatasetScale::Tiny, 11);
    for test in DistributionTest::all() {
        let config = MorerConfig {
            budget: 200,
            distribution_test: test,
            ..MorerConfig::default()
        };
        let (mut morer, _) = Morer::build(bench.initial_problems(), &config);
        let (counts, _) = morer.solve_and_score(&bench.unsolved_problems());
        assert!(counts.f1() > 0.6, "{}: F1 = {}", test.name(), counts.f1());
    }
}

#[test]
fn supervised_morer_beats_budget_morer_with_full_data() {
    let bench = computer(DatasetScale::Tiny, 11);
    let budgeted = MorerConfig { budget: 100, ..MorerConfig::default() };
    let supervised = MorerConfig {
        training: TrainingMode::Supervised { fraction: 1.0 },
        ..MorerConfig::default()
    };
    let (mut m1, _) = Morer::build(bench.initial_problems(), &budgeted);
    let (mut m2, _) = Morer::build(bench.initial_problems(), &supervised);
    let (c1, _) = m1.solve_and_score(&bench.unsolved_problems());
    let (c2, _) = m2.solve_and_score(&bench.unsolved_problems());
    // full supervision should never be much worse than a 100-label budget
    assert!(c2.f1() + 0.05 >= c1.f1(), "sup {} vs budget {}", c2.f1(), c1.f1());
}

#[test]
fn baselines_run_on_generated_benchmarks() {
    let bench = computer(DatasetScale::Tiny, 11);
    let context = ctx(&bench, 150);
    let transer = TransEr::default().run(&context);
    assert!(transer.counts.total() > 0);
    let zeroer = ZeroErSim::default().run(&context);
    assert_eq!(zeroer.labels_used, 0);
    assert!(zeroer.counts.total() > 0);
}

#[test]
fn repository_persistence_round_trip_preserves_predictions() {
    let bench = computer(DatasetScale::Tiny, 11);
    let config = MorerConfig { budget: 300, ..MorerConfig::default() };
    let (mut original, _) = Morer::build(bench.initial_problems(), &config);
    let repo = original.repository();
    let mut buf = Vec::new();
    repo.save_json(&mut buf).unwrap();
    let mut restored = Morer::from_repository(
        ModelRepository::load_json(&buf[..]).unwrap(),
        &config,
    );
    let unsolved = bench.unsolved_problems();
    let (_, orig_outcomes) = original.solve_and_score(&unsolved);
    let (_, rest_outcomes) = restored.solve_and_score(&unsolved);
    for (a, b) in orig_outcomes.iter().zip(&rest_outcomes) {
        assert_eq!(a.predictions, b.predictions);
        assert_eq!(a.entry, b.entry);
    }
}

#[test]
fn shared_searcher_serves_threads_and_batches_identically() {
    let bench = computer(DatasetScale::Tiny, 11);
    let config = MorerConfig { budget: 300, ..MorerConfig::default() };
    let (mut morer, _) = Morer::build(bench.initial_problems(), &config);
    let unsolved = bench.unsolved_problems();

    // sequential writer solves are the reference
    let (_, reference) = morer.solve_and_score(&unsolved);

    // the shared read path: batch fan-out and raw scoped threads must both
    // reproduce the reference bit-for-bit
    let searcher = morer.searcher();
    let batched = searcher.solve_batch(&unsolved);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let searcher = &searcher;
            let unsolved = &unsolved;
            let reference = &reference;
            scope.spawn(move || {
                for (q, expected) in unsolved.iter().zip(reference.iter()) {
                    let got = searcher.solve(q);
                    assert_eq!(got.predictions, expected.predictions);
                    assert_eq!(got.probabilities, expected.probabilities);
                    assert_eq!(got.entry, expected.entry);
                    assert_eq!(got.similarity, expected.similarity);
                }
            });
        }
    });
    for (a, b) in reference.iter().zip(&batched) {
        assert_eq!(a.predictions, b.predictions);
        assert_eq!(a.entry, b.entry);
        assert_eq!(a.similarity, b.similarity);
    }
}

#[test]
fn versioned_persistence_served_through_model_searcher() {
    let bench = computer(DatasetScale::Tiny, 11);
    let config = MorerConfig { budget: 300, ..MorerConfig::default() };
    let (morer, _) = Morer::build(bench.initial_problems(), &config);
    let mut buf = Vec::new();
    morer.repository().save_json(&mut buf).unwrap();
    assert!(String::from_utf8_lossy(&buf)
        .starts_with(&format!("{{\"version\":{REPOSITORY_FORMAT_VERSION}")));
    let service =
        ModelSearcher::from_repository(ModelRepository::load_json(&buf[..]).unwrap(), &config);
    let unsolved = bench.unsolved_problems();
    let (counts, outcomes) = service.solve_and_score(&unsolved);
    assert!(counts.f1() > 0.75, "F1 = {}", counts.f1());
    assert!(outcomes.iter().all(|o| o.entry.is_some()));
}

#[test]
fn whole_pipeline_is_deterministic_across_runs() {
    let run = || {
        let bench = music(DatasetScale::Tiny, 5);
        let config = MorerConfig { budget: 300, seed: 5, ..MorerConfig::default() };
        let (mut morer, _) = Morer::build(bench.initial_problems(), &config);
        let (counts, _) = morer.solve_and_score(&bench.unsolved_problems());
        (counts, morer.labels_used())
    };
    assert_eq!(run(), run());
}
