//! Cross-crate property-based tests (proptest) on the invariants the
//! pipeline relies on.

use proptest::prelude::*;

use morer::graph::community::{leiden, LeidenConfig};
use morer::graph::components::connected_components;
use morer::graph::Graph;
use morer::ml::metrics::PairCounts;
use morer::sim::string_sim::{jaccard_tokens, jaro_winkler, levenshtein_sim};
use morer::stats::tests::{ks_statistic, psi, wasserstein_distance};
use morer::stats::{Ecdf, Histogram};

fn words_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z]{1,8}", 0..6).prop_map(|v| v.join(" "))
}

fn unit_samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..=1.0, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- similarity functions --------------------------------

    #[test]
    fn similarities_are_bounded_symmetric_reflexive(a in words_strategy(), b in words_strategy()) {
        for f in [jaccard_tokens, levenshtein_sim, jaro_winkler] {
            let s_ab = f(&a, &b);
            let s_ba = f(&b, &a);
            prop_assert!((0.0..=1.0).contains(&s_ab));
            prop_assert!((s_ab - s_ba).abs() < 1e-12);
            prop_assert!((f(&a, &a) - 1.0).abs() < 1e-12);
        }
    }

    // ---------------- distribution tests -----------------------------------

    #[test]
    fn distribution_distances_are_pseudometrics(a in unit_samples(), b in unit_samples()) {
        let ks = ks_statistic(&a, &b);
        prop_assert!((0.0..=1.0).contains(&ks));
        prop_assert!((ks - ks_statistic(&b, &a)).abs() < 1e-12);
        prop_assert!(ks_statistic(&a, &a) < 1e-12);

        let wd = wasserstein_distance(&a, &b);
        prop_assert!((0.0..=1.0).contains(&wd));
        prop_assert!((wd - wasserstein_distance(&b, &a)).abs() < 1e-12);
        prop_assert!(wasserstein_distance(&a, &a) < 1e-12);
        // KS dominates WD on the unit interval (sup >= mean of |CDF diff|)
        prop_assert!(ks + 1e-9 >= wd);

        let p = psi(&a, &b, 50);
        prop_assert!(p >= -1e-12);
        prop_assert!((p - psi(&b, &a, 50)).abs() < 1e-9);
    }

    #[test]
    fn ecdf_is_monotone_cadlag(sample in unit_samples()) {
        let e = Ecdf::new(&sample);
        let grid = e.on_grid(21, 0.0, 1.0);
        for w in grid.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        prop_assert!((grid[grid.len() - 1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_preserves_mass(sample in unit_samples(), bins in 1usize..40) {
        let h = Histogram::unit(&sample, bins);
        prop_assert_eq!(h.total() as usize, sample.len());
        let p: f64 = h.proportions().iter().sum();
        prop_assert!((p - 1.0).abs() < 1e-9);
    }

    // ---------------- graph invariants -------------------------------------

    #[test]
    fn leiden_clusters_refine_connected_components(
        edges in proptest::collection::vec((0usize..24, 0usize..24, 0.1f64..1.0), 0..80)
    ) {
        let g = Graph::from_edges(24, &edges);
        let clustering = leiden(&g, &LeidenConfig::default());
        let components = connected_components(&g);
        // no community may span two connected components
        for u in 0..24 {
            for v in (u + 1)..24 {
                if clustering.cluster_of(u) == clustering.cluster_of(v) {
                    prop_assert_eq!(components[u], components[v]);
                }
            }
        }
    }

    #[test]
    fn graph_strength_sums_to_twice_total_weight(
        edges in proptest::collection::vec((0usize..16, 0usize..16, 0.1f64..5.0), 0..60)
    ) {
        let g = Graph::from_edges(16, &edges);
        let strength_sum: f64 = (0..16).map(|v| g.strength(v)).sum();
        prop_assert!((strength_sum - 2.0 * g.total_weight()).abs() < 1e-9);
    }

    // ---------------- metrics ----------------------------------------------

    #[test]
    fn f1_is_harmonic_mean_and_bounded(
        outcomes in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..200)
    ) {
        let mut counts = PairCounts::new();
        for (pred, actual) in &outcomes {
            counts.record(*pred, *actual);
        }
        let (p, r, f1) = (counts.precision(), counts.recall(), counts.f1());
        prop_assert!((0.0..=1.0).contains(&f1));
        if p + r > 0.0 {
            prop_assert!((f1 - 2.0 * p * r / (p + r)).abs() < 1e-12);
        }
        prop_assert!(f1 <= p.max(r) + 1e-12);
    }
}
