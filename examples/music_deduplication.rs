//! Why one unified model is not enough (paper §1, Fig. 2): the similarity
//! distributions of different source pairs differ, so MoRER clusters the ER
//! problems and trains one model per cluster. This example makes that
//! concrete on the music benchmark: it prints per-problem similarity
//! histograms and compares MoRER against a single model trained on the union
//! of all initial problems.
//!
//! ```text
//! cargo run --release --example music_deduplication
//! ```

use morer::core::prelude::*;
use morer::data::{music, DatasetScale};
use morer::ml::forest::{RandomForest, RandomForestConfig};
use morer::ml::metrics::PairCounts;
use morer::ml::TrainingSet;
use morer::stats::Histogram;

fn main() {
    let bench = music(DatasetScale::Default, 42);

    // --- Fig. 2 in miniature: jaccard(title) distributions per problem ----
    println!("jaccard(title) histograms of the true matches, per ER problem:");
    for p in bench.initial_problems().iter().take(5) {
        let matches: Vec<f64> = (0..p.num_pairs())
            .filter(|&i| p.labels[i])
            .map(|i| p.features.get(i, 0))
            .collect();
        let h = Histogram::unit(&matches, 10);
        let bar: String = h
            .counts()
            .iter()
            .map(|&c| match c {
                0 => ' ',
                1..=4 => '.',
                5..=14 => ':',
                15..=39 => '|',
                _ => '#',
            })
            .collect();
        println!("  D{}–D{} [{bar}] ({} matches)", p.sources.0, p.sources.1, matches.len());
    }

    // --- the unified-model strawman ---------------------------------------
    let initial = bench.initial_problems();
    let mut union = TrainingSet::new(initial[0].num_features());
    for p in &initial {
        union.extend(&p.to_training_set());
    }
    let unified = RandomForest::fit(&union, &RandomForestConfig::default());
    let mut unified_counts = PairCounts::new();
    for p in bench.unsolved_problems() {
        for i in 0..p.num_pairs() {
            unified_counts.record(unified.predict(p.features.row(i)), p.labels[i]);
        }
    }

    // --- MoRER: cluster-specific models under a small label budget --------
    let config = MorerConfig { budget: 1000, ..MorerConfig::default() };
    let (morer, report) = Morer::build(initial, &config);
    let (morer_counts, _) = morer.searcher().solve_and_score(&bench.unsolved_problems());

    println!("\nunified supervised model (all {} labeled pairs):", union.len());
    println!(
        "  P {:.3} / R {:.3} / F1 {:.3}",
        unified_counts.precision(),
        unified_counts.recall(),
        unified_counts.f1()
    );
    println!(
        "MoRER repository ({} cluster models, only {} labels):",
        report.num_clusters, report.labels_used
    );
    println!(
        "  P {:.3} / R {:.3} / F1 {:.3}",
        morer_counts.precision(),
        morer_counts.recall(),
        morer_counts.f1()
    );
    let ratio = union.len() as f64 / report.labels_used.max(1) as f64;
    println!("\nMoRER used {ratio:.0}x fewer labels than the unified supervised model.");
}
