//! Replica catch-up by log shipping, end to end: a durable leader serves
//! writes and ships its write-ahead log over `GET /wal`; a follower tails
//! it, applies verified frames, and serves reads at a bounded, observable
//! epoch lag. The demo then kills the leader mid-stream — the follower
//! degrades to stale-but-consistent reads instead of crashing — restarts
//! the leader from its own log on a fresh port, repoints the follower, and
//! watches it catch up, bit-identical.
//!
//! ```text
//! cargo run --release --example replication_demo
//! ```

use std::time::{Duration, Instant};

use morer::core::prelude::*;
use morer::core::wal::WalOptions;
use morer::data::{computer, DatasetScale};
use morer::serve::{
    Connection, HealthResponse, MorerServer, Replica, ReplicaConfig, ServeConfig,
};

fn main() -> std::io::Result<()> {
    let wal_dir = std::env::temp_dir().join(format!("morer_repl_demo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);

    // 1. a durable leader: the repository is built from the solved
    // problems, published as the base snapshot, and every later commit is
    // fsync-logged — which is exactly what the follower will tail
    let bench = computer(DatasetScale::Tiny, 42);
    let config = MorerConfig { budget: 300, ..MorerConfig::default() };
    let initial = bench.initial_problems();
    let (split, rest) = initial.split_at(initial.len() / 2);
    let (morer, report) = Morer::build(split.to_vec(), &config);
    let leader_cfg = ServeConfig { wal_dir: Some(wal_dir.clone()), ..ServeConfig::default() };
    let leader = MorerServer::start(morer, &leader_cfg)?;
    println!(
        "leader on http://{} — {} models, log shipping from {}",
        leader.addr(),
        report.num_clusters,
        wal_dir.display()
    );

    // 2. a follower: tails the leader's log and fronts the applied state
    // with a read-only server of its own
    let replica = Replica::start(ReplicaConfig {
        leader: leader.addr().to_string(),
        morer: config.clone(),
        ..ReplicaConfig::default()
    });
    let follower = MorerServer::serve_replica(replica, &ServeConfig::default())?;
    println!("follower on http://{} (read-only; /ingest answers 503)\n", follower.addr());

    // 3. stream the remaining problems into the leader while the follower
    // tails; then wait for the lag to close
    let mut lconn = Connection::open(leader.addr())?;
    let mut last_epoch = 0;
    for problem in rest {
        let body = serde_json::to_string(problem).expect("encode problem");
        let ingest: IngestReport = lconn.post("/ingest", &body)?.json()?;
        last_epoch = ingest.epoch;
    }
    let tail = follower.replica().expect("follower handle fronts a replica");
    assert!(tail.await_epoch(last_epoch, Duration::from_secs(30)), "catch-up timed out");
    let mut fconn = Connection::open(follower.addr())?;
    let health: HealthResponse = fconn.get("/healthz")?.json()?;
    let status = health.replica.expect("follower health carries replica status");
    println!(
        "ingested {} problems -> leader epoch {}; follower caught up (lag {} epochs, \
         {} frames applied, {} resyncs)",
        rest.len(),
        last_epoch,
        status.lag_epochs,
        status.frames_applied,
        status.resyncs
    );

    // reads answer bit-identically on both ends of the ship
    let query = bench.unsolved_problems()[0];
    let body = serde_json::to_string(query).expect("encode query");
    let from_leader = lconn.post("/solve", &body)?;
    let from_follower = fconn.post("/solve", &body)?;
    assert_eq!(from_leader.body, from_follower.body);
    println!("POST /solve agrees byte-for-byte on leader and follower\n");

    // 4. kill the leader: the follower must degrade, not crash — it pins
    // the last applied epoch and keeps answering
    leader.shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health: HealthResponse = fconn.get("/healthz")?.json()?;
        if health.status == "degraded" {
            let status = health.replica.expect("replica status");
            println!(
                "leader killed -> follower degraded (state {:?}), still serving epoch {}",
                status.state, health.epoch
            );
            break;
        }
        assert!(Instant::now() < deadline, "follower never noticed the dead leader");
        std::thread::sleep(Duration::from_millis(20));
    }
    let stale = fconn.post("/solve", &body)?;
    assert_eq!(stale.body, from_follower.body, "stale reads stay consistent");
    println!("POST /solve still answers from the pinned epoch");

    // 5. the leader returns from its own log, on a fresh port, and commits
    // once more; repointing the follower closes the gap automatically
    let recovered = Morer::open_with(&wal_dir, &config, WalOptions::default())
        .expect("recover leader from its write-ahead log");
    assert_eq!(recovered.epoch(), last_epoch, "fsync-acknowledged commits survived the kill");
    let leader = MorerServer::start(recovered, &ServeConfig::default())?;
    let mut lconn = Connection::open(leader.addr())?;
    let extra = serde_json::to_string(bench.unsolved_problems()[1]).expect("encode problem");
    let ingest: IngestReport = lconn.post("/ingest", &extra)?.json()?;
    tail.set_leader(leader.addr().to_string());
    assert!(tail.await_epoch(ingest.epoch, Duration::from_secs(30)), "re-catch-up timed out");
    let health: HealthResponse = fconn.get("/healthz")?.json()?;
    let status = health.replica.expect("replica status");
    println!(
        "\nleader restarted on http://{} at epoch {} -> follower re-converged \
         (lag {} epochs, {} reconnects)",
        leader.addr(),
        ingest.epoch,
        status.lag_epochs,
        status.reconnects
    );
    assert_eq!(health.status, "ok");

    follower.shutdown();
    leader.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);
    println!("\nshut down cleanly");
    Ok(())
}
