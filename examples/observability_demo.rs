//! The flight-recorder observability layer end to end: start a server,
//! drive mixed traffic, then read the service the way an operator would —
//! latency percentiles per endpoint from `GET /stats`, the Prometheus
//! text exposition from `GET /metrics`, and one slow request's per-stage
//! span breakdown retrieved from `GET /debug/trace` by the
//! `x-morer-trace-id` header its response carried.
//!
//! ```text
//! cargo run --release --example observability_demo
//! ```

use morer::core::prelude::*;
use morer::data::{computer, DatasetScale};
use morer::serve::{Connection, MorerServer, ServeConfig, StatsResponse, TraceDump};

fn main() -> std::io::Result<()> {
    // 1. a repository behind the server, with a deliberately low slow-request
    // threshold so the ingest below lands in the slow ring
    let bench = computer(DatasetScale::Tiny, 42);
    let config = MorerConfig { budget: 300, ..MorerConfig::default() };
    let (morer, _) = Morer::build(bench.initial_problems(), &config);
    let serve_config = ServeConfig { slow_request_micros: 2_000, ..ServeConfig::default() };
    let handle = MorerServer::start(morer, &serve_config)?;
    let addr = handle.addr();
    println!("serving on http://{addr}  (slow-request threshold: 2 ms)\n");

    // 2. mixed traffic: fast reads and one heavyweight ingest
    let mut conn = Connection::open(addr)?;
    let queries = &bench.problems;
    for unsolved in bench.unsolved.iter().take(8) {
        let body = serde_json::to_string(&queries[*unsolved]).expect("encode query");
        let res = conn.post("/solve", &body)?;
        assert_eq!(res.status, 200, "{}", res.body);
    }
    for _ in 0..4 {
        conn.get("/healthz")?;
    }
    let arrivals: Vec<&_> = bench.unsolved.iter().take(3).map(|i| &queries[*i]).collect();
    let ingest_res =
        conn.post_raw("/ingest", &serde_json::to_string(&arrivals).expect("encode arrivals"))?;
    assert_eq!(ingest_res.status, 200);
    // every response carries its trace id; this one will be in the slow ring
    let trace_id = ingest_res
        .header("x-morer-trace-id")
        .expect("every response carries a trace id")
        .to_owned();
    println!("ingested {} problems; x-morer-trace-id: {trace_id}\n", arrivals.len());

    // 3. the operator's first look: latency percentiles per endpoint
    let stats: StatsResponse = conn.get("/stats")?.json()?;
    println!(
        "{:<12} {:>6} {:>5} {:>5} {:>5} {:>9} {:>9} {:>9} {:>9}",
        "endpoint", "reqs", "2xx", "4xx", "5xx", "p50 us", "p90 us", "p99 us", "max us"
    );
    for e in &stats.endpoints {
        if e.requests == 0 {
            continue;
        }
        println!(
            "{:<12} {:>6} {:>5} {:>5} {:>5} {:>9} {:>9} {:>9} {:>9}",
            e.endpoint,
            e.requests,
            e.status_2xx,
            e.status_4xx,
            e.status_5xx,
            e.p50_micros,
            e.p90_micros,
            e.p99_micros,
            e.max_micros
        );
    }

    // 4. the scrape target: a few families of the Prometheus exposition
    let metrics = conn.get("/metrics")?;
    assert_eq!(metrics.status, 200);
    println!("\nGET /metrics ({} lines); the writer's view of that ingest:", metrics.body.lines().count());
    for line in metrics.body.lines().filter(|l| {
        l.starts_with("morer_writer_batch_size_")
            || l.starts_with("morer_writer_commit_micros_sum")
            || l.starts_with("morer_writer_healthy")
    }) {
        println!("  {line}");
    }

    // 5. the flight recorder: the slow ingest's per-stage breakdown,
    // retrieved by the trace id its own response carried
    let dump: TraceDump = conn.get(&format!("/debug/trace?id={trace_id}"))?.json()?;
    println!(
        "\nGET /debug/trace?id={trace_id}  (slow threshold {} us):",
        dump.slow_threshold_micros
    );
    for span in &dump.recent {
        println!(
            "  {:<12} +{:>8} us  for {:>8} us{}",
            span.stage,
            span.start_micros,
            span.duration_micros,
            if span.code != 0 { format!("  -> {}", span.code) } else { String::new() }
        );
    }
    assert!(
        dump.slow.iter().any(|s| s.trace_id == trace_id),
        "the ingest crossed the threshold, so the slow ring must hold it"
    );
    println!("\nthe ingest is in the slow ring ({} slow spans retained)", dump.slow.len());

    handle.shutdown();
    Ok(())
}
