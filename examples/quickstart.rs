//! Quickstart: build an ER model repository and solve new ER problems.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use morer::core::prelude::*;
use morer::data::{computer, DatasetScale};

fn main() {
    // 1. A multi-source product-matching benchmark (4 web shops, WDC-like).
    //    Each source pair is one "ER problem": similarity feature vectors for
    //    its candidate record pairs.
    let bench = computer(DatasetScale::Default, 42);
    let stats = bench.stats();
    println!(
        "benchmark: {} problems / {} pairs / {} matches ({:.1}% match rate)",
        stats.num_problems,
        stats.num_pairs,
        stats.num_matches,
        100.0 * stats.num_matches as f64 / stats.num_pairs as f64,
    );

    // 2. Build the repository from the solved problems under a labeling
    //    budget: distribution analysis -> Leiden clustering -> one model per
    //    cluster via Bootstrap active learning.
    let config = MorerConfig { budget: 1000, ..MorerConfig::default() };
    let (morer, report) = Morer::build(bench.initial_problems(), &config);
    println!(
        "repository: {} cluster models, {} oracle labels spent",
        report.num_clusters, report.labels_used
    );
    println!(
        "timings: analysis {:?}, clustering {:?}, training {:?}",
        report.timings.analysis, report.timings.clustering, report.timings.training
    );

    // 3. Solve the unsolved problems by reusing the stored models
    //    (sel_base: pick the most similar cluster, zero extra labels).
    //    The read path is the shared `ModelSearcher` — `&self` only, so the
    //    same calls could come from any number of threads at once.
    let searcher = morer.searcher();
    let unsolved = bench.unsolved_problems();
    let (counts, outcomes) = searcher.solve_and_score(&unsolved);
    for (p, o) in unsolved.iter().zip(&outcomes) {
        println!(
            "  problem D{}–D{}: {} pairs -> cluster {} (sim_p {:.3})",
            p.sources.0,
            p.sources.1,
            p.num_pairs(),
            o.entry.map_or_else(|| "-".into(), |e| e.to_string()),
            o.similarity
        );
    }
    println!(
        "overall quality: precision {:.3} / recall {:.3} / F1 {:.3}",
        counts.precision(),
        counts.recall(),
        counts.f1()
    );
}
