//! Running MoRER on **your own data**: load record sources from CSV files,
//! define a comparison scheme, build the benchmark, and run the repository
//! pipeline end-to-end.
//!
//! The example writes three small vendor catalogs to a temp directory first,
//! so it is fully self-contained; point `load_source` at your own files to
//! use real data (header = attribute names, optional leading `entity_id`
//! column for ground truth).
//!
//! ```text
//! cargo run --release --example custom_csv_dataset
//! ```

use std::io::Write;

use morer::core::prelude::*;
use morer::data::blocking::TokenBlockingConfig;
use morer::data::csvio::load_source;
use morer::data::record::MultiSourceDataset;
use morer::data::Benchmark;
use morer::sim::{AttributeComparator, ComparisonScheme, SimilarityFunction};

const SHOP_A: &str = "\
entity_id,title,brand,price
1,Canon EOS 750D DSLR Camera,Canon,499.99
2,Nikon D500 Body,Nikon,1199.00
3,Sony Alpha 7 III Mirrorless,Sony,1799.00
4,GoPro Hero 9 Action Cam,GoPro,349.99
5,\"Fujifilm X-T4, silver\",Fujifilm,1549.00
";

const SHOP_B: &str = "\
entity_id,title,brand,price
1,canon eos 750d camera kit,canon,489.00
2,NIKON D500 DSLR,Nikon,1210.50
3,Sony A7 III,Sony,1775.00
6,Panasonic Lumix GH5,Panasonic,1299.99
7,Leica Q2 Compact,Leica,4995.00
";

const SHOP_C: &str = "\
entity_id,title,brand,price
2,Nikon D-500,,1190.00
4,gopro hero9 black,GoPro,
5,Fujifilm XT4 Mirrorless Camera,Fujifilm,1533.00
6,Lumix GH-5 by Panasonic,Panasonic,1310.00
8,Olympus OM-D E-M10,Olympus,599.00
";

fn main() -> std::io::Result<()> {
    // --- 1. write + load the CSV sources -----------------------------------
    let dir = std::env::temp_dir().join("morer_custom_csv");
    std::fs::create_dir_all(&dir)?;
    let mut sources = Vec::new();
    let mut schema = None;
    for (i, (name, content)) in
        [("shop_a", SHOP_A), ("shop_b", SHOP_B), ("shop_c", SHOP_C)].iter().enumerate()
    {
        let path = dir.join(format!("{name}.csv"));
        std::fs::File::create(&path)?.write_all(content.as_bytes())?;
        let (source, s) = load_source(&path, i)?;
        println!("loaded {} with {} records", source.name, source.len());
        schema.get_or_insert(s);
        sources.push(source);
    }
    let dataset =
        MultiSourceDataset::assemble("camera-shops", schema.expect("at least one source"), sources);

    // --- 2. define the similarity feature space ----------------------------
    let scheme = ComparisonScheme::new()
        .with(AttributeComparator::new(0, "title", SimilarityFunction::JaccardTokens))
        .with(AttributeComparator::new(0, "title", SimilarityFunction::SmithWaterman))
        .with(AttributeComparator::new(1, "brand", SimilarityFunction::JaroWinkler))
        .with(AttributeComparator::new(2, "price", SimilarityFunction::NumericDiff));

    // --- 3. blocking + ER problems + initial/unsolved split ----------------
    let bench = Benchmark::from_dataset(
        "camera-shops",
        dataset,
        scheme,
        &TokenBlockingConfig { attribute: 0, max_block_size: 32 },
        0.5,
        42,
    );
    let stats = bench.stats();
    println!(
        "\n{} ER problems, {} candidate pairs, {} true matches",
        stats.num_problems, stats.num_pairs, stats.num_matches
    );

    // --- 4. the MoRER pipeline ---------------------------------------------
    let config = MorerConfig { budget: 20, budget_min: 5, ..MorerConfig::default() };
    let (morer, report) = Morer::build(bench.initial_problems(), &config);
    println!("repository: {} models / {} labels", report.num_clusters, report.labels_used);
    // default sel_base never writes: solve through the shared searcher
    let searcher = morer.searcher();
    for p in bench.unsolved_problems() {
        let outcome = searcher.solve(p);
        println!("\nproblem shop{}–shop{}:", p.sources.0, p.sources.1);
        for (i, &(a, b)) in p.pairs.iter().enumerate() {
            let ra = bench.dataset.record(a);
            let rb = bench.dataset.record(b);
            println!(
                "  [{}] {:<35} vs {:<35} p={:.2}",
                if outcome.predictions[i] { "MATCH" } else { "  -  " },
                ra.value(0).unwrap_or("?"),
                rb.value(0).unwrap_or("?"),
                outcome.probabilities[i],
            );
        }
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
