//! Dynamic integration: data sources arrive continuously (the data-lake
//! scenario of §1) and every arrival creates new ER problems against the
//! already-integrated sources. Compares the labeling cost of three policies:
//!
//! * **naive** — train a fresh model per new ER problem (the paper's
//!   strawman M_{1,3}, M_{2,3}, …);
//! * **sel_base** — always reuse the most similar repository model;
//! * **sel_cov** — reuse, but integrate + retrain when coverage drifts.
//!
//! ```text
//! cargo run --release --example streaming_sources
//! ```

use morer::al::{ActiveLearner, AlPool, BootstrapAl, BootstrapConfig};
use morer::core::prelude::*;
use morer::data::{music, DatasetScale};
use morer::ml::forest::{RandomForest, RandomForestConfig};
use morer::ml::metrics::PairCounts;

fn main() {
    let bench = music(DatasetScale::Default, 42);
    let initial = bench.initial_problems();
    let arrivals = bench.unsolved_problems();
    // per-problem budget the naive policy would spend (paper: fresh training
    // data for every new problem)
    let per_problem_budget = 100;

    // --- policy 1: naive fresh model per problem --------------------------
    let mut naive_counts = PairCounts::new();
    let mut naive_labels = 0usize;
    for p in &arrivals {
        let learner = BootstrapAl::new(BootstrapConfig { seed: 1, ..Default::default() });
        let mut pool = AlPool::from_problems(&[p]);
        let result = learner.select(&mut pool, per_problem_budget);
        naive_labels += result.labels_used;
        let model = RandomForest::fit(&result.training, &RandomForestConfig::default());
        for i in 0..p.num_pairs() {
            naive_counts.record(model.predict(p.features.row(i)), p.labels[i]);
        }
    }

    // --- policy 2: sel_base ------------------------------------------------
    // pure reuse never mutates the repository, so it runs through the
    // shared ModelSearcher: arrivals are batch-solved over worker threads
    let base_cfg = MorerConfig { budget: 1000, ..MorerConfig::default() };
    let (base, base_report) = Morer::build(initial.clone(), &base_cfg);
    let (base_counts, _) = base.searcher().solve_and_score(&arrivals);

    // --- policy 3: sel_cov -------------------------------------------------
    let cov_cfg = MorerConfig {
        budget: 1000,
        selection: SelectionStrategy::Coverage { t_cov: 0.25 },
        ..MorerConfig::default()
    };
    let (mut cov, _) = Morer::build(initial, &cov_cfg);
    let (cov_counts, cov_outcomes) = cov.solve_and_score(&arrivals);
    let cov_extra: usize = cov_outcomes.iter().map(|o| o.labels_spent).sum();

    println!("{} ER problems arrived over time\n", arrivals.len());
    println!("policy            labels      P      R      F1");
    println!(
        "naive per-problem {:>7}  {:.3}  {:.3}  {:.3}",
        naive_labels,
        naive_counts.precision(),
        naive_counts.recall(),
        naive_counts.f1()
    );
    println!(
        "sel_base          {:>7}  {:.3}  {:.3}  {:.3}",
        base_report.labels_used,
        base_counts.precision(),
        base_counts.recall(),
        base_counts.f1()
    );
    println!(
        "sel_cov(0.25)     {:>7}  {:.3}  {:.3}  {:.3}",
        cov.labels_used(),
        cov_counts.precision(),
        cov_counts.recall(),
        cov_counts.f1()
    );
    println!(
        "\nsel_cov spent {cov_extra} extra labels on retraining after the initial build;\n\
         the naive policy spends {per_problem_budget} labels on *every* arrival and still\n\
         cannot share models across problems."
    );
}
