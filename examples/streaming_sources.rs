//! Dynamic integration: data sources arrive continuously (the data-lake
//! scenario of §1) and every arrival creates new ER problems against the
//! already-integrated sources. The repository grows **incrementally**: each
//! solved problem is streamed in through `Morer::add_problem` — O(P) sketch
//! comparisons per insert, policy-driven clustering maintenance and
//! dirty-tracked retraining — instead of rebuilding the whole repository
//! per arrival, while searchers keep serving a consistent epoch through
//! `Morer::snapshot` handles.
//!
//! ```text
//! cargo run --release --example streaming_sources
//! ```

use std::time::Instant;

use morer::core::prelude::*;
use morer::data::{music, DatasetScale};

fn main() {
    let bench = music(DatasetScale::Default, 42);
    let initial = bench.initial_problems();
    let unsolved = bench.unsolved_problems();

    // bootstrap the repository from the first half of the solved problems;
    // the rest arrive later, one source pair at a time
    let boot = initial.len() / 2;
    let config = MorerConfig {
        budget: 1000,
        // full recluster every 4 arrivals; in between each arrival attaches
        // to the cluster of its strongest graph edge (or spawns a
        // singleton) and only the touched cluster retrains
        recluster: ReclusterPolicy::EveryN(4),
        ..MorerConfig::default()
    };
    let (mut morer, report) = Morer::build(initial[..boot].to_vec(), &config);
    println!(
        "bootstrapped: {} problems -> {} clusters, {} labels\n",
        boot, report.num_clusters, report.labels_used
    );

    // a reader holds a snapshot of the bootstrap epoch: it keeps serving
    // exactly this state no matter what the writer ingests next
    let bootstrap_snapshot = morer.snapshot();

    println!("arrival  edges  touched  retrained  new  labels  recluster      ms");
    let mut incremental_s = 0.0f64;
    for (k, problem) in initial[boot..].iter().enumerate() {
        let start = Instant::now();
        let r = morer.add_problem(problem).expect("in-memory ingest cannot fail");
        let elapsed = start.elapsed().as_secs_f64();
        incremental_s += elapsed;
        println!(
            "{:>7}  {:>5}  {:>7}  {:>9}  {:>3}  {:>6}  {:>9}  {:>6.1}",
            k + 1,
            r.edges_added,
            r.clusters_touched,
            r.models_retrained,
            r.new_models,
            r.labels_spent,
            if r.reclustered { "full" } else { "attach" },
            elapsed * 1e3,
        );
    }

    // the strawman a production service would otherwise pay: a full
    // repository rebuild per arrival
    let start = Instant::now();
    for k in boot..initial.len() {
        let (rebuilt, _) = Morer::build(initial[..=k].to_vec(), &config);
        std::hint::black_box(rebuilt.num_models());
    }
    let rebuild_s = start.elapsed().as_secs_f64();
    println!(
        "\nstreamed {} arrivals incrementally in {:.2}s vs {:.2}s of per-arrival \
         full rebuilds ({:.1}x)",
        initial.len() - boot,
        incremental_s,
        rebuild_s,
        rebuild_s / incremental_s.max(1e-9)
    );

    // the bootstrap-epoch snapshot never saw the stream...
    println!(
        "\nsnapshot epochs: bootstrap handle serves {} models; current epoch {} \
         serves {} models",
        bootstrap_snapshot.num_models(),
        morer.epoch(),
        morer.num_models()
    );

    // ...while the current snapshot solves the genuinely unsolved problems
    // by model reuse (shared-read: solve_batch fans over worker threads)
    let grown = morer.snapshot();
    let (counts, outcomes) = grown.solve_and_score(&unsolved);
    let reused: usize = outcomes.iter().filter(|o| o.entry.is_some()).count();
    println!(
        "\n{} unsolved problems served from the grown repository: \
         {}/{} reused a stored model, P={:.3} R={:.3} F1={:.3}, {} total labels",
        unsolved.len(),
        reused,
        unsolved.len(),
        counts.precision(),
        counts.recall(),
        counts.f1(),
        morer.labels_used()
    );
}
