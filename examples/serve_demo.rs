//! The deployable end state of the paper (Fig. 3 steps 4-5 as a service):
//! build a model repository, start the `morer-serve` HTTP server on a
//! loopback port, and drive the full endpoint surface — health, model
//! search, solving, batch solving, streaming ingest and stats — through
//! the bundled HTTP client, asserting along the way that the wire answers
//! are bit-identical to in-process `ModelSearcher` calls. Finishes with a
//! graceful shutdown.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```
//!
//! The printed curl lines can be replayed against a long-running server
//! (`ServeConfig { addr: "127.0.0.1:7878".into(), .. }`).

use morer::core::prelude::*;
use morer::data::{computer, DatasetScale};
use morer::serve::{Connection, HealthResponse, MorerServer, ServeConfig, StatsResponse};

fn main() -> std::io::Result<()> {
    // 1. build the repository from the solved problems (the writer API)
    let bench = computer(DatasetScale::Tiny, 42);
    let config = MorerConfig { budget: 300, ..MorerConfig::default() };
    let (morer, report) = Morer::build(bench.initial_problems(), &config);
    let reference = morer.searcher().clone();
    println!(
        "built a repository of {} models from {} problems ({} labels)\n",
        report.num_clusters,
        bench.initial.len(),
        report.labels_used
    );

    // 2. start serving it: reads go to an epoch-pinned snapshot, ingests
    // micro-batch through a single writer thread
    let handle = MorerServer::start(morer, &ServeConfig::default())?;
    let addr = handle.addr();
    println!("serving on http://{addr}  (4 workers + 1 writer). curl cheatsheet:");
    println!("  curl http://{addr}/healthz");
    println!("  curl http://{addr}/stats");
    println!("  curl -X POST --data @problem.json http://{addr}/search");
    println!("  curl -X POST --data @problem.json http://{addr}/solve");
    println!("  curl -X POST --data @problems.json http://{addr}/solve_batch");
    println!("  curl -X POST --data @problems.json http://{addr}/ingest\n");

    let mut conn = Connection::open(addr)?;

    // 3. liveness + epoch
    let health: HealthResponse = conn.get("/healthz")?.json()?;
    println!("GET /healthz      -> epoch {} with {} models", health.epoch, health.models);

    // 4. model search + solve for an unsolved problem, checked against the
    // in-process searcher (the wire format round-trips floats exactly)
    let unsolved = bench.unsolved_problems();
    let query = unsolved[0];
    let body = serde_json::to_string(query).expect("encode query");
    let hit: SearchHit = conn.post("/search", &body)?.json()?;
    assert_eq!(hit, reference.search(query).unwrap());
    println!(
        "POST /search      -> entry {} at sim_p {:.3}  (== in-process search)",
        hit.entry_id, hit.similarity
    );
    let outcome: SolveOutcome = conn.post("/solve", &body)?.json()?;
    let direct = reference.solve(query);
    assert_eq!(outcome, direct);
    println!(
        "POST /solve       -> {} pairs, {} predicted matches  (bit-identical to in-process)",
        outcome.predictions.len(),
        outcome.predictions.iter().filter(|&&p| p).count()
    );

    // 5. batch solve the rest
    let batch: Vec<_> = unsolved.iter().skip(1).take(3).collect();
    let batch_body = serde_json::to_string(&batch).expect("encode batch");
    let outcomes: Vec<SolveOutcome> = conn.post("/solve_batch", &batch_body)?.json()?;
    println!("POST /solve_batch -> {} outcomes in one round trip", outcomes.len());

    // 6. stream a solved problem back in; the reply is the IngestReport of
    // the commit it was part of, and the epoch advances for later reads
    let ingest: IngestReport = conn.post("/ingest", &body)?.json()?;
    println!(
        "POST /ingest      -> epoch {}: +{} edges, {} retrained, {} new models",
        ingest.epoch, ingest.edges_added, ingest.models_retrained, ingest.new_models
    );
    assert_eq!(handle.epoch(), ingest.epoch);

    // 7. per-endpoint counters from the lock-free metrics registry
    let stats: StatsResponse = conn.get("/stats")?.json()?;
    println!("\nGET /stats at epoch {}:", stats.epoch);
    println!("  endpoint     requests  errors  mean_us    max_us");
    for e in stats.endpoints.iter().filter(|e| e.requests > 0) {
        println!(
            "  {:<12} {:>8}  {:>6}  {:>7.0}  {:>8}",
            e.endpoint, e.requests, e.errors, e.mean_micros, e.max_micros
        );
    }

    // 8. done: joins the workers and the writer; queued ingests commit first
    handle.shutdown();
    println!("\nserver shut down cleanly");
    Ok(())
}
