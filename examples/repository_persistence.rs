//! The "ER matching service" deployment (§1): a repository is built once,
//! persisted to a backend, and later loaded into a fresh process —
//! "enabling users to solve any ER problem by leveraging existing models".
//!
//! The on-disk format is versioned JSON (`{"version": 1, "entries": ...}`);
//! legacy version-less files still load, and files written by a newer build
//! fail with the typed [`MorerError::UnsupportedVersion`] instead of a
//! parse panic. The serving side is a [`ModelSearcher`]: immutable,
//! `Send + Sync`, so one instance handles every concurrent caller —
//! `solve_and_score` below fans the whole query load over scoped worker
//! threads sharing it.
//!
//! ```text
//! cargo run --release --example repository_persistence
//! ```

use morer::core::prelude::*;
use morer::data::{computer, DatasetScale};

fn main() -> std::io::Result<()> {
    let bench = computer(DatasetScale::Default, 42);
    let config = MorerConfig { budget: 800, ..MorerConfig::default() };

    // --- service A: build and persist -------------------------------------
    let (builder, report) = Morer::build(bench.initial_problems(), &config);
    let repo = builder.repository();
    let path = std::env::temp_dir().join("morer_repository.json");
    repo.save(&path)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "service A built {} models with {} labels and persisted them \
         (format v{REPOSITORY_FORMAT_VERSION}, {} KiB)",
        report.num_clusters,
        report.labels_used,
        bytes / 1024
    );

    // --- service B: load and serve concurrently ---------------------------
    let loaded = ModelRepository::load(&path)?;
    println!(
        "service B loaded {} models ({} stored representative vectors)",
        loaded.num_models(),
        loaded.entries.iter().map(|e| e.representatives.len()).sum::<usize>()
    );
    // a file from a future build would have surfaced as a typed error:
    // Err(MorerError::UnsupportedVersion { found }) => refuse + report
    let service = ModelSearcher::from_repository(loaded, &config);
    let (counts, outcomes) = service.solve_and_score(&bench.unsolved_problems());
    for (p, o) in bench.unsolved_problems().iter().zip(&outcomes) {
        println!(
            "  query D{}–D{} -> model {} (sim_p {:.3})",
            p.sources.0,
            p.sources.1,
            o.entry.map_or_else(|| "-".into(), |e| e.to_string()),
            o.similarity
        );
    }
    println!(
        "served {} problems without any new labels: P {:.3} / R {:.3} / F1 {:.3}",
        outcomes.len(),
        counts.precision(),
        counts.recall(),
        counts.f1()
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
