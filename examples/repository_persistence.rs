//! The "ER matching service" deployment (§1), now crash-safe: a durable
//! writer commits every ingest through an append-only write-ahead log, is
//! killed mid-stream, and a fresh process recovers the exact last-committed
//! state with [`Morer::open`] — "enabling users to solve any ER problem by
//! leveraging existing models", even across crashes.
//!
//! The walkthrough stages a full lifecycle:
//!
//! 1. **service A** opens a durable pipeline on an empty directory, builds
//!    the initial repository, and streams further problems in — each commit
//!    is an O(dirty) fsync-acknowledged log append;
//! 2. a **simulated kill** snapshots the WAL directory mid-stream (exactly
//!    the bytes a crash would leave) and even tears the final record;
//! 3. **service B** recovers from the copy: the torn tail is detected by
//!    the per-record length prefix + content hash and truncated, every
//!    fully committed epoch is replayed, and serving resumes;
//! 4. the one-shot snapshot path ([`ModelRepository::save`], now an atomic
//!    tmp-file + rename) still works for log-free deployments.
//!
//! ```text
//! cargo run --release --example repository_persistence
//! ```

use morer::core::prelude::*;
use morer::data::{computer, DatasetScale};

fn main() -> std::io::Result<()> {
    let bench = computer(DatasetScale::Default, 42);
    let config = MorerConfig { budget: 800, ..MorerConfig::default() };
    let live_dir = std::env::temp_dir().join("morer_wal_live");
    let crash_dir = std::env::temp_dir().join("morer_wal_crashed");
    for d in [&live_dir, &crash_dir] {
        std::fs::remove_dir_all(d).ok();
        std::fs::create_dir_all(d)?;
    }

    // --- service A: durable writer ----------------------------------------
    // open on an empty directory = start a fresh crash-safe pipeline
    let mut writer = Morer::open(&live_dir, &config)?;
    let problems = bench.initial_problems();
    let (seed, rest) = problems.split_at(problems.len() / 2);
    writer.add_problems(seed)?;
    println!(
        "service A committed {} seed problems -> {} models at epoch {}",
        seed.len(),
        writer.num_models(),
        writer.epoch()
    );
    // stream the remainder one problem per commit: each acknowledgement
    // means the commit record is fsync'd (Durability::Fsync is the default)
    for p in rest {
        let report = writer.add_problem(p)?;
        let state = writer.durability().expect("writer is durable");
        println!(
            "  epoch {}: +{} edges, {} clusters touched — durable at {} log bytes",
            report.epoch, report.edges_added, report.clusters_touched, state.log_bytes
        );
    }
    let final_epoch = writer.epoch();

    // --- the kill ----------------------------------------------------------
    // copy the WAL directory out from under the still-live writer: this is
    // bit-for-bit what a crash right now would leave on disk
    for entry in std::fs::read_dir(&live_dir)? {
        let entry = entry?;
        std::fs::copy(entry.path(), crash_dir.join(entry.file_name()))?;
    }
    drop(writer); // the process is "gone"

    // make the crash nastier: tear 5 bytes off the log tail, as if the
    // machine died mid-append of a record that was never acknowledged
    let log_path = crash_dir.join("wal.log");
    let torn_len = std::fs::metadata(&log_path)?.len().saturating_sub(5);
    std::fs::OpenOptions::new().write(true).open(&log_path)?.set_len(torn_len)?;

    // --- service B: recover and serve --------------------------------------
    let recovered = Morer::open(&crash_dir, &config)?;
    println!(
        "service B recovered epoch {} / {} models from the crashed directory \
         (WAL format v{WAL_FORMAT_VERSION}, torn tail truncated)",
        recovered.epoch(),
        recovered.num_models()
    );
    assert_eq!(
        recovered.epoch(),
        final_epoch - 1,
        "every acknowledged epoch except the torn final record must replay"
    );
    let (counts, outcomes) = recovered.searcher().solve_and_score(&bench.unsolved_problems());
    println!(
        "served {} problems without any new labels: P {:.3} / R {:.3} / F1 {:.3}",
        outcomes.len(),
        counts.precision(),
        counts.recall(),
        counts.f1()
    );

    // --- log-free deployments: the atomic snapshot path ---------------------
    // a single versioned-JSON artifact (crash-safe too: written to a tmp
    // file, fsync'd, then renamed into place) for read-only services
    let path = std::env::temp_dir().join("morer_repository.json");
    let repo = recovered.repository();
    repo.save(&path)?;
    let loaded = ModelRepository::load(&path)?;
    println!(
        "snapshot round trip: {} models, {} KiB (format v{REPOSITORY_FORMAT_VERSION})",
        loaded.num_models(),
        std::fs::metadata(&path)?.len() / 1024
    );
    // a file from a future build would have surfaced as a typed error:
    // Err(MorerError::UnsupportedVersion { found }) => refuse + report

    std::fs::remove_file(&path).ok();
    for d in [&live_dir, &crash_dir] {
        std::fs::remove_dir_all(d).ok();
    }
    Ok(())
}
