//! Sub-linear model search at repository scale: a 500-entry model
//! repository, the exhaustive `sel_base` scan, and the two-level
//! `morer_core::index::SearchIndex` (quantized-signature shortlist +
//! pivot/triangle pruning) answering the same queries — bit-identically,
//! but an order of magnitude faster.
//!
//! The index is *exact*: every shortlist survivor is re-scored by the
//! unchanged similarity path and every pruned entry is provably unable to
//! win, so the winner (entry *and* similarity) equals the exhaustive
//! scan's on every query. This demo measures both paths and prints the
//! index's own accounting of how much work the bounds saved.
//!
//! ```text
//! cargo run --release --example repository_search_scale
//! ```

use std::time::Instant;

use morer::core::distribution::{AnalysisOptions, DistributionTest};
use morer::core::searcher::ModelSearcher;
use morer_bench::workload::{repository_problems, repository_workload};

fn main() {
    // 1. a 500-entry repository: one trained model per entry, drawn from
    // twelve distribution families with per-entry location/spread/match-rate
    // jitter — the spread is what gives the coarse signatures their
    // pruning power
    let p = 500usize;
    let entries = repository_workload(p, 160, 6, 0x5EA2);
    let opts = AnalysisOptions::new(DistributionTest::KolmogorovSmirnov, usize::MAX, 42);
    let searcher = ModelSearcher::new(entries, opts);
    searcher.warm(); // pre-sketch every entry and build the index
    println!("repository: {p} entries, 6 features, KS similarity\n");

    // 2. the two paths must agree hit-for-hit before any timing matters
    let queries = repository_problems(24, 160, 6, 0x9E77);
    for q in &queries {
        let indexed = searcher.search(q).expect("non-empty repository");
        let exhaustive = searcher.search_exhaustive(q).expect("non-empty repository");
        assert_eq!(indexed, exhaustive, "the index must be exact");
    }
    println!("recall-1 verified: indexed == exhaustive on all {} queries", queries.len());

    // 3. time both paths over a few rounds
    let rounds = 5usize;
    let start = Instant::now();
    for _ in 0..rounds {
        for q in &queries {
            std::hint::black_box(searcher.search_exhaustive(q).expect("searchable"));
        }
    }
    let exhaustive_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for _ in 0..rounds {
        for q in &queries {
            std::hint::black_box(searcher.search(q).expect("searchable"));
        }
    }
    let indexed_s = start.elapsed().as_secs_f64();
    let solves = (rounds * queries.len()) as f64;
    println!("exhaustive: {:8.1} solves/s", solves / exhaustive_s);
    println!("indexed:    {:8.1} solves/s  ({:.1}x)", solves / indexed_s, exhaustive_s / indexed_s);

    // 4. the index's own accounting: how many entries the bounds let
    // through to exact scoring (the shortlist), cumulatively over every
    // search this process ran
    let overview = searcher.index_overview().expect("warmed searcher has an index");
    println!(
        "\nindex: {} entries, {} pivots, {} posting lists",
        overview.indexed_entries, overview.pivots, overview.postings
    );
    println!(
        "queries: {} ({} fallbacks), exact-scored {} of {} considered entries ({:.2}%)",
        overview.queries,
        overview.fallbacks,
        overview.exact_scored,
        overview.considered,
        100.0 * overview.shortlist_frac
    );
}
