//! The paper's motivating scenario (Fig. 1): a product-comparison portal has
//! already linked a set of vendor catalogs; new vendors keep arriving. Can
//! the models that solved the old ER problems be reused for the new ones —
//! and when must the repository retrain?
//!
//! Uses the camera (Dexter-like) benchmark: 23 heterogeneous sources with
//! intra-source duplicates, and the `sel_cov` strategy that integrates every
//! new problem into the ER problem graph. Integration mutates the
//! repository, so this is the writer ([`Morer`]) side of the API — contrast
//! with the read-only [`ModelSearcher`] serving in the
//! `repository_persistence` example.
//!
//! ```text
//! cargo run --release --example product_catalog_integration
//! ```

use morer::core::prelude::*;
use morer::data::{camera, DatasetScale};
use morer::ml::metrics::PairCounts;

fn main() {
    let bench = camera(DatasetScale::Tiny, 0.5, 42);
    println!(
        "camera catalog: {} sources, {} ER problems ({} solved / {} arriving)",
        bench.dataset.num_sources(),
        bench.problems.len(),
        bench.initial.len(),
        bench.unsolved.len()
    );

    let config = MorerConfig {
        budget: 1000,
        selection: SelectionStrategy::Coverage { t_cov: 0.25 },
        ..MorerConfig::default()
    };
    let (mut morer, report) = Morer::build(bench.initial_problems(), &config);
    println!(
        "initial repository: {} models from {} labels\n",
        report.num_clusters, report.labels_used
    );

    // Integrate the arriving problems one at a time, like a live portal.
    let mut counts = PairCounts::new();
    let mut extra_labels = 0usize;
    let mut retrains = 0usize;
    let mut fresh = 0usize;
    for &pid in bench.unsolved.iter().take(40) {
        let problem = &bench.problems[pid];
        let outcome = morer.solve(problem);
        extra_labels += outcome.labels_spent;
        retrains += usize::from(outcome.retrained);
        fresh += usize::from(outcome.new_model);
        for (&pred, &actual) in outcome.predictions.iter().zip(&problem.labels) {
            counts.record(pred, actual);
        }
        if outcome.retrained || outcome.new_model {
            println!(
                "  D{}–D{}: {} -> model {} ({} extra labels)",
                problem.sources.0,
                problem.sources.1,
                if outcome.new_model { "new model trained" } else { "model retrained" },
                outcome.entry.map_or_else(|| "-".into(), |e| e.to_string()),
                outcome.labels_spent
            );
        }
    }

    println!(
        "\nintegrated 40 new ER problems: {} model retrains, {} fresh models, {} extra labels",
        retrains, fresh, extra_labels
    );
    println!(
        "repository now holds {} models; total labels {}",
        morer.num_models(),
        morer.labels_used()
    );
    println!(
        "linkage quality on arrivals: P {:.3} / R {:.3} / F1 {:.3}",
        counts.precision(),
        counts.recall(),
        counts.f1()
    );
}
